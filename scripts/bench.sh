#!/usr/bin/env bash
# scripts/bench.sh [-short] — run the round-loop micro-benchmarks
# (internal/bench) and write BENCH_roundloop.json with ns/round,
# allocs/round, and token-moves/s per benchmark.
#
# Exits non-zero if the steady-state engine paths (RouteOnly, SoupOnly)
# allocate more than MAX_STEADY_ALLOCS per round at the n=4096 reference
# size: those paths are required to stay (near-)allocation-free, and this
# is the committed threshold CI enforces. FullRound includes
# protocol-level payload allocation and is recorded but not gated.
#
# The budget is not literally zero, and is defined at the reference size
# only: with tens of thousands of inboxes, buckets, and per-shard
# exchange buffers, random per-round size maxima still force occasional
# slice growth (a record-maximum process whose rate scales with the
# number of buffers and decays like 1/round). The budget is three orders
# of magnitude below the per-slot allocation regime it guards against
# (pre-optimisation: ~8 allocs per slot per round, ~32k/round at n=4096).
#
# A second gate prices the observability stack against FullRound.
# FullRoundTelemetry (full tracing + phase profiler) may allocate at most
# TELEMETRY_MAX_ALLOC_DELTA more per round at every size — telemetry must
# stay steady-state allocation-free, and alloc counts are exact so this
# holds anywhere. Its time tax is gated at the n=TELEMETRY_NS_GATE_SIZE
# reference size only (at most TELEMETRY_MAX_NS_PCT percent slower):
# ns/round on shared boxes is indicative, not exact (see notes in the
# committed JSON), and at small sizes run-to-run noise exceeds the real
# tax, which is ~0.
#
# RetrieveHot/n=<n>/cache=off|on rows record the hot-key cache's effect
# on a Zipf-skewed retrieval workload (rounds/retrieval, retrievals/round
# extra metrics); the cache=off row is the committed baseline the cache=on
# row is judged against. Neither is alloc-gated: the retrieval path
# allocates per-search protocol state by design.
#
# RoutedRound/n=<n>/mode=routed|oracle rows price overlay forwarding
# against the id-addressed oracle on the same neighbor fan-out workload;
# the n=4096 routed row joins the alloc gate because hop-by-hop
# forwarding must stay steady-state allocation-free like the rest of the
# engine paths.
#
# A third leg is the multi-core matrix: BenchmarkRoundMatrix (the
# canonical FullRound body) runs under -cpu $CPUS (default 1,2,4) at
# n=65536 and n=2^20, emitting RoundMatrix/n=<n>/procs=<p> rows. On a
# single-vCPU host the procs>1 rows measure scheduling overhead, not
# speedup — the committed JSON notes say which kind of host produced them.
#
# Env overrides: BENCHTIME (default 20x), MATRIX_BENCHTIME (default 5x;
# the 2^20 rows cost minutes of warmup per cpu value), CPUS (default
# 1,2,4), MAX_STEADY_ALLOCS (default 256), OUT (default
# BENCH_roundloop.json), GATED_BENCHES (awk regex of benchmark names the
# alloc gate applies to; default RouteOnly, SoupOnly, SoupOnlyEager and
# OverlayRepair at the n=4096 reference size, RouteOnly at n=65536 —
# the row whose 637-alloc regression motivated the inbox arena — and
# SoupOnly at n=262144, where per-round trajectory scratch once cost
# ~1200 allocs/round before the lazy store reused its expansion buffers),
# TELEMETRY_MAX_NS_PCT (default 5), TELEMETRY_MAX_ALLOC_DELTA (default 0),
# TELEMETRY_NS_GATE_SIZE (default 65536, the acceptance size; the -short
# run has no such row so only the alloc delta is gated there).
set -euo pipefail
cd "$(dirname "$0")/.."

SHORT=""
if [[ "${1:-}" == "-short" ]]; then
  SHORT="-short"
fi
BENCHTIME="${BENCHTIME:-20x}"
MATRIX_BENCHTIME="${MATRIX_BENCHTIME:-5x}"
CPUS="${CPUS:-1,2,4}"
MAX_STEADY_ALLOCS="${MAX_STEADY_ALLOCS:-256}"
GATED_BENCHES="${GATED_BENCHES:-^(RouteOnly|SoupOnly|SoupOnlyEager|OverlayRepair)\\/n=4096\$|^RoutedRound\\/n=4096\\/mode=routed\$|^RouteOnly\\/n=65536\$|^SoupOnly\\/n=262144\$}"
TELEMETRY_MAX_NS_PCT="${TELEMETRY_MAX_NS_PCT:-5}"
TELEMETRY_MAX_ALLOC_DELTA="${TELEMETRY_MAX_ALLOC_DELTA:-0}"
TELEMETRY_NS_GATE_SIZE="${TELEMETRY_NS_GATE_SIZE:-65536}"
OUT="${OUT:-BENCH_roundloop.json}"
RAW="$(mktemp)"
PREV="$(mktemp)"
trap 'rm -f "$RAW" "$PREV"' EXIT
# The committed file may carry hand-curated baseline_* trajectory blocks
# and "notes"; preserve them across regeneration (jq is present on CI
# runners and dev boxes; without it the raw regenerated file stands alone).
HAVE_PREV=""
if [[ -f "$OUT" ]]; then
  cp "$OUT" "$PREV"
  HAVE_PREV=1
fi

go test $SHORT -run '^$' -bench 'BenchmarkRouteOnly|BenchmarkRoutedRound|BenchmarkSoupOnly|BenchmarkOverlayRepair|BenchmarkFullRound|BenchmarkRetrieveHot' \
  -benchmem -benchtime "$BENCHTIME" -timeout 90m ./internal/bench | tee "$RAW"

go test $SHORT -run '^$' -bench 'BenchmarkRoundMatrix' \
  -benchmem -benchtime "$MATRIX_BENCHTIME" -cpu "$CPUS" -timeout 90m ./internal/bench | tee -a "$RAW"

awk -v go_version="$(go version | awk '{print $3}')" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gomaxprocs="$(nproc 2>/dev/null || echo 0)" \
    -v max_allocs="$MAX_STEADY_ALLOCS" \
    -v gated="$GATED_BENCHES" \
    -v tel_ns_pct="$TELEMETRY_MAX_NS_PCT" \
    -v tel_alloc_delta="$TELEMETRY_MAX_ALLOC_DELTA" \
    -v tel_ns_size="$TELEMETRY_NS_GATE_SIZE" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(RouteOnly|RoutedRound|SoupOnly|SoupOnlyEager|OverlayRepair|FullRound|FullRoundTelemetry|RoundMatrix|RetrieveHot)\// {
  name = $1
  sub(/^Benchmark/, "", name)
  # The testing package suffixes -$GOMAXPROCS when -cpu != 1. Matrix rows
  # keep the proc count as a /procs= component; the single-core trajectory
  # rows stay name-compatible with the committed baselines.
  procs = 1
  if (match(name, /-[0-9]+$/)) { procs = substr(name, RSTART + 1); name = substr(name, 1, RSTART - 1) }
  extra = ""
  if (name ~ /^RoundMatrix\//) {
    name = name "/procs=" procs
    extra = sprintf(", \"procs\": %s", procs)
  }
  ns = allocs = bytes = moves = "null"
  repairs = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "token-moves/s") moves = $i
    if ($(i+1) == "repairs/round") repairs = repairs sprintf(", \"repairs_per_round\": %s", $i)
    if ($(i+1) == "rounds/retrieval") repairs = repairs sprintf(", \"rounds_per_retrieval\": %s", $i)
    if ($(i+1) == "retrievals/round") repairs = repairs sprintf(", \"retrievals_per_round\": %s", $i)
  }
  rows[++n] = sprintf("    {\"name\": \"%s\", \"ns_per_round\": %s, \"allocs_per_round\": %s, \"bytes_per_round\": %s, \"token_moves_per_s\": %s%s%s}", name, ns, allocs, bytes, moves, repairs, extra)
  ns_by[name] = ns; allocs_by[name] = allocs
  if (name ~ gated && allocs != "null" && allocs + 0 > max_allocs + 0) {
    printf "FAIL: %s allocates %s/round, budget is %s\n", name, allocs, max_allocs > "/dev/stderr"
    bad = 1
  }
}
END {
  if (n == 0) { print "FAIL: no benchmark results parsed" > "/dev/stderr"; exit 1 }
  # Telemetry tax gate: FullRoundTelemetry vs FullRound at the same size.
  for (tn in ns_by) {
    if (tn !~ /^FullRoundTelemetry\//) continue
    base = tn; sub(/Telemetry/, "", base)
    if (!(base in ns_by)) continue
    if (tn ~ ("/n=" tel_ns_size "$") && ns_by[tn] != "null" && ns_by[base] != "null") {
      pct = 100 * (ns_by[tn] - ns_by[base]) / ns_by[base]
      if (pct > tel_ns_pct + 0) {
        printf "FAIL: %s is %.1f%% slower than %s, budget is %s%%\n", tn, pct, base, tel_ns_pct > "/dev/stderr"
        bad = 1
      }
    }
    if (allocs_by[tn] != "null" && allocs_by[base] != "null" && allocs_by[tn] - allocs_by[base] > tel_alloc_delta + 0) {
      printf "FAIL: %s allocates %s/round vs %s for %s, budget is +%s\n", tn, allocs_by[tn], allocs_by[base], base, tel_alloc_delta > "/dev/stderr"
      bad = 1
    }
  }
  printf "{\n  \"generated\": \"%s\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\",\n  \"cpu\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"max_steady_allocs\": %s,\n  \"benchmarks\": [\n", date, commit, go_version, cpu, gomaxprocs, max_allocs
  for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
  printf "  ]\n}\n"
  exit bad
}' "$RAW" > "$OUT" || GATE=$?
GATE="${GATE:-0}"

if [[ -n "$HAVE_PREV" ]] && command -v jq >/dev/null 2>&1; then
  if jq -s '.[1] + (.[0] | with_entries(select(.key | test("^baseline_|^notes$"))))' \
      "$PREV" "$OUT" > "$OUT.tmp" 2>/dev/null; then
    mv "$OUT.tmp" "$OUT"
  else
    rm -f "$OUT.tmp"
  fi
fi

echo "wrote $OUT"
cat "$OUT"
exit "$GATE"
