package dynp2p

import (
	"bytes"
	"encoding/json"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"dynp2p/internal/rng"
	"dynp2p/internal/telemetry"
)

// traceWorkload runs a small store+search workload with full tracing and
// returns the network, leaving completed results drained.
func traceWorkload(t *testing.T, workers int, opTrace *bytes.Buffer) *Network {
	t.Helper()
	nw := New(Config{
		N: 256, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 21, Workers: workers,
		TraceSampleEvery: 1,
	})
	if opTrace != nil {
		nw.Tracer().StreamTo(opTrace)
	}
	nw.Run(nw.WarmupRounds())
	data := make([]byte, 64)
	rng.New(2).Fill(data)
	nw.Store(0, 77, data)
	nw.Run(nw.Tunables().Protocol.Period)
	nw.Retrieve(128, 77, data)
	nw.Retrieve(17, 77, data)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
	if res := nw.Results(); len(res) != 2 {
		t.Fatalf("expected 2 retrievals, got %d", len(res))
	}
	if err := nw.Tracer().Flush(); err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestTelemetryWorkerCountIndependence pins the telemetry determinism
// contract at the facade level: with tracing enabled, every event metric —
// engine counters, protocol counters, trace histograms, collector-bridged
// soup/overlay counters — must be bit-identical for Workers ∈
// {1, 3, GOMAXPROCS}, as must the operation trace stream itself.
func TestTelemetryWorkerCountIndependence(t *testing.T) {
	run := func(workers int) (string, string, Stats) {
		var ops bytes.Buffer
		nw := traceWorkload(t, workers, &ops)
		var det bytes.Buffer
		if err := telemetry.WriteJSONL(&det, nw.Telemetry().DeterministicSnapshot()); err != nil {
			t.Fatal(err)
		}
		return det.String(), ops.String(), nw.Stats()
	}
	baseDet, baseOps, baseStats := run(1)
	if !strings.Contains(baseDet, "dynp2p_search_hops") {
		t.Fatal("deterministic snapshot missing trace histograms")
	}
	for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
		det, ops, stats := run(w)
		if det != baseDet {
			t.Errorf("workers=%d: deterministic metric snapshot differs:\n%s\nvs\n%s", w, det, baseDet)
		}
		if ops != baseOps {
			t.Errorf("workers=%d: operation trace stream differs", w)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: stats differ:\n%+v\n%+v", w, stats, baseStats)
		}
	}
}

// Line grammars for the two exposition formats. Golden in the schema
// sense: any change to the exporters' shape must update these patterns
// (and whatever downstream tooling parses the files).
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-z0-9_]+ .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-z0-9_]+ (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^[a-z0-9_]+(\{le="(\+Inf|\d+)"\})? -?\d+$`)
)

// TestPrometheusSnapshotSchema pins the Prometheus text exposition
// schema: every line matches the grammar, every expected metric family is
// present, and the deterministic subset renders byte-identically across
// identical runs.
func TestPrometheusSnapshotSchema(t *testing.T) {
	render := func() (full, det string) {
		nw := traceWorkload(t, 0, nil)
		var f, d bytes.Buffer
		if err := telemetry.WritePrometheus(&f, nw.Telemetry().Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WritePrometheus(&d, nw.Telemetry().DeterministicSnapshot()); err != nil {
			t.Fatal(err)
		}
		return f.String(), d.String()
	}
	full, det1 := render()
	for _, line := range strings.Split(strings.TrimSuffix(full, "\n"), "\n") {
		if promHelpRe.MatchString(line) || promTypeRe.MatchString(line) || promSampleRe.MatchString(line) {
			continue
		}
		t.Errorf("prometheus line does not match schema: %q", line)
	}
	for _, family := range []string{
		"dynp2p_engine_rounds_total",
		"dynp2p_engine_msgs_sent_total",
		"dynp2p_proto_committees_created_total",
		"dynp2p_soup_generated_total",
		"dynp2p_overlay_lambda_e6",
		"dynp2p_search_hops_bucket",
		"dynp2p_search_rounds_to_resolve_count",
		"dynp2p_store_rounds_to_settle_sum",
		"dynp2p_trace_ops_done_total",
	} {
		if !strings.Contains(full, family) {
			t.Errorf("prometheus snapshot missing %s", family)
		}
	}
	if _, det2 := render(); det1 != det2 {
		t.Error("deterministic prometheus snapshot differs across identical runs")
	}
}

// TestOpTraceJSONLSchema pins the operation trace's JSONL schema: every
// line is a JSON object with the event-kind-specific required fields, and
// the stream tells a consistent lifecycle story (starts precede hops and
// dones of the same trace).
func TestOpTraceJSONLSchema(t *testing.T) {
	var ops bytes.Buffer
	traceWorkload(t, 0, &ops)
	lines := strings.Split(strings.TrimSpace(ops.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("op trace too short: %d lines", len(lines))
	}
	started := map[string]bool{}
	starts, hops, dones := 0, 0, 0
	for _, line := range lines {
		var rec struct {
			Trace  string  `json:"trace"`
			Round  *int64  `json:"round"`
			Ev     string  `json:"ev"`
			Msg    *uint64 `json:"msg"`
			From   *uint64 `json:"from"`
			To     *uint64 `json:"to"`
			Item   *uint64 `json:"item"`
			Rounds *int64  `json:"rounds"`
			OK     *bool   `json:"ok"`
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("op trace line does not match schema: %q: %v", line, err)
		}
		if rec.Trace == "" || rec.Round == nil || rec.From == nil || rec.To == nil {
			t.Fatalf("op trace line missing required fields: %q", line)
		}
		switch rec.Ev {
		case "start":
			started[rec.Trace] = true
			starts++
		case "hop":
			if rec.Msg == nil {
				t.Fatalf("hop event without msg kind: %q", line)
			}
			if !started[rec.Trace] {
				t.Fatalf("hop before start for trace %s", rec.Trace)
			}
			hops++
		case "done":
			if rec.Rounds == nil || rec.OK == nil {
				t.Fatalf("done event without rounds/ok: %q", line)
			}
			if !started[rec.Trace] {
				t.Fatalf("done before start for trace %s", rec.Trace)
			}
			dones++
		default:
			t.Fatalf("unknown event kind %q in %q", rec.Ev, line)
		}
	}
	if starts == 0 || hops == 0 || dones == 0 {
		t.Fatalf("op trace missing lifecycle stages: starts=%d hops=%d dones=%d", starts, hops, dones)
	}
}

// TestMetricsJSONLSchema pins the metrics JSONL exposition schema.
func TestMetricsJSONLSchema(t *testing.T) {
	nw := traceWorkload(t, 0, nil)
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, nw.Telemetry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Metric  string     `json:"metric"`
			Kind    string     `json:"kind"`
			Value   *int64     `json:"value"`
			Count   *int64     `json:"count"`
			Sum     *int64     `json:"sum"`
			Buckets *[][]int64 `json:"buckets"`
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("metrics line does not match schema: %q: %v", line, err)
		}
		switch rec.Kind {
		case "histogram":
			if rec.Count == nil || rec.Sum == nil || rec.Buckets == nil {
				t.Fatalf("histogram line missing count/sum/buckets: %q", line)
			}
			for _, b := range *rec.Buckets {
				if len(b) != 2 {
					t.Fatalf("histogram bucket not a [upper,count] pair: %q", line)
				}
			}
		case "counter", "gauge":
			if rec.Value == nil {
				t.Fatalf("%s line missing value: %q", rec.Kind, line)
			}
		default:
			t.Fatalf("unknown metric kind %q in %q", rec.Kind, line)
		}
	}
}
