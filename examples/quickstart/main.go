// Quickstart: store one item in a churning P2P network and retrieve it
// from an unrelated node — the paper's headline capability in ~30 lines.
package main

import (
	"fmt"
	"log"

	"dynp2p"
)

func main() {
	// A 1024-node network where every round an oblivious adversary
	// replaces n/log² n ≈ 2% of all nodes and rewires the expander.
	// (The paper's law C·n/log^{1+δ} n with δ=1; smaller δ is swept by
	// the stress experiment E11 — at laptop-scale n it exceeds what any
	// node's lifetime can sustain.)
	nw := dynp2p.New(dynp2p.Config{
		N:          1024,
		ChurnRate:  1,
		ChurnDelta: 1.0,
		Seed:       42,
	})

	// Let the random-walk soup mix so nodes can sample random peers.
	nw.Run(nw.WarmupRounds())

	// The node at slot 0 stores an item. Behind this call: it elects a
	// committee of Θ(log n) random nodes that store copies and maintain
	// Ω(√n) landmark pointers, re-electing themselves as churn bites.
	payload := []byte("hello, dynamic peer-to-peer world")
	nw.Store(0, 7, payload)
	nw.Run(nw.Tunables().Protocol.Period)
	fmt.Printf("after one maintenance epoch: %d copies, %d landmarks\n",
		nw.CopyCount(7), nw.LandmarkCount(7))

	// A completely unrelated node searches for the item by key.
	nw.Retrieve(512, 7, payload)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 5)

	for _, r := range nw.Results() {
		if !r.Success {
			log.Fatalf("retrieval failed: %+v", r)
		}
		fmt.Printf("retrieved %d bytes in %d rounds (located after %d)\n",
			r.Bytes, r.Done-r.Start, r.Found-r.Start)
	}

	st := nw.Stats()
	fmt.Printf("churn endured: %d node replacements over %d rounds\n",
		st.Engine.Replacements, st.Engine.Rounds)
}
