// Churnstore models the paper's motivating application (§1): a fully
// decentralised backup service in the style of CrashPlan/Symform, where
// peers store each other's data with no central servers — while half the
// network turns over.
//
// It stores a batch of "backup files", lets the network churn until the
// cumulative replacements exceed the network size several times over, and
// audits availability (Definition 1) at every maintenance epoch.
package main

import (
	"fmt"

	"dynp2p"
	"dynp2p/internal/rng"
)

func main() {
	const (
		n     = 1024
		files = 10
	)
	nw := dynp2p.New(dynp2p.Config{
		N:          n,
		ChurnRate:  1,
		ChurnDelta: 1.0,
		Seed:       7,
	})
	tun := nw.Tunables()
	nw.Run(nw.WarmupRounds())

	// Each "user" stores one backup file from a different node.
	contents := make(map[uint64][]byte, files)
	for i := 0; i < files; i++ {
		key := uint64(1000 + i)
		data := make([]byte, 512)
		rng.New(key).Fill(data)
		contents[key] = data
		nw.Store((i*97)%n, key, data)
	}
	nw.Run(tun.Protocol.Period)

	fmt.Printf("backup of %d files on %d nodes; auditing availability under churn\n", files, n)
	fmt.Printf("%-8s %-14s %-12s %-12s %-10s\n", "epoch", "replacements", "avail-files", "mean-copies", "landmarks")

	epoch := 0
	for nw.Stats().Engine.Replacements < int64(3*n) {
		nw.Run(tun.Protocol.Period)
		epoch++
		avail := 0
		copies, lms := 0, 0
		for key := range contents {
			c := nw.CopyCount(key)
			l := nw.LandmarkCount(key)
			if c > 0 && l > 0 {
				avail++
			}
			copies += c
			lms += l
		}
		fmt.Printf("%-8d %-14d %-12s %-12.1f %-10d\n",
			epoch, nw.Stats().Engine.Replacements,
			fmt.Sprintf("%d/%d", avail, files),
			float64(copies)/float64(files), lms/files)
	}

	// Final restore drill: every file must come back intact.
	fmt.Println("\nrestore drill:")
	for i := 0; i < files; i++ {
		key := uint64(1000 + i)
		nw.Retrieve((i*389+11)%n, key, contents[key])
	}
	nw.Run(tun.Protocol.SearchTTL + 5)
	restored := 0
	for _, r := range nw.Results() {
		if r.Success {
			restored++
		}
	}
	fmt.Printf("restored %d/%d files after the network turned over %.1fx\n",
		restored, files, float64(nw.Stats().Engine.Replacements)/float64(n))
}
