// Erasure contrasts the two storage modes of §4.4 on the same workload:
// full replication (Θ(log n) copies of the item) versus Rabin IDA
// dispersal (Θ(log n) pieces totalling a constant-factor blow-up), and
// shows that both survive churn because the committee reconstructs and
// re-disperses the item at every epoch handover.
package main

import (
	"fmt"

	"dynp2p"
	"dynp2p/internal/rng"
)

func run(name string, idaK int) {
	const n = 512
	const itemLen = 4096
	// C = 0.5 keeps committees in their healthy regime (see E05); K must
	// leave headroom for piece loss between handovers, so K <= L/3 is the
	// laptop-scale analogue of the paper's (h-2)log n threshold.
	nw := dynp2p.New(dynp2p.Config{
		N: n, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 21, ErasureK: idaK,
	})
	nw.Run(nw.WarmupRounds())
	data := make([]byte, itemLen)
	rng.New(3).Fill(data)
	nw.Store(0, 3, data)
	nw.Run(4)

	perCopy := itemLen
	if idaK > 0 {
		perCopy = (itemLen + idaK - 1) / idaK
	}
	copies := nw.CopyCount(3)
	fmt.Printf("%-14s item=%dB copies=%d per-copy=%dB total=%.1fKB (%.1fx the item)\n",
		name, itemLen, copies, perCopy,
		float64(copies*perCopy)/1024, float64(copies*perCopy)/float64(itemLen))

	// Survive five maintenance epochs of churn, then restore.
	nw.Run(5 * nw.Tunables().Protocol.Period)
	nw.Retrieve(256, 3, data)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 5)
	outcome := "item lost"
	for _, r := range nw.Results() {
		if r.Success {
			outcome = fmt.Sprintf("restored %dB in %d rounds", r.Bytes, r.Done-r.Start)
		}
	}
	st := nw.Stats()
	fmt.Printf("%-14s after 5 epochs (%d replacements): %s", name, st.Engine.Replacements, outcome)
	if idaK > 0 {
		fmt.Printf(" [%d reconstruct-and-redisperse handovers]", st.Proto.IDARecoded)
	}
	fmt.Println()
	fmt.Println()
}

func main() {
	committee := dynp2p.New(dynp2p.Config{N: 512, Seed: 1}).Tunables().Protocol.CommitteeSize
	fmt.Printf("committee size (h log n) = %d\n\n", committee)
	run("replication", 0)
	run("IDA K=L/4", committee/4)
	run("IDA K=L/3", committee/3)
}
