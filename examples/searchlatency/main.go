// Searchlatency demonstrates Theorem 4's O(log n) retrieval bound: it
// sweeps the network size and shows that the median rounds-to-locate
// grows like log n (the latency/ln n column stays flat), while success
// stays near 100%.
package main

import (
	"fmt"
	"math"

	"dynp2p"
	"dynp2p/internal/rng"
	"dynp2p/internal/stats"
)

func main() {
	fmt.Printf("%-7s %-10s %-9s %-9s %-9s\n", "n", "success", "p50", "p95", "p50/ln n")
	for _, n := range []int{256, 512, 1024, 2048} {
		nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 99})
		nw.Run(nw.WarmupRounds())
		data := make([]byte, 64)
		rng.New(5).Fill(data)
		nw.Store(0, 5, data)
		nw.Run(nw.Tunables().Protocol.Period)

		const searches = 16
		var lats []float64
		ok, issued := 0, 0
		for wave := 0; wave < 4; wave++ {
			for i := 0; i < searches/4; i++ {
				nw.Retrieve((wave*997+i*131+17)%n, 5, data)
				issued++
			}
			nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
			for _, r := range nw.Results() {
				if r.Success {
					ok++
					lats = append(lats, float64(r.Found-r.Start))
				}
			}
		}
		p50, p95 := 0.0, 0.0
		if len(lats) > 0 {
			sm := stats.Summarize(lats)
			p50, p95 = sm.Median, sm.P95
		}
		ln := math.Log(float64(n))
		fmt.Printf("%-7d %-10s %-9.1f %-9.1f %-9.2f\n",
			n, fmt.Sprintf("%d/%d", ok, issued), p50, p95, p50/ln)
	}
	fmt.Println("\nflat p50/ln n across the sweep is the O(log n) signature (Thm 4)")
}
