package dynp2p

import (
	"reflect"
	"runtime"
	"testing"

	"dynp2p/internal/rng"
)

// TestRoutedStoreRetrieve is the overlay-routing smoke test: the full
// store/retrieve pipeline succeeds when every protocol message walks the
// expander edge-by-edge instead of teleporting, and the engine's delivery
// tally matches the router's — the zero-teleport invariant.
func TestRoutedStoreRetrieve(t *testing.T) {
	nw := New(Config{
		N: 256, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 7,
		Routing: RoutingConfig{Mode: RoutingOverlay, WalkBudget: 512},
	})
	nw.Run(nw.WarmupRounds())
	data := make([]byte, 100)
	rng.New(1).Fill(data)
	nw.Store(0, 42, data)
	nw.Run(nw.Tunables().Protocol.Period)
	if nw.CopyCount(42) == 0 {
		t.Fatal("item not stored")
	}
	nw.Retrieve(128, 42, data)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 5)
	res := nw.Results()
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("routed retrieval failed: %+v", res)
	}
	st := nw.Stats()
	if st.Route.Sent == 0 || st.Route.Forwards == 0 {
		t.Fatalf("no routed traffic: %+v", st.Route)
	}
	if st.Engine.MsgsDelivered != st.Route.Delivered {
		t.Fatalf("teleported deliveries: engine delivered %d, router delivered %d",
			st.Engine.MsgsDelivered, st.Route.Delivered)
	}
	if st.Route.Forwards < st.Route.Delivered {
		t.Fatalf("fewer forwards (%d) than deliveries (%d): walks are not walking",
			st.Route.Forwards, st.Route.Delivered)
	}
}

// TestRoutedEdgeConformance is the edge-conformance oracle: over 200+
// routed rounds under paper churn with the self-healing overlay repairing
// the topology, every forward the router takes must traverse an edge of
// that round's live adjacency. Nothing mutates the graph after the routed
// phase within a round, so validating the hops recorded during Run(1)
// against the adjacency visible after it returns is exact. Message
// conservation and the zero-teleport invariant are checked at the end.
func TestRoutedEdgeConformance(t *testing.T) {
	const rounds = 220
	nw := New(Config{
		N: 512, ChurnRate: 1, ChurnDelta: 1.0, Seed: 13,
		Edges:   EdgesSelfHealing,
		Routing: RoutingConfig{Mode: RoutingOverlay, WalkBudget: 1024, LinkCapacity: 6},
	})
	e := nw.Engine()
	type hop struct{ from, to int }
	var hops []hop
	e.SetHopRecorder(func(r, from, to int) { hops = append(hops, hop{from, to}) })
	nw.Run(nw.WarmupRounds())

	data := make([]byte, 64)
	rng.New(2).Fill(data)
	checked, bad := 0, 0
	for r := 0; r < rounds; r++ {
		if r%40 == 0 {
			nw.Store(nw.OldestSlot(), uint64(100+r), data)
		}
		if r%17 == 5 {
			nw.Retrieve((r*37)%nw.N(), uint64(100+40*(r/40)), data)
		}
		hops = hops[:0]
		nw.Run(1)
		g := e.Graph()
		for _, h := range hops {
			ok := false
			for _, nb := range g.Neighbors(h.from) {
				if int(nb) == h.to {
					ok = true
					break
				}
			}
			if !ok {
				bad++
				if bad <= 5 {
					t.Errorf("round %d: hop %d->%d is not an edge of the live adjacency", nw.Round(), h.from, h.to)
				}
			}
			checked++
		}
	}
	if bad > 0 {
		t.Fatalf("%d of %d hops off-graph", bad, checked)
	}
	if checked == 0 {
		t.Fatal("no hops recorded: routed traffic never flowed")
	}

	st := nw.Stats()
	m := st.Route
	if st.Engine.MsgsDelivered != m.Delivered {
		t.Fatalf("teleported deliveries: engine delivered %d, router delivered %d",
			st.Engine.MsgsDelivered, m.Delivered)
	}
	inFlight := int64(e.RoutedInFlight())
	drops := m.DroppedBudget + m.DroppedQueueFull + m.DroppedChurn + m.DroppedDead
	if m.Sent != m.Delivered+drops+inFlight {
		t.Fatalf("message conservation violated: sent %d != delivered %d + drops %d + in-flight %d",
			m.Sent, m.Delivered, drops, inFlight)
	}
}

// TestRoutedWorkerCountIndependence pins the routed phase's determinism:
// on a churning self-healing network in overlay mode with tracing on and
// link capacities tight enough to queue and drop, the combined stats
// (including every route counter), the retrieval results, and the full
// deterministic telemetry snapshot must be bit-identical for
// Workers ∈ {1, 3, GOMAXPROCS}.
func TestRoutedWorkerCountIndependence(t *testing.T) {
	type snapshot struct {
		stats   Stats
		results []Result
		metrics any
	}
	run := func(workers int) snapshot {
		nw := New(Config{
			N: 1024, ChurnRate: 1, ChurnDelta: 1.0, Seed: 5, Workers: workers,
			Edges:            EdgesSelfHealing,
			Routing:          RoutingConfig{Mode: RoutingOverlay, WalkBudget: 2048, LinkCapacity: 4, QueueLimit: 8},
			Cache:            CacheConfig{Capacity: 2, SeedRate: 0.7},
			TraceSampleEvery: 1,
		})
		nw.Run(nw.WarmupRounds())
		data := make([]byte, 48)
		rng.New(4).Fill(data)
		nw.Store(0, 7, data)
		nw.Run(nw.Tunables().Protocol.Period)
		nw.Retrieve(512, 7, data)
		nw.Retrieve(99, 7, data)
		nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
		return snapshot{
			stats:   nw.Stats(),
			results: nw.Results(),
			metrics: nw.Telemetry().DeterministicSnapshot(),
		}
	}
	base := run(1)
	if base.stats.Route.Sent == 0 {
		t.Fatal("no routed traffic")
	}
	if base.stats.Route.Parked == 0 && base.stats.Route.DroppedQueueFull == 0 {
		t.Error("congestion leg produced no queueing; tighten LinkCapacity")
	}
	for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if base.stats != got.stats {
			t.Errorf("workers=%d: stats differ:\n%+v\n%+v", w, base.stats, got.stats)
		}
		if !reflect.DeepEqual(base.results, got.results) {
			t.Errorf("workers=%d: retrieval results differ", w)
		}
		if !reflect.DeepEqual(base.metrics, got.metrics) {
			t.Errorf("workers=%d: deterministic telemetry snapshots differ", w)
		}
	}
}
