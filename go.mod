module dynp2p

go 1.22
