package dynp2p

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"dynp2p/internal/rng"
	"dynp2p/internal/walks"
)

func TestFacadeStoreRetrieve(t *testing.T) {
	nw := New(Config{N: 256, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 7})
	nw.Run(nw.WarmupRounds())
	data := make([]byte, 100)
	rng.New(1).Fill(data)
	nw.Store(0, 42, data)
	nw.Run(nw.Tunables().Protocol.Period)
	if nw.CopyCount(42) == 0 {
		t.Fatal("item not stored")
	}
	if nw.LandmarkCount(42) == 0 {
		t.Fatal("no landmarks")
	}
	nw.Retrieve(128, 42, data)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 5)
	res := nw.Results()
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("retrieval failed: %+v", res)
	}
}

func TestFacadeErasureMode(t *testing.T) {
	nw := New(Config{N: 256, Seed: 9, ErasureK: 6})
	nw.Run(nw.WarmupRounds())
	data := bytes.Repeat([]byte("abc"), 100)
	nw.Store(3, 5, data)
	nw.Run(nw.Tunables().Protocol.Period + 10)
	nw.Retrieve(99, 5, data)
	nw.Run(nw.Tunables().Protocol.SearchTTL + 5)
	res := nw.Results()
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("erasure retrieval failed: %+v", res)
	}
	if res[0].Bytes != len(data) {
		t.Fatalf("got %d bytes, want %d", res[0].Bytes, len(data))
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		nw := New(Config{N: 128, ChurnRate: 1, Seed: 3, Workers: 3})
		nw.Run(30)
		return nw.Stats(), nw.Round()
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("same config produced different stats:\n%+v\n%+v", s1, s2)
	}
}

// TestWorkerCountIndependence is the facade-level regression net for the
// engine's sort-free canonical ordering: on a faulty, churning 2048-node
// network running the full protocol stack, the engine metrics, every
// retrieval result, and the walk soup's per-slot sample sets must be
// bit-identical for Workers ∈ {1, 3, GOMAXPROCS}. The caching leg
// additionally exercises hot-key replica placement, cascade seeding,
// and LRU eviction — all of whose counters ride in Stats — under the
// same worker sweep.
func TestWorkerCountIndependence(t *testing.T) {
	type snapshot struct {
		stats   Stats
		results []Result
		samples [][]walks.Sample // per slot, last round's completed walks
	}
	run := func(workers int, cache CacheConfig) snapshot {
		nw := New(Config{
			N: 2048, ChurnRate: 1, ChurnDelta: 1.0, Seed: 5, Workers: workers,
			Fault: FaultConfig{DropProb: 0.03, DelayProb: 0.1, MaxDelay: 2},
			Cache: cache,
		})
		nw.Run(nw.WarmupRounds())
		data := make([]byte, 48)
		rng.New(4).Fill(data)
		nw.Store(0, 7, data)
		nw.Run(nw.Tunables().Protocol.Period)
		nw.Retrieve(1024, 7, data)
		nw.Retrieve(99, 7, data)
		nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
		// A third retrieval after the first two completed: with caching
		// on it exercises serve/admit paths against a warm population.
		nw.Retrieve(555, 7, data)
		nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
		snap := snapshot{stats: nw.Stats(), results: nw.Results()}
		for s := 0; s < nw.N(); s++ {
			snap.samples = append(snap.samples,
				append([]walks.Sample(nil), nw.Soup().Samples(s)...))
		}
		return snap
	}
	for _, leg := range []struct {
		name  string
		cache CacheConfig
	}{
		{"cache-off", CacheConfig{}},
		{"cache-on", CacheConfig{Capacity: 2, SeedRate: 0.7}},
	} {
		t.Run(leg.name, func(t *testing.T) {
			base := run(1, leg.cache)
			if leg.cache.Capacity > 0 && base.stats.Proto.CacheInserts == 0 {
				t.Error("caching leg produced no cache activity")
			}
			for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
				got := run(w, leg.cache)
				if base.stats != got.stats {
					t.Errorf("workers=%d: stats differ:\n%+v\n%+v", w, base.stats, got.stats)
				}
				if !reflect.DeepEqual(base.results, got.results) {
					t.Errorf("workers=%d: retrieval results differ:\n%+v\n%+v", w, base.results, got.results)
				}
				for s := range base.samples {
					if !reflect.DeepEqual(base.samples[s], got.samples[s]) {
						t.Fatalf("workers=%d: soup samples differ at slot %d", w, s)
					}
				}
			}
		})
	}
}

func TestFacadeDefaults(t *testing.T) {
	nw := New(Config{N: 64, Seed: 1})
	tun := nw.Tunables()
	if tun.Protocol.CommitteeSize < 4 {
		t.Fatal("committee size default too small")
	}
	if tun.Walks.WalkLength < 4 {
		t.Fatal("walk length default too small")
	}
	if nw.N() != 64 {
		t.Fatal("N accessor wrong")
	}
	if !nw.IsLive(nw.IDAt(0)) {
		t.Fatal("initial occupant should be live")
	}
}

func TestFacadeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny N did not panic")
		}
	}()
	New(Config{N: 2})
}

func TestFacadeChurnStrategies(t *testing.T) {
	for _, s := range []Strategy{Uniform, OldestFirst, YoungestFirst, SweepBurst} {
		nw := New(Config{N: 64, ChurnRate: 1, Strategy: s, Seed: 11})
		nw.Run(20)
		if nw.Stats().Engine.Replacements == 0 {
			t.Fatalf("strategy %v produced no churn", s)
		}
	}
}
