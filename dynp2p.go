// Package dynp2p is a faithful, simulation-backed implementation of
// "Storage and Search in Dynamic Peer-to-Peer Networks" (Augustine, Molla,
// Morsy, Pandurangan, Robinson, Upfal; SPAA 2013): randomized distributed
// algorithms that store, maintain, and retrieve data items in a P2P
// network whose topology is an adversarially evolving d-regular expander
// with up to O(n/log^{1+δ} n) node replacements per round.
//
// The package is a facade over the full stack:
//
//	simnet   — the synchronous dynamic-network engine (model §2.1)
//	walks    — the random-walk "soup" (§3, Soup Theorem)
//	protocol — committees, landmarks, storage, search (§4, Algorithms 1-4)
//	ida      — Rabin's Information Dispersal erasure coding (§4.4)
//
// A minimal session:
//
//	nw := dynp2p.New(dynp2p.Config{N: 1024, ChurnRate: 1, ChurnDelta: 0.5, Seed: 7})
//	nw.Run(nw.WarmupRounds())          // let the walk soup mix
//	nw.Store(0, 42, []byte("payload")) // node at slot 0 stores item 42
//	nw.Run(nw.Tunables().Protocol.Period)
//	nw.Retrieve(512, 42, nil)          // another node searches for it
//	nw.Run(nw.Tunables().Protocol.SearchTTL)
//	for _, r := range nw.Results() { fmt.Println(r.Success, r.Done-r.Start) }
//
// Everything is deterministic in (Config.Seed, Config). See DESIGN.md for
// the architecture and EXPERIMENTS.md for the reproduction of each of the
// paper's theorems.
package dynp2p

import (
	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/overlay"
	"dynp2p/internal/protocol"
	"dynp2p/internal/route"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// Strategy selects which nodes the oblivious adversary replaces.
type Strategy = churn.Strategy

// Churn strategies (re-exported).
const (
	Uniform       = churn.Uniform
	OldestFirst   = churn.OldestFirst
	YoungestFirst = churn.YoungestFirst
	SweepBurst    = churn.SweepBurst
)

// NodeID identifies a node.
type NodeID = simnet.NodeID

// Law determines how many nodes the adversary replaces per round
// (re-exported; see internal/churn for implementations, including the
// time-varying Schedule/Ramp/Burst laws used by scenarios).
type Law = churn.Law

// EdgeMode selects how the topology's edges evolve between rounds
// (re-exported; see internal/expander).
type EdgeMode = expander.EdgeMode

// Edge dynamics modes (re-exported). EdgesSelfHealing replaces the
// oracle with the peer-maintained repair of internal/overlay: live nodes
// detect dead neighbors and rebuild their adjacency from walk samples.
const (
	EdgesRerandomize    = expander.Rerandomize
	EdgesStatic         = expander.Static
	EdgesPeriodic       = expander.Periodic
	EdgesRingPlusRandom = expander.RingPlusRandom
	EdgesSelfHealing    = expander.SelfHealing
)

// ParseEdgeMode resolves an edge-mode name ("rerandomize", "static",
// "periodic", "ring+random", "self-healing") to its EdgeMode.
func ParseEdgeMode(s string) (EdgeMode, error) { return expander.ParseEdgeMode(s) }

// RoutingMode selects how protocol messages travel (re-exported; see
// internal/simnet). RoutingOracle teleports each message to its
// addressee in one round — the historical engine exchange. RoutingOverlay
// walks every message edge-by-edge over the live expander with per-slot
// link capacities and bounded queues (DESIGN.md §11).
type RoutingMode = simnet.RoutingMode

// Routing modes (re-exported).
const (
	RoutingOracle  = simnet.RoutingOracle
	RoutingOverlay = simnet.RoutingOverlay
)

// ParseRoutingMode resolves a routing-mode name ("oracle", "overlay").
func ParseRoutingMode(s string) (RoutingMode, error) { return simnet.ParseRoutingMode(s) }

// RoutingConfig parameterises overlay message routing (re-exported):
// Mode, WalkBudget (0 = auto), LinkCapacity (0 = unlimited), QueueLimit
// (0 = default).
type RoutingConfig = simnet.RoutingConfig

// RouteMetrics is the overlay router's counter snapshot (re-exported).
type RouteMetrics = route.Metrics

// FaultModel perturbs message delivery at routing time (re-exported).
type FaultModel = simnet.FaultModel

// FaultConfig is the standard probabilistic fault model: independent
// message drop plus bounded uniform delivery delay (re-exported).
type FaultConfig = simnet.DropDelayFaults

// Result is the outcome of one retrieval.
type Result = protocol.SearchResult

// Config parameterises a network. Zero values get sensible defaults.
type Config struct {
	// N is the stable network size (required, >= 8).
	N int
	// Degree is the expander degree (even; default 8).
	Degree int
	// ChurnRate is C in the paper's churn law C·n/log^{1+δ} n replaced
	// per round. 0 disables churn.
	ChurnRate float64
	// ChurnDelta is δ in the churn law (default 0.5).
	ChurnDelta float64
	// ChurnLaw, when non-nil, replaces the ChurnRate/ChurnDelta-derived
	// law entirely — e.g. a churn.Schedule that varies rate over phases.
	ChurnLaw Law
	// Strategy picks which slots are replaced (default Uniform).
	Strategy Strategy
	// Fault, when non-nil, drops or delays messages at routing time.
	// Fault randomness derives from Seed's adversary stream, so faulty
	// runs stay deterministic. Use Network.SetFault to vary it mid-run.
	Fault FaultModel
	// Seed drives both the adversary (seed) and the protocol (seed+1);
	// the two streams are independent, which is what makes the adversary
	// oblivious.
	Seed uint64
	// ErasureK > 0 enables IDA erasure-coded storage (§4.4) with
	// reconstruction threshold K; pieces = committee size.
	ErasureK int
	// Workers bounds simulation parallelism (0 = all cores). It is a
	// throughput knob only: a run is bit-identical — same metrics, same
	// retrieval results, same walk samples — at every Workers value,
	// because handler randomness is per-node, fault fates are stateless
	// hashes, and message/token exchanges merge a fixed shard grid in
	// fixed order (see DESIGN.md §6). TestWorkerCountIndependence
	// enforces this.
	Workers int
	// Shards pins the slot-shard grid count (a power of two ≤ 256). 0
	// lets the engine pick from N and GOMAXPROCS. Results are a pure
	// function of (Seed, parameters, shard count) at any Workers value;
	// pin Shards to reproduce a run bit-identically across machines with
	// different core counts.
	Shards int
	// Edges selects the topology's edge dynamics. The zero value is
	// EdgesRerandomize (the oracle draws a fresh expander every round).
	// EdgesSelfHealing turns the oracle off after round 0 and lets the
	// peers maintain the expander themselves (internal/overlay).
	Edges EdgeMode
	// EdgePeriod is the re-randomisation period for EdgesPeriodic.
	EdgePeriod int
	// SpectralEvery estimates the topology's second eigenvalue λ every
	// k rounds (0 = off), surfaced in Stats.Overlay. Telemetry only: it
	// never affects the simulation's behaviour.
	SpectralEvery int
	// StaticEdges freezes the topology (edges stop changing; churn still
	// replaces occupants). Deprecated shorthand for Edges: EdgesStatic,
	// honoured when Edges is left at its zero value.
	StaticEdges bool
	// Routing selects how protocol messages travel. The zero value is
	// RoutingOracle (one-round teleports, the historical engine).
	// Routing.Mode = RoutingOverlay makes every protocol message walk the
	// expander edge-by-edge with congestion accounting; use
	// Network.SetRouting to A/B the modes mid-run.
	Routing RoutingConfig
	// Cache enables hot-key caching (DESIGN.md §10): completed retrievals
	// are cached and probabilistically replicated along walk samples, so
	// hot keys resolve without committee formation. The zero value
	// disables caching. Use Network.SetCache to vary it mid-run.
	Cache CacheConfig
	// TraceSampleEvery enables operation-lifecycle tracing: roughly one in
	// k store/search operations is sampled (deterministically, by hashing
	// the operation key and issuer against Seed) and its per-round hop and
	// completion events feed the dynp2p_search_*/dynp2p_store_* histograms.
	// 1 traces every operation; 0 disables tracing.
	TraceSampleEvery int
	// Profile enables the round-phase profiler: wall-clock time per engine
	// phase (churn/topology/deliver/soup/overlay/handlers/route), exposed
	// via Network.Profiler(). Timing-only; never affects determinism.
	Profile bool
}

// CacheConfig parameterises the hot-key cache. Capacity is per-node
// entries (0 = caching off); TTL is the entry lifetime in rounds (0 =
// 2× the landmark TTL); SeedRate is the probability an eligible walk
// sample receives a replica when a node completes or serves a retrieval
// (0 = 0.5).
type CacheConfig struct {
	Capacity int
	TTL      int
	SeedRate float64
}

// Tunables exposes the derived protocol and walk parameters of a network.
type Tunables struct {
	Walks    walks.Params
	Protocol protocol.Params
}

// Stats is a combined metrics snapshot.
type Stats struct {
	Engine  simnet.Metrics
	Soup    walks.Metrics
	Proto   protocol.Counters
	Overlay overlay.Metrics
	Route   RouteMetrics // zero under RoutingOracle
}

// Network is a running simulation of the paper's system.
type Network struct {
	cfg  Config
	e    *simnet.Engine
	soup *walks.Soup
	ov   *overlay.Overlay
	h    *protocol.Handler
}

// New builds a network. Panics on invalid configuration (this is a
// constructor for experiments and examples; misconfiguration is a bug).
func New(cfg Config) *Network { return NewCustom(cfg, nil) }

// NewCustom builds a network and lets the caller adjust the derived walk
// and protocol parameters before the stack is assembled (used by the
// ablation experiments; most callers want New).
func NewCustom(cfg Config, adjust func(*walks.Params, *protocol.Params)) *Network {
	if cfg.N < 8 {
		panic("dynp2p: N must be at least 8")
	}
	if cfg.Degree == 0 {
		cfg.Degree = 8
	}
	if cfg.ChurnDelta == 0 {
		cfg.ChurnDelta = 0.5
	}
	var law churn.Law = churn.ZeroLaw{}
	if cfg.ChurnRate > 0 {
		law = churn.PaperLaw(cfg.ChurnRate, cfg.ChurnDelta)
	}
	if cfg.ChurnLaw != nil {
		law = cfg.ChurnLaw
	}
	mode := cfg.Edges
	if cfg.StaticEdges && mode == EdgesRerandomize {
		mode = EdgesStatic
	}
	e := simnet.New(simnet.Config{
		N: cfg.N, Degree: cfg.Degree, EdgeMode: mode, EdgePeriod: cfg.EdgePeriod,
		AdversarySeed: cfg.Seed, ProtocolSeed: cfg.Seed + 1,
		Strategy: cfg.Strategy, Law: law, Fault: cfg.Fault, Workers: cfg.Workers,
		Shards: cfg.Shards, Routing: cfg.Routing,
	})
	wp := walks.DefaultParams(cfg.N)
	pp := protocol.DefaultParams(cfg.N, wp.WalkLength)
	pp.IDAThreshold = cfg.ErasureK
	pp.CacheCapacity = cfg.Cache.Capacity
	pp.CacheTTL = cfg.Cache.TTL
	pp.CacheSeedRate = cfg.Cache.SeedRate
	if adjust != nil {
		adjust(&wp, &pp)
	}
	soup := walks.NewSoup(e, wp, cfg.Workers)
	e.AddNamedHook("soup", soup)
	// The overlay hook must follow the soup: repair consumes the round's
	// fresh samples and must rewire only after the soup's snapshot. It is
	// always registered (repairs are inert outside EdgesSelfHealing) so
	// SetEdgeMode can switch topologies mid-run.
	ov := overlay.New(e, soup, overlay.Config{SpectralEvery: cfg.SpectralEvery})
	e.AddNamedHook("overlay", ov)
	h := protocol.NewHandler(e, soup, pp)
	if cfg.TraceSampleEvery > 0 {
		e.SetTracer(telemetry.NewTracer(e.Telemetry(), cfg.Seed, cfg.TraceSampleEvery))
	}
	if cfg.Profile {
		e.EnableProfiling()
	}
	return &Network{cfg: cfg, e: e, soup: soup, ov: ov, h: h}
}

// Run advances the simulation by the given number of rounds.
func (nw *Network) Run(rounds int) {
	nw.e.Run(nw.h, rounds)
}

// Round returns the current round number.
func (nw *Network) Round() int { return nw.e.Round() }

// N returns the stable network size.
func (nw *Network) N() int { return nw.e.N() }

// WarmupRounds returns how many rounds the walk soup needs before nodes
// have samples to build committees from (one walk length plus slack).
func (nw *Network) WarmupRounds() int { return nw.soup.Params().WalkLength + 3 }

// Tunables returns the derived parameters in use.
func (nw *Network) Tunables() Tunables {
	return Tunables{Walks: nw.soup.Params(), Protocol: nw.h.P}
}

// Store asks the node currently at slot to persistently store (key, data).
// Call between Run calls.
func (nw *Network) Store(slot int, key uint64, data []byte) {
	nw.h.RequestStore(nw.e, slot, key, data)
}

// Retrieve asks the node currently at slot to find item key. When expect
// is non-nil the retrieved bytes are verified against it. Call between Run
// calls.
func (nw *Network) Retrieve(slot int, key uint64, expect []byte) {
	nw.h.RequestRetrieve(nw.e, slot, key, expect)
}

// Results returns (and clears) completed retrievals.
func (nw *Network) Results() []Result { return nw.h.DrainResults() }

// SetFault installs (or, with nil, removes) the message fault model. Call
// between Run calls; scenario phases use this to vary network quality.
func (nw *Network) SetFault(f FaultModel) { nw.e.SetFault(f) }

// SetCache reconfigures the hot-key cache mid-run: capacity 0 disables
// it, raising capacity grows every node's cache region in place. Call
// between Run calls; scenario phases use this for per-phase overrides
// and capacity sweeps.
func (nw *Network) SetCache(c CacheConfig) { nw.h.SetCache(c.Capacity, c.TTL, c.SeedRate) }

// SetRouting switches message routing mid-run (oracle ↔ overlay, or new
// capacity/budget parameters). Call between Run calls; scenario phases
// use this to pit routed and teleported delivery against the same churn
// timeline. Switching away from overlay drops (and accounts) every
// in-flight walker.
func (nw *Network) SetRouting(rc RoutingConfig) { nw.e.SetRouting(rc) }

// Routing returns the current routing configuration.
func (nw *Network) Routing() RoutingConfig { return nw.e.Routing() }

// SetEdgeMode switches the topology's edge dynamics mid-run (period is
// only used by EdgesPeriodic; pass 0 to keep the current period). Call
// between Run calls; scenario phases use this to pit oracle-maintained
// and self-maintained topologies against the same churn timeline.
func (nw *Network) SetEdgeMode(mode EdgeMode, period int) { nw.e.SetEdgeMode(mode, period) }

// Stats returns a combined metrics snapshot.
func (nw *Network) Stats() Stats {
	return Stats{
		Engine: nw.e.Metrics(), Soup: nw.soup.Metrics(),
		Proto: nw.h.Counters(), Overlay: nw.ov.Metrics(),
		Route: nw.e.RouteMetrics(),
	}
}

// CopyCount reports how many nodes currently hold a copy (or erasure
// piece) of the item.
func (nw *Network) CopyCount(key uint64) int { return nw.h.CopyCount(key) }

// LandmarkCount reports the current number of storage landmarks
// advertising the item.
func (nw *Network) LandmarkCount(key uint64) int {
	return nw.h.StorageLandmarkCount(key, nw.e.Round())
}

// CommitteeSize reports the current number of live members of the item's
// storage committee.
func (nw *Network) CommitteeSize(key uint64) int {
	return len(nw.h.CommitteeSlots(key))
}

// IsLive reports whether a node id is still in the network.
func (nw *Network) IsLive(id NodeID) bool { return nw.e.IsLive(id) }

// OldestSlot returns the slot whose occupant has been in the network the
// longest (ties broken by slot index). Such a node is in the paper's Core
// with overwhelming probability, which makes it the natural issuer of
// store operations in experiments: Theorems 3 and 4 guarantee behaviour
// for long-lived nodes, not for peers that joined moments ago.
func (nw *Network) OldestSlot() int {
	best, bestJoin := 0, int(^uint(0)>>1)
	for s := 0; s < nw.e.N(); s++ {
		if jr := nw.e.JoinRound(s); jr < bestJoin {
			best, bestJoin = s, jr
		}
	}
	return best
}

// IDAt returns the id of the node currently occupying slot.
func (nw *Network) IDAt(slot int) NodeID { return nw.e.IDAt(slot) }

// Telemetry returns the network's metrics registry: every subsystem's
// counters, gauges, and histograms, snapshottable between Run calls.
func (nw *Network) Telemetry() *telemetry.Registry { return nw.e.Telemetry() }

// Tracer returns the operation-lifecycle tracer, or nil when
// Config.TraceSampleEvery is 0.
func (nw *Network) Tracer() *telemetry.Tracer { return nw.e.Tracer() }

// Profiler returns the round-phase profiler, or nil when Config.Profile
// is false.
func (nw *Network) Profiler() *telemetry.PhaseProfiler { return nw.e.Profiler() }

// Engine exposes the underlying engine for advanced instrumentation
// (experiments, custom hooks). Most callers never need it.
func (nw *Network) Engine() *simnet.Engine { return nw.e }

// Handler exposes the protocol handler for advanced introspection.
func (nw *Network) Handler() *protocol.Handler { return nw.h }

// Soup exposes the walk soup for advanced introspection.
func (nw *Network) Soup() *walks.Soup { return nw.soup }

// Overlay exposes the self-healing overlay for advanced introspection
// (always present; repairs are active only under EdgesSelfHealing).
func (nw *Network) Overlay() *overlay.Overlay { return nw.ov }
