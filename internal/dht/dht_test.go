package dht

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/simnet"
)

func newEngine(n int, law churn.Law, seed uint64) *simnet.Engine {
	return simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: seed, ProtocolSeed: seed + 1,
		Strategy: churn.Uniform, Law: law,
	})
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b uint64
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false},
		{10, 20, 20, true},
		{10, 25, 20, false},
		{20, 25, 10, true},  // wrap
		{20, 5, 10, true},   // wrap
		{20, 15, 10, false}, // wrap
	}
	for _, c := range cases {
		if got := between(c.a, c.x, c.b); got != c.want {
			t.Fatalf("between(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestBootstrapRingHealthy(t *testing.T) {
	e := newEngine(256, churn.ZeroLaw{}, 1)
	h := NewHandler(256)
	e.RunRound(h) // round 0 joins
	h.Bootstrap(e)
	if got := h.RingHealth(e); got != 1.0 {
		t.Fatalf("bootstrapped ring health = %v, want 1", got)
	}
}

func TestStoreAndGetNoChurn(t *testing.T) {
	e := newEngine(256, churn.ZeroLaw{}, 2)
	h := NewHandler(256)
	h.Instrument(e.Telemetry())
	e.RunRound(h)
	h.Bootstrap(e)
	h.RequestStore(e, 3, 42, []byte("hello dht"))
	e.Run(h, h.ttl+5)
	if h.CopyCount(42) == 0 {
		t.Fatal("stored item landed nowhere")
	}
	h.RequestGet(e, 200, 42, 2*h.ttl+10)
	var res []Result
	for i := 0; i < 2*h.ttl+12 && len(res) == 0; i++ {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("DHT get failed: %+v", res)
	}
	if res[0].Hops <= 0 || res[0].Hops > h.ttl+1 {
		t.Fatalf("Hops = %d, want in (0, %d]", res[0].Hops, h.ttl+1)
	}
	if hv := e.Telemetry().HistogramValue("dynp2p_dht_lookup_hops"); hv.Count != 1 {
		t.Fatalf("dht lookup hops histogram count = %d, want 1", hv.Count)
	}
	if got := e.Telemetry().CounterValue("dynp2p_dht_lookups_done_total"); got != 1 {
		t.Fatalf("dht lookups done = %d, want 1", got)
	}
}

func TestGetMissingKeyExpires(t *testing.T) {
	e := newEngine(128, churn.ZeroLaw{}, 3)
	h := NewHandler(128)
	e.RunRound(h)
	h.Bootstrap(e)
	h.RequestGet(e, 5, 31337, 20)
	var res []Result
	for i := 0; i < 25 && len(res) == 0; i++ {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	if len(res) != 1 || res[0].Success {
		t.Fatalf("missing key should expire: %+v", res)
	}
}

func TestRingSurvivesMildChurn(t *testing.T) {
	e := newEngine(256, churn.FixedLaw{Count: 2}, 4)
	h := NewHandler(256)
	e.RunRound(h)
	h.Bootstrap(e)
	e.Run(h, 80)
	if got := h.RingHealth(e); got < 0.8 {
		t.Fatalf("ring health %v under mild churn, want >= 0.8", got)
	}
}

func TestLookupsSucceedUnderMildChurn(t *testing.T) {
	e := newEngine(256, churn.FixedLaw{Count: 1}, 5)
	h := NewHandler(256)
	e.RunRound(h)
	h.Bootstrap(e)
	h.RequestStore(e, 0, 9, []byte("v"))
	e.Run(h, 30)
	ok := 0
	const tries = 6
	for i := 0; i < tries; i++ {
		h.RequestGet(e, 20+i*31, 9, 60)
	}
	deadline := e.Round() + 70
	var res []Result
	for e.Round() < deadline && len(res) < tries {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	for _, r := range res {
		if r.Success {
			ok++
		}
	}
	if ok < tries/2 {
		t.Fatalf("only %d/%d lookups succeeded under mild churn", ok, tries)
	}
}

func TestHeavyChurnDegradesDHT(t *testing.T) {
	// At paper-scale churn the ring cannot keep up: health decays well
	// below the mild-churn case. (This is the E12 separation in miniature.)
	heavy := newEngine(256, churn.RateLaw{C: 4, K: 1.2}, 6)
	hh := NewHandler(256)
	heavy.RunRound(hh)
	hh.Bootstrap(heavy)
	heavy.Run(hh, 80)
	heavyHealth := hh.RingHealth(heavy)

	mild := newEngine(256, churn.FixedLaw{Count: 1}, 6)
	hm := NewHandler(256)
	mild.RunRound(hm)
	hm.Bootstrap(mild)
	mild.Run(hm, 80)
	mildHealth := hm.RingHealth(mild)

	if heavyHealth >= mildHealth {
		t.Fatalf("heavy churn (health %v) should degrade the ring below mild churn (health %v)",
			heavyHealth, mildHealth)
	}
}

func TestJoinAfterChurn(t *testing.T) {
	// Replacement nodes must re-enter the ring via their graph
	// neighbours. A join needs O(log n) hop-rounds, so at churn rate c
	// the steady-state joined fraction is about 1 - c·latency/n; with
	// c = 2 on n = 128 we expect ~85-95% joined.
	e := newEngine(128, churn.FixedLaw{Count: 2}, 7)
	h := NewHandler(128)
	e.RunRound(h)
	h.Bootstrap(e)
	e.Run(h, 60)
	joined := 0
	for s := range h.states {
		if h.states[s].joined {
			joined++
		}
	}
	if joined < 100 {
		t.Fatalf("only %d/128 nodes in the ring after churn; joins not working", joined)
	}
}

func TestPointDeterministic(t *testing.T) {
	if Point(12345) != Point(12345) {
		t.Fatal("Point not deterministic")
	}
	if Point(1) == Point(2) {
		t.Fatal("Point collides on adjacent inputs")
	}
}
