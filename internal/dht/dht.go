// Package dht implements the structured-overlay baseline of §1.3: a
// Chord-like distributed hash table with successor-list replication,
// finger-table routing, and per-round stabilisation, running under the
// same dynamic-network engine and the same adversarial churn as the
// paper's protocol.
//
// The comparison is deliberately generous to the DHT: the overlay starts
// perfectly converged (Bootstrap), stabilisation runs every round, and
// every holder of an item re-replicates it periodically. Experiment E12
// shows that lookups nevertheless collapse at churn rates the paper's
// committee/landmark design tolerates — the paper's core motivation
// ("DHT schemes have no provable performance guarantees under large
// adversarial churn").
package dht

import (
	"cmp"
	"slices"
	"sort"
	"sync"

	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
)

// Message kinds (0x60 range).
const (
	// KindFind routes a lookup toward the successor of a target point.
	// Item = key (or raw point), Aux = packFind(purpose, ttl, finger
	// index), Aux2 = origin id, Blob = item data for store lookups.
	KindFind uint8 = 0x60
	// KindFound answers a join/finger lookup. IDs = [responsible, its
	// successors...], Aux = finger index (finger purpose).
	KindFound uint8 = 0x61
	// KindGetSuccs asks a successor for its predecessor+successor list.
	KindGetSuccs uint8 = 0x62
	// KindSuccs is the stabilisation reply: IDs = [pred, succs...].
	KindSuccs uint8 = 0x63
	// KindNotify tells a node about a possible new predecessor.
	KindNotify uint8 = 0x64
	// KindStore hands an item to its responsible node. Blob = data.
	KindStore uint8 = 0x65
	// KindRepl replicates an item to a successor. Blob = data.
	KindRepl uint8 = 0x66
	// KindData returns item data to a searcher.
	KindData uint8 = 0x67
)

// Lookup purposes inside KindFind.
const (
	purposeJoin uint8 = iota + 1
	purposeFinger
	purposeStore
	purposeGet
)

func packFind(purpose uint8, ttl, finger int) uint64 {
	return uint64(purpose) | uint64(uint8(ttl))<<8 | uint64(uint8(finger))<<16
}

func unpackFind(aux uint64) (purpose uint8, ttl, finger int) {
	return uint8(aux), int(uint8(aux >> 8)), int(uint8(aux >> 16))
}

// Point maps a node id or item key to the identifier ring.
func Point(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// between reports whether x lies in the clockwise interval (a, b] on the
// ring.
func between(a, x, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // interval wraps
}

// clockwise returns the clockwise distance from a to b.
func clockwise(a, b uint64) uint64 { return b - a }

const (
	numFingers  = 24 // finger i targets pt + 2^(63-i)
	succListLen = 8
	stabTimeout = 4 // rounds without a successor reply before dropping it
	replEvery   = 4 // rounds between item re-replications
)

type peer struct {
	id simnet.NodeID
	pt uint64
}

type state struct {
	pt         uint64
	joined     bool
	succs      []peer
	pred       peer
	predSeen   int // round the predecessor last gave a sign of life
	fingers    [numFingers]peer
	nextFinger int
	probeIdx   int                   // rotating successor-liveness probe index
	lastSeen   map[simnet.NodeID]int // per-peer sign-of-life rounds
	items      map[uint64][]byte
	lastRepl   int

	pendingStores []pendingStore
	pendingGets   []uint64
}

// seen records a sign of life from a peer.
func (st *state) seen(id simnet.NodeID, round int) {
	if st.lastSeen == nil {
		st.lastSeen = make(map[simnet.NodeID]int)
	}
	st.lastSeen[id] = round
}

type pendingStore struct {
	key  uint64
	data []byte
}

// Result records a completed DHT lookup. Hops counts the network hops
// the lookup's find/reply chain traversed (0 for expired lookups).
type Result struct {
	Searcher simnet.NodeID
	Key      uint64
	Start    int
	Done     int
	Success  bool
	Hops     int
}

// Handler is the DHT baseline protocol.
type Handler struct {
	states []state
	ttl    int

	mu      sync.Mutex
	results []Result
	open    map[uint64]openGet

	instrumented  bool
	lookupHops    telemetry.Histogram
	lookupRounds  telemetry.Histogram
	lookupsDone   telemetry.Counter
	lookupsFailed telemetry.Counter
}

type openGet struct {
	searcher simnet.NodeID
	key      uint64
	start    int
	deadline int
}

// NewHandler creates a DHT handler for n slots; lookups carry a hop TTL
// derived from n.
func NewHandler(n int) *Handler {
	ttl := 2*log2ceil(n) + 10
	return &Handler{states: make([]state, n), ttl: ttl, open: make(map[uint64]openGet)}
}

// Instrument registers DHT lookup metrics on reg: hop-count and
// rounds-to-resolve histograms over successful lookups, plus done/failed
// counters. Call once during setup.
func (h *Handler) Instrument(reg *telemetry.Registry) {
	h.lookupHops = reg.Histogram("dynp2p_dht_lookup_hops", "network hops per successful DHT get lookup")
	h.lookupRounds = reg.Histogram("dynp2p_dht_lookup_rounds", "rounds to resolve per successful DHT get lookup")
	h.lookupsDone = reg.Counter("dynp2p_dht_lookups_done_total", "DHT get lookups that returned data")
	h.lookupsFailed = reg.Counter("dynp2p_dht_lookups_failed_total", "DHT get lookups that expired unanswered")
	h.instrumented = true
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// Bootstrap initialises a perfectly converged ring over the engine's
// current population: correct successor lists, predecessors, and fingers.
// Call once after simnet.New and the initial round-0 joins.
func (h *Handler) Bootstrap(e *simnet.Engine) {
	n := e.N()
	ring := make([]peer, n)
	for s := 0; s < n; s++ {
		id := e.IDAt(s)
		ring[s] = peer{id: id, pt: Point(uint64(id))}
	}
	slices.SortFunc(ring, func(a, b peer) int { return cmp.Compare(a.pt, b.pt) })
	pos := make(map[simnet.NodeID]int, n)
	for i, p := range ring {
		pos[p.id] = i
	}
	for s := 0; s < n; s++ {
		id := e.IDAt(s)
		st := &h.states[s]
		i := pos[id]
		st.pt = ring[i].pt
		st.joined = true
		st.items = make(map[uint64][]byte)
		st.lastSeen = make(map[simnet.NodeID]int)
		st.succs = st.succs[:0]
		for k := 1; k <= succListLen; k++ {
			st.succs = append(st.succs, ring[(i+k)%n])
			st.seen(ring[(i+k)%n].id, 0)
		}
		st.pred = ring[(i-1+n)%n]
		for f := 0; f < numFingers; f++ {
			target := st.pt + uint64(1)<<(63-uint(f))
			// Successor of target via binary search on the sorted ring.
			j := sort.Search(n, func(k int) bool { return ring[k].pt >= target })
			st.fingers[f] = ring[j%n]
		}
	}
}

// OnJoin implements simnet.Handler: replacement nodes run the join
// protocol through their topology neighbours.
func (h *Handler) OnJoin(e *simnet.Engine, slot int, id simnet.NodeID, round int) {
	h.states[slot] = state{
		pt:       Point(uint64(id)),
		items:    make(map[uint64][]byte),
		lastSeen: make(map[simnet.NodeID]int),
	}
}

// OnLeave implements simnet.Handler.
func (h *Handler) OnLeave(e *simnet.Engine, slot int, id simnet.NodeID, round int) {}

// RequestStore routes (key, data) to its responsible node. Call between
// rounds; the store is fired from the given slot next round.
func (h *Handler) RequestStore(e *simnet.Engine, slot int, key uint64, data []byte) {
	st := &h.states[slot]
	// Queue as a self-addressed pending find executed in HandleRound.
	st.pendingStores = append(st.pendingStores, pendingStore{key: key, data: append([]byte(nil), data...)})
}

// RequestGet starts a lookup for key from the node at slot. Call between
// rounds.
func (h *Handler) RequestGet(e *simnet.Engine, slot int, key uint64, ttlRounds int) {
	st := &h.states[slot]
	st.pendingGets = append(st.pendingGets, key)
	id := e.IDAt(slot)
	h.mu.Lock()
	h.open[key^uint64(id)] = openGet{
		searcher: id, key: key, start: e.Round(), deadline: e.Round() + ttlRounds,
	}
	h.mu.Unlock()
}

// DrainResults returns finished lookups, expiring overdue ones. Call
// between rounds.
func (h *Handler) DrainResults(round int) []Result {
	h.mu.Lock()
	for mark, o := range h.open {
		if round >= o.deadline {
			delete(h.open, mark)
			h.results = append(h.results, Result{
				Searcher: o.searcher, Key: o.key, Start: o.start, Done: -1, Success: false,
			})
			if h.instrumented {
				h.lookupsFailed.Inc(0)
			}
		}
	}
	r := h.results
	h.results = nil
	h.mu.Unlock()
	return r
}

func (h *Handler) finish(mark uint64, round int, success bool, hops int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	o, ok := h.open[mark]
	if !ok {
		return
	}
	delete(h.open, mark)
	h.results = append(h.results, Result{
		Searcher: o.searcher, Key: o.key, Start: o.start, Done: round, Success: success, Hops: hops,
	})
	if h.instrumented && success {
		// Serialised by h.mu, so writing one fixed shard is race-free;
		// merge-on-read makes the shard choice value-neutral.
		h.lookupHops.Observe(0, int64(hops))
		h.lookupRounds.Observe(0, int64(round-o.start))
		h.lookupsDone.Inc(0)
	}
}

// CopyCount returns how many nodes hold key.
func (h *Handler) CopyCount(key uint64) int {
	c := 0
	for i := range h.states {
		if _, ok := h.states[i].items[key]; ok {
			c++
		}
	}
	return c
}

// RingHealth returns the fraction of live nodes whose successor pointer
// agrees with the true ring (a convergence diagnostic for experiments).
func (h *Handler) RingHealth(e *simnet.Engine) float64 {
	n := e.N()
	ring := make([]peer, 0, n)
	for s := 0; s < n; s++ {
		if h.states[s].joined {
			ring = append(ring, peer{id: e.IDAt(s), pt: h.states[s].pt})
		}
	}
	if len(ring) == 0 {
		return 0
	}
	slices.SortFunc(ring, func(a, b peer) int { return cmp.Compare(a.pt, b.pt) })
	pos := make(map[simnet.NodeID]int, len(ring))
	for i, p := range ring {
		pos[p.id] = i
	}
	good := 0
	for s := 0; s < n; s++ {
		st := &h.states[s]
		if !st.joined || len(st.succs) == 0 {
			continue
		}
		i, ok := pos[e.IDAt(s)]
		if !ok {
			continue
		}
		if st.succs[0].id == ring[(i+1)%len(ring)].id {
			good++
		}
	}
	return float64(good) / float64(len(ring))
}
