package dht

import (
	"cmp"
	"slices"

	"dynp2p/internal/simnet"
)

// HandleRound implements simnet.Handler: process routing and maintenance
// traffic, then run this node's periodic duties (join, stabilise, finger
// refresh, re-replication, pending operations).
func (h *Handler) HandleRound(ctx *simnet.Ctx) {
	st := &h.states[ctx.Slot]

	for i := range ctx.Inbox {
		m := &ctx.Inbox[i]
		switch m.Kind {
		case KindFind:
			h.route(ctx, st, m)
		case KindFound:
			h.onFound(ctx, st, m)
		case KindGetSuccs:
			h.onGetSuccs(ctx, st, m)
		case KindSuccs:
			h.onSuccs(ctx, st, m)
		case KindNotify:
			h.onNotify(ctx, st, m)
		case KindStore, KindRepl:
			if len(m.Blob) > 0 {
				st.items[m.Item] = append([]byte(nil), m.Blob...)
			}
		case KindData:
			h.finish(m.Item^uint64(ctx.ID), ctx.Round, true, int(m.Aux))
		}
	}

	if !st.joined {
		h.tryJoin(ctx, st)
		return
	}
	h.stabilize(ctx, st)
	h.refreshFinger(ctx, st)
	h.replicate(ctx, st)
	h.firePending(ctx, st)
}

// tryJoin asks a topology neighbour to find this node's ring successor.
// The model guarantees a fresh node knows its current graph neighbours.
func (h *Handler) tryJoin(ctx *simnet.Ctx, st *state) {
	nbs := ctx.NeighborSlots()
	if len(nbs) == 0 {
		return
	}
	nb := ctx.E.IDAt(int(nbs[ctx.Rand.Intn(len(nbs))]))
	if nb == ctx.ID {
		return
	}
	ctx.SendRouted(simnet.Msg{
		To: nb, Kind: KindFind, Item: st.pt,
		Aux: packFind(purposeJoin, h.ttl, 0), Aux2: uint64(ctx.ID),
	})
}

// route is the Chord greedy routing step for a KindFind message.
func (h *Handler) route(ctx *simnet.Ctx, st *state, m *simnet.Msg) {
	purpose, ttl, finger := unpackFind(m.Aux)
	if !st.joined || len(st.succs) == 0 || ttl <= 0 {
		return // lookup dies; the originator's deadline handles it
	}
	target := m.Item
	if purpose == purposeStore || purpose == purposeGet {
		target = Point(m.Item)
	}
	// Get lookups short-circuit on any replica along the path. For
	// store/get lookups the finger byte carries the hop count so far;
	// the KindData reply's Aux reports it (plus the reply hop itself).
	if purpose == purposeGet {
		if data, ok := st.items[m.Item]; ok {
			ctx.SendRouted(simnet.Msg{
				To: simnet.NodeID(m.Aux2), Kind: KindData, Item: m.Item, Blob: data,
				Aux: uint64(finger + 1),
			})
			return
		}
	}
	if between(st.pt, target, st.succs[0].pt) {
		// succs[0] is the responsible node.
		h.resolve(ctx, st, m, purpose, finger, st.succs[0])
		return
	}
	if target == st.pt {
		h.resolve(ctx, st, m, purpose, finger, peer{id: ctx.ID, pt: st.pt})
		return
	}
	next := h.closestPreceding(st, target)
	if next.id == 0 || next.id == ctx.ID {
		// No better hop known; hand to the successor as a fallback.
		next = st.succs[0]
	}
	fwd := *m
	hop := finger
	if purpose == purposeStore || purpose == purposeGet {
		hop++ // finger byte doubles as hop counter for data lookups
	}
	fwd.Aux = packFind(purpose, ttl-1, hop)
	fwd.To = next.id
	ctx.SendRouted(fwd)
}

// resolve completes a routed lookup at the hop preceding the responsible
// node.
func (h *Handler) resolve(ctx *simnet.Ctx, st *state, m *simnet.Msg, purpose uint8, finger int, resp peer) {
	origin := simnet.NodeID(m.Aux2)
	switch purpose {
	case purposeJoin, purposeFinger:
		ids := []simnet.NodeID{resp.id}
		for _, s := range st.succs {
			ids = append(ids, s.id)
		}
		ctx.SendRouted(simnet.Msg{
			To: origin, Kind: KindFound, Item: m.Item,
			Aux: uint64(uint8(purpose)) | uint64(uint8(finger))<<8, IDs: ids,
		})
	case purposeStore:
		if resp.id == ctx.ID {
			st.items[m.Item] = append([]byte(nil), m.Blob...)
			return
		}
		ctx.SendRouted(simnet.Msg{To: resp.id, Kind: KindStore, Item: m.Item, Blob: m.Blob})
	case purposeGet:
		if resp.id == ctx.ID {
			if data, ok := st.items[m.Item]; ok {
				ctx.SendRouted(simnet.Msg{
					To: origin, Kind: KindData, Item: m.Item, Blob: data,
					Aux: uint64(finger + 1),
				})
			}
			return
		}
		// Forward the final hop to the responsible node; it answers (or
		// the lookup dies there if it lacks the data).
		fwd := *m
		fwd.To = resp.id
		fwd.Aux = packFind(purposeGet, 1, finger+1)
		ctx.SendRouted(fwd)
	}
}

// closestPreceding returns the known peer whose point most closely
// precedes target (classic Chord next-hop choice over fingers+successors).
func (h *Handler) closestPreceding(st *state, target uint64) peer {
	var best peer
	var bestDist uint64
	consider := func(p peer) {
		if p.id == 0 {
			return
		}
		if between(st.pt, p.pt, target-1) || p.pt == st.pt {
			d := clockwise(p.pt, target)
			if best.id == 0 || d < bestDist {
				best = p
				bestDist = d
			}
		}
	}
	for _, p := range st.fingers {
		consider(p)
	}
	for _, p := range st.succs {
		consider(p)
	}
	return best
}

// onFound installs join/finger lookup results.
func (h *Handler) onFound(ctx *simnet.Ctx, st *state, m *simnet.Msg) {
	purpose := uint8(m.Aux)
	finger := int(uint8(m.Aux >> 8))
	if len(m.IDs) == 0 {
		return
	}
	switch purpose {
	case purposeJoin:
		st.succs = st.succs[:0]
		for _, id := range m.IDs {
			if id != ctx.ID {
				st.succs = append(st.succs, peer{id: id, pt: Point(uint64(id))})
				st.seen(id, ctx.Round)
			}
		}
		h.sortSuccs(st)
		if len(st.succs) > 0 {
			st.joined = true
			ctx.SendRouted(simnet.Msg{To: st.succs[0].id, Kind: KindNotify})
		}
	case purposeFinger:
		if finger >= 0 && finger < numFingers {
			st.fingers[finger] = peer{id: m.IDs[0], pt: Point(uint64(m.IDs[0]))}
		}
	}
}

// stabilize prunes successors that have given no sign of life, probes the
// head plus one rotating entry, and forgets a silent predecessor.
func (h *Handler) stabilize(ctx *simnet.Ctx, st *state) {
	h.pruneSuccs(ctx.Round, st)
	if len(st.succs) == 0 {
		st.joined = false // lost the ring entirely; rejoin
		return
	}
	ctx.SendRouted(simnet.Msg{To: st.succs[0].id, Kind: KindGetSuccs})
	if len(st.succs) > 1 {
		probe := st.succs[1+st.probeIdx%(len(st.succs)-1)]
		st.probeIdx++
		ctx.SendRouted(simnet.Msg{To: probe.id, Kind: KindGetSuccs})
	}
	if st.pred.id != 0 && ctx.Round-st.predSeen > 2*stabTimeout {
		st.pred = peer{} // stale predecessor; stop advertising it
	}
}

// pruneSuccs removes successor entries that have been silent too long.
func (h *Handler) pruneSuccs(round int, st *state) {
	kept := st.succs[:0]
	for _, p := range st.succs {
		if round-st.lastSeen[p.id] <= 2*stabTimeout {
			kept = append(kept, p)
		}
	}
	st.succs = kept
	// Bound the lastSeen map: drop entries for long-silent peers.
	if len(st.lastSeen) > 8*succListLen {
		for id, r := range st.lastSeen {
			if round-r > 4*stabTimeout {
				delete(st.lastSeen, id)
			}
		}
	}
}

func (h *Handler) onGetSuccs(ctx *simnet.Ctx, st *state, m *simnet.Msg) {
	if !st.joined {
		return
	}
	ids := []simnet.NodeID{st.pred.id}
	for _, s := range st.succs {
		ids = append(ids, s.id)
	}
	ctx.SendRouted(simnet.Msg{To: m.From, Kind: KindSuccs, IDs: ids})
	// The asker is alive and a predecessor candidate.
	st.seen(m.From, ctx.Round)
	h.considerPred(st, m.From, ctx.Round)
}

func (h *Handler) onSuccs(ctx *simnet.Ctx, st *state, m *simnet.Msg) {
	if len(m.IDs) == 0 {
		return
	}
	st.seen(m.From, ctx.Round)
	// Chord stabilisation: if our successor's predecessor sits between us
	// and the successor, adopt it.
	fromPt := Point(uint64(m.From))
	merged := []peer{{id: m.From, pt: fromPt}}
	if pred := m.IDs[0]; pred != 0 && pred != ctx.ID {
		pp := Point(uint64(pred))
		if between(st.pt, pp, fromPt) {
			merged = append([]peer{{id: pred, pt: pp}}, merged...)
		}
	}
	for _, id := range m.IDs[1:] {
		if id != 0 && id != ctx.ID {
			merged = append(merged, peer{id: id, pt: Point(uint64(id))})
		}
	}
	// New entries inherit a fresh sign of life (benefit of the doubt);
	// existing timestamps are kept.
	for _, p := range merged {
		if _, ok := st.lastSeen[p.id]; !ok {
			st.seen(p.id, ctx.Round)
		}
	}
	merged = append(merged, st.succs...)
	st.succs = merged
	h.sortSuccs(st)
}

func (h *Handler) sortSuccs(st *state) {
	slices.SortFunc(st.succs, func(a, b peer) int {
		return cmp.Compare(clockwise(st.pt, a.pt), clockwise(st.pt, b.pt))
	})
	out := st.succs[:0]
	var last simnet.NodeID
	for _, p := range st.succs {
		if p.id == last || p.id == 0 {
			continue
		}
		last = p.id
		out = append(out, p)
		if len(out) == succListLen {
			break
		}
	}
	st.succs = out
}

func (h *Handler) onNotify(ctx *simnet.Ctx, st *state, m *simnet.Msg) {
	st.seen(m.From, ctx.Round)
	h.considerPred(st, m.From, ctx.Round)
}

func (h *Handler) considerPred(st *state, id simnet.NodeID, round int) {
	pt := Point(uint64(id))
	switch {
	case id == st.pred.id:
		st.predSeen = round
	case st.pred.id == 0 || between(st.pred.pt, pt, st.pt):
		st.pred = peer{id: id, pt: pt}
		st.predSeen = round
	}
}

// refreshFinger re-looks-up one finger per round (round-robin).
func (h *Handler) refreshFinger(ctx *simnet.Ctx, st *state) {
	f := st.nextFinger
	st.nextFinger = (st.nextFinger + 1) % numFingers
	target := st.pt + uint64(1)<<(63-uint(f))
	// Route the lookup starting at ourselves.
	m := simnet.Msg{
		From: ctx.ID, Kind: KindFind, Item: target,
		Aux: packFind(purposeFinger, h.ttl, f), Aux2: uint64(ctx.ID),
	}
	h.route(ctx, st, &m)
}

// replicate pushes held items to the successor list every replEvery
// rounds.
func (h *Handler) replicate(ctx *simnet.Ctx, st *state) {
	if len(st.items) == 0 || ctx.Round-st.lastRepl < replEvery {
		return
	}
	st.lastRepl = ctx.Round
	keys := make([]uint64, 0, len(st.items))
	for k := range st.items {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	limit := len(st.succs)
	if limit > 4 {
		limit = 4
	}
	for _, k := range keys {
		for i := 0; i < limit; i++ {
			ctx.SendRouted(simnet.Msg{To: st.succs[i].id, Kind: KindRepl, Item: k, Blob: st.items[k]})
		}
	}
}

// firePending launches queued store/get operations as self-routed finds.
func (h *Handler) firePending(ctx *simnet.Ctx, st *state) {
	for _, ps := range st.pendingStores {
		m := simnet.Msg{
			From: ctx.ID, Kind: KindFind, Item: ps.key,
			Aux: packFind(purposeStore, h.ttl, 0), Aux2: uint64(ctx.ID),
			Blob: ps.data,
		}
		h.route(ctx, st, &m)
	}
	st.pendingStores = st.pendingStores[:0]
	for _, key := range st.pendingGets {
		m := simnet.Msg{
			From: ctx.ID, Kind: KindFind, Item: key,
			Aux: packFind(purposeGet, h.ttl, 0), Aux2: uint64(ctx.ID),
		}
		h.route(ctx, st, &m)
	}
	st.pendingGets = st.pendingGets[:0]
}
