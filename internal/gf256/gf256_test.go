package gf256

import (
	"testing"
	"testing/quick"

	"dynp2p/internal/rng"
)

func TestFieldAxioms(t *testing.T) {
	check := func(a, b, c byte) bool {
		// Commutativity and associativity of Mul; distributivity over Add.
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			return false
		}
		// Identities.
		if Mul(a, 1) != a || Add(a, 0) != a {
			return false
		}
		// Additive inverse is itself.
		return Add(a, a) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%d) wrong: %d", a, inv)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("Div(%d,%d) != 1", a, a)
		}
	}
	if Div(0, 5) != 0 {
		t.Fatal("0/x should be 0")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpGeneratesGroup(t *testing.T) {
	seen := make(map[byte]bool)
	for e := 0; e < 255; e++ {
		seen[Exp(e)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator 2 produced only %d distinct elements", len(seen))
	}
	if Exp(0) != 1 || Exp(255) != 1 || Exp(-1) != Exp(254) {
		t.Fatal("Exp wraparound incorrect")
	}
}

// mulRef is the log/exp-table reference product, independent of the dense
// product table that Mul and the slice kernels now share.
func mulRef(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

func TestMulMatchesLogExpReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulRef(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestMulAddSliceAllCoefficientsAndTails sweeps every coefficient and all
// lengths around the 8-byte unroll boundary, so both the word-at-a-time
// c==1 path and the unrolled table path are exercised with ragged tails.
func TestMulAddSliceAllCoefficientsAndTails(t *testing.T) {
	r := rng.New(7)
	for c := 0; c < 256; c++ {
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 33} {
			src := make([]byte, n)
			dst := make([]byte, n)
			want := make([]byte, n)
			r.Fill(src)
			r.Fill(dst)
			copy(want, dst)
			for i := range want {
				want[i] ^= mulRef(byte(c), src[i])
			}
			MulAddSlice(dst, src, byte(c))
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("MulAddSlice mismatch at %d (c=%d, n=%d)", i, c, n)
				}
			}
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(100) + 1
		c := byte(r.Intn(256))
		src := make([]byte, n)
		dst := make([]byte, n)
		want := make([]byte, n)
		r.Fill(src)
		r.Fill(dst)
		copy(want, dst)
		for i := range want {
			want[i] ^= Mul(c, src[i])
		}
		MulAddSlice(dst, src, c)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("MulAddSlice mismatch at %d (c=%d)", i, c)
			}
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(100) + 1
		c := byte(r.Intn(256))
		src := make([]byte, n)
		dst := make([]byte, n)
		r.Fill(src)
		MulSlice(dst, src, c)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice mismatch at %d (c=%d)", i, c)
			}
		}
	}
}

func TestMatrixIdentityMul(t *testing.T) {
	r := rng.New(3)
	m := NewMatrix(5, 5)
	r.Fill(m.Data)
	i5 := Identity(5)
	left := i5.Mul(m)
	right := m.Mul(i5)
	for i := range m.Data {
		if left.Data[i] != m.Data[i] || right.Data[i] != m.Data[i] {
			t.Fatal("identity multiplication changed matrix")
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(8) + 1
		// Random matrices over GF(256) are invertible with prob ~0.996;
		// retry until invertible.
		var m *Matrix
		var inv *Matrix
		var err error
		for {
			m = NewMatrix(n, n)
			r.Fill(m.Data)
			inv, err = m.Invert()
			if err == nil {
				break
			}
		}
		prod := m.Mul(inv)
		id := Identity(n)
		for i := range id.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("m * m^-1 != I for n=%d", n)
			}
		}
	}
}

func TestSingularMatrixError(t *testing.T) {
	m := NewMatrix(3, 3)
	// Two equal rows -> singular.
	copy(m.Row(0), []byte{1, 2, 3})
	copy(m.Row(1), []byte{1, 2, 3})
	copy(m.Row(2), []byte{4, 5, 6})
	if _, err := m.Invert(); err == nil {
		t.Fatal("inverting a singular matrix should fail")
	}
}

func TestCauchySubmatricesInvertible(t *testing.T) {
	// The defining property for IDA: any K rows of an L×K Cauchy matrix
	// form an invertible matrix. Check exhaustively for small L, K.
	const l, k = 8, 4
	m := Cauchy(l, k)
	var rows [k]int
	var rec func(start, depth int)
	count := 0
	rec = func(start, depth int) {
		if depth == k {
			sub := m.SubMatrixRows(rows[:])
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("Cauchy submatrix rows %v singular", rows)
			}
			count++
			return
		}
		for i := start; i < l; i++ {
			rows[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if count != 70 { // C(8,4)
		t.Fatalf("checked %d submatrices, want 70", count)
	}
}

func TestCauchyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestVandermondeFirstColumnOnes(t *testing.T) {
	m := Vandermonde(10, 5)
	for i := 0; i < 10; i++ {
		if m.At(i, 0) != 1 {
			t.Fatalf("Vandermonde row %d does not start with 1", i)
		}
	}
	// Rows must be pairwise distinct in column 1 (distinct points).
	seen := make(map[byte]bool)
	for i := 0; i < 10; i++ {
		v := m.At(i, 1)
		if seen[v] {
			t.Fatalf("duplicate evaluation point %d", v)
		}
		seen[v] = true
	}
}

func TestMulVecMatchesMatrixMul(t *testing.T) {
	r := rng.New(5)
	m := NewMatrix(4, 6)
	r.Fill(m.Data)
	v := make([]byte, 6)
	r.Fill(v)
	out := make([]byte, 4)
	m.MulVec(out, v)
	// Compare against Mul with a 6x1 matrix.
	vm := NewMatrix(6, 1)
	for i, x := range v {
		vm.Set(i, 0, x)
	}
	prod := m.Mul(vm)
	for i := 0; i < 4; i++ {
		if out[i] != prod.At(i, 0) {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func BenchmarkMicroMulAddSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rng.New(1).Fill(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, 0x53)
	}
}

func BenchmarkMicroMulAddSliceXOR(b *testing.B) {
	// The c == 1 word-at-a-time path (pivot rows, plain XOR accumulate).
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rng.New(1).Fill(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, 1)
	}
}
