// Package gf256 implements arithmetic in the finite field GF(2^8) together
// with the small dense-matrix operations needed by the Information
// Dispersal Algorithm (internal/ida), which the paper's §4.4 uses to cut
// storage from Θ(log n)·|I| to a constant-factor overhead.
//
// The field is GF(2)[x]/(x^8+x^4+x^3+x^2+1), i.e. the reduction polynomial
// 0x11d commonly used by Reed–Solomon codecs; 2 generates its
// multiplicative group. Multiplication uses log/exp tables built at init,
// plus a full 64 KiB product table whose per-constant rows drive the
// branch-free slice kernels below (the IDA encode/decode hot loops).
package gf256

import (
	"encoding/binary"
	"fmt"
)

const polynomial = 0x11d

var (
	expTable [512]byte // doubled so Mul can skip a modular reduction
	logTable [256]byte
	mulTable [256][256]byte // mulTable[c][x] = c*x
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= polynomial
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		lc := int(logTable[c])
		for s := 1; s < 256; s++ {
			row[s] = expTable[lc+int(logTable[s])]
		}
	}
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Inv returns the multiplicative inverse of a. Panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Div returns a/b. Panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Exp returns the generator 2 raised to the power e (e taken mod 255).
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// MulAddSlice computes dst[i] ^= c * src[i] for all i. This is the hot loop
// of IDA encode/decode. len(dst) must be >= len(src).
//
// The c == 1 path (every pivot row of a Cauchy system, and roughly 1/255
// of general coefficients) XORs eight bytes per iteration through
// word-at-a-time loads. The general path walks the 256-byte product row
// for c — one L1-resident lookup per byte, no branches on the data —
// eight bytes per unrolled iteration.
func MulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		n := len(src) &^ 7
		for i := 0; i < n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
		for i := n; i < len(src); i++ {
			dst[i] ^= src[i]
		}
		return
	}
	row := &mulTable[c]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
		d[4] ^= row[s[4]]
		d[5] ^= row[s[5]]
		d[6] ^= row[s[6]]
		d[7] ^= row[s[7]]
	}
	for ; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulSlice computes dst[i] = c * src[i] for all i.
func MulSlice(dst, src []byte, c byte) {
	if c == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = row[s[0]]
		d[1] = row[s[1]]
		d[2] = row[s[2]]
		d[3] = row[s[3]]
		d[4] = row[s[4]]
		d[5] = row[s[5]]
		d[6] = row[s[6]]
		d[7] = row[s[7]]
	}
	for ; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("gf256: non-positive matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	d := make([]byte, len(m.Data))
	copy(d, m.Data)
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cauchy builds the r×c Cauchy matrix A[i][j] = 1/(x_i + y_j) with
// x_i = i and y_j = r + j. Every square submatrix of a Cauchy matrix is
// invertible, which is exactly the property IDA needs: any K of the L
// pieces suffice to reconstruct. Requires r + c <= 256.
func Cauchy(r, c int) *Matrix {
	if r+c > 256 {
		panic(fmt.Sprintf("gf256: Cauchy %dx%d exceeds field size", r, c))
	}
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, Inv(byte(i)^byte(r+j)))
		}
	}
	return m
}

// Vandermonde builds the r×c matrix A[i][j] = (g^i)^j where g = 2.
// Rows use distinct evaluation points g^i so any c rows with distinct
// points are independent as long as r <= 255.
func Vandermonde(r, c int) *Matrix {
	if r > 255 {
		panic("gf256: Vandermonde with more than 255 rows")
	}
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		xi := Exp(i)
		v := byte(1)
		for j := 0; j < c; j++ {
			m.Set(i, j, v)
			v = Mul(v, xi)
		}
	}
	return m
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("gf256: matrix dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		outRow := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			if mRow[k] != 0 {
				MulAddSlice(outRow, other.Row(k), mRow[k])
			}
		}
	}
	return out
}

// MulVec computes out = m * v where v has length m.Cols.
func (m *Matrix) MulVec(out, v []byte) {
	if len(v) != m.Cols || len(out) != m.Rows {
		panic("gf256: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc byte
		for j, c := range row {
			acc ^= Mul(c, v[j])
		}
		out[i] = acc
	}
}

// Invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or an error if the matrix is singular. m is not modified.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf256: singular matrix at column %d", col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to 1.
		if p := a.At(col, col); p != 1 {
			ip := Inv(p)
			MulSlice(a.Row(col), a.Row(col), ip)
			MulSlice(inv.Row(col), inv.Row(col), ip)
		}
		// Eliminate the column from other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f != 0 {
				MulAddSlice(a.Row(r), a.Row(col), f)
				MulAddSlice(inv.Row(r), inv.Row(col), f)
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SubMatrixRows returns a new matrix made of the given rows of m, in order.
func (m *Matrix) SubMatrixRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}
