package churn

import "testing"

func TestSchedulePhases(t *testing.T) {
	s := Schedule{Segments: []Segment{
		{Rounds: 10, Law: ZeroLaw{}},
		{Rounds: 5, Law: FixedLaw{Count: 7}},
		{Rounds: 10, Law: FixedLaw{Count: 2}},
	}}
	const n = 100
	for r := 0; r < 10; r++ {
		if got := s.PerRound(n, r); got != 0 {
			t.Fatalf("round %d: got %d, want 0 (quiet)", r, got)
		}
	}
	for r := 10; r < 15; r++ {
		if got := s.PerRound(n, r); got != 7 {
			t.Fatalf("round %d: got %d, want 7 (burst)", r, got)
		}
	}
	for r := 15; r < 25; r++ {
		if got := s.PerRound(n, r); got != 2 {
			t.Fatalf("round %d: got %d, want 2 (tail)", r, got)
		}
	}
	// Past the last segment the schedule goes quiet.
	if got := s.PerRound(n, 25); got != 0 {
		t.Fatalf("round 25: got %d, want 0 after schedule end", got)
	}
}

func TestScheduleOpenEndedSegment(t *testing.T) {
	s := Schedule{Segments: []Segment{
		{Rounds: 3, Law: FixedLaw{Count: 1}},
		{Rounds: 0, Law: FixedLaw{Count: 4}},
		{Rounds: 5, Law: FixedLaw{Count: 9}}, // unreachable
	}}
	if got := s.PerRound(50, 2); got != 1 {
		t.Fatalf("round 2: got %d, want 1", got)
	}
	for _, r := range []int{3, 100, 100000} {
		if got := s.PerRound(50, r); got != 4 {
			t.Fatalf("round %d: got %d, want 4 (open-ended)", r, got)
		}
	}
}

func TestScheduleRebasesRoundsPerSegment(t *testing.T) {
	// A ramp inside a later segment must see segment-relative rounds.
	s := Schedule{Segments: []Segment{
		{Rounds: 20, Law: ZeroLaw{}},
		{Rounds: 11, Law: RampLaw{From: ZeroLaw{}, To: FixedLaw{Count: 10}, Rounds: 11}},
	}}
	if got := s.PerRound(100, 20); got != 0 {
		t.Fatalf("ramp start: got %d, want 0", got)
	}
	if got := s.PerRound(100, 25); got != 5 {
		t.Fatalf("ramp midpoint: got %d, want 5", got)
	}
	if got := s.PerRound(100, 30); got != 10 {
		t.Fatalf("ramp end: got %d, want 10", got)
	}
}

func TestRampLawMonotoneAndClamped(t *testing.T) {
	l := RampLaw{From: FixedLaw{Count: 2}, To: FixedLaw{Count: 12}, Rounds: 6}
	prev := -1
	for r := 0; r < 10; r++ {
		v := l.PerRound(100, r)
		if v < prev {
			t.Fatalf("ramp not monotone at round %d: %d < %d", r, v, prev)
		}
		prev = v
	}
	if got := l.PerRound(100, 0); got != 2 {
		t.Fatalf("ramp start: got %d, want 2", got)
	}
	if got := l.PerRound(100, 9); got != 12 {
		t.Fatalf("ramp hold: got %d, want 12", got)
	}
}

func TestBurstLawCycle(t *testing.T) {
	l := BurstLaw{Period: 10, Width: 3, Count: 5}
	for r := 0; r < 30; r++ {
		want := 0
		if r%10 < 3 {
			want = 5
		}
		if got := l.PerRound(100, r); got != want {
			t.Fatalf("round %d: got %d, want %d", r, got, want)
		}
	}
}

func TestScheduleDrivesAdversary(t *testing.T) {
	s := Schedule{Segments: []Segment{
		{Rounds: 5, Law: ZeroLaw{}},
		{Rounds: 5, Law: FixedLaw{Count: 3}},
	}}
	a := NewAdversary(32, 1, Uniform, s)
	for r := 1; r <= 12; r++ {
		b := a.Batch(r)
		want := s.PerRound(32, r)
		if len(b) != want {
			t.Fatalf("round %d: batch %d, want %d", r, len(b), want)
		}
	}
}
