// Package churn implements the oblivious adversary of the paper's model
// (§2.1): before round 0 the adversary commits to which nodes are replaced
// in every round. Obliviousness is realised by driving every adversary
// decision from a dedicated RNG stream that is independent of the protocol
// stream — the resulting schedule is a deterministic function of the
// adversary seed, fixed "in advance", and cannot depend on the algorithm's
// coin flips.
//
// The adversary has two degrees of freedom, mirroring the model:
//
//   - a Law fixing *how many* nodes are replaced per round (the churn
//     rate, e.g. the paper's C·n/log^K n), and
//   - a Strategy fixing *which* slots are replaced (uniform, oldest-first,
//     youngest-first, sweeping bursts).
package churn

import (
	"fmt"
	"math"

	"dynp2p/internal/rng"
)

// Law determines the number of replacements in a given round for a network
// of stable size n.
type Law interface {
	// PerRound returns the number of node replacements in the given round.
	PerRound(n, round int) int
	String() string
}

// RateLaw is the paper's churn law: ⌊C·n/ln(n)^K⌋ replacements per round.
// The paper proves its results for K = 1+δ (any fixed δ > 0) and C up to 4.
type RateLaw struct {
	C float64
	K float64
}

// PerRound implements Law.
func (l RateLaw) PerRound(n, _ int) int {
	if n <= 1 {
		return 0
	}
	v := int(l.C * float64(n) / math.Pow(math.Log(float64(n)), l.K))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

func (l RateLaw) String() string { return fmt.Sprintf("%.3g·n/log^%.3g n", l.C, l.K) }

// PaperLaw returns the rate law C·n/log^(1+δ) n from Theorems 3 and 4.
func PaperLaw(c, delta float64) RateLaw { return RateLaw{C: c, K: 1 + delta} }

// FixedLaw replaces exactly Count nodes per round.
type FixedLaw struct{ Count int }

// PerRound implements Law.
func (l FixedLaw) PerRound(n, _ int) int {
	if l.Count > n {
		return n
	}
	if l.Count < 0 {
		return 0
	}
	return l.Count
}

func (l FixedLaw) String() string { return fmt.Sprintf("fixed %d/round", l.Count) }

// ZeroLaw disables churn (static network control runs).
type ZeroLaw struct{}

// PerRound implements Law.
func (ZeroLaw) PerRound(int, int) int { return 0 }

func (ZeroLaw) String() string { return "no churn" }

// Strategy selects which slots are replaced.
type Strategy int

// Available strategies. All are oblivious: the choice depends only on the
// adversary's own seed and on the history of its own prior choices.
const (
	// Uniform replaces a uniformly random set of slots.
	Uniform Strategy = iota
	// OldestFirst always replaces the longest-lived nodes. This is the
	// harshest strategy against protocols that accumulate state at
	// long-lived nodes (e.g. committees of survivors).
	OldestFirst
	// YoungestFirst re-replaces the most recently joined nodes, keeping a
	// stable old core; it stresses join-time logic instead of persistence.
	YoungestFirst
	// SweepBurst replaces contiguous slot blocks, sweeping the slot space
	// round-robin; it models correlated regional failures.
	SweepBurst
)

func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case OldestFirst:
		return "oldest-first"
	case YoungestFirst:
		return "youngest-first"
	case SweepBurst:
		return "sweep-burst"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Adversary produces the pre-committed churn schedule batch by batch.
// It is deterministic in (n, seed, strategy, law).
type Adversary struct {
	n        int
	strategy Strategy
	law      Law
	r        *rng.Stream

	// ageQueue orders live slots by join time (front = oldest). Only
	// maintained for the age-based strategies.
	ageQueue []int32
	sweepPos int
	batch    []int // reusable output buffer
}

// NewAdversary creates the adversary for a network of n slots.
func NewAdversary(n int, seed uint64, strategy Strategy, law Law) *Adversary {
	a := &Adversary{
		n:        n,
		strategy: strategy,
		law:      law,
		r:        rng.Derive(seed, 0xadfe),
	}
	if strategy == OldestFirst || strategy == YoungestFirst {
		a.ageQueue = make([]int32, n)
		for i := range a.ageQueue {
			a.ageQueue[i] = int32(i)
		}
		// Slots all join at round 0; randomise the tie-break order so the
		// age-based strategies are not aligned with slot numbering.
		for i := n - 1; i > 0; i-- {
			j := a.r.Intn(i + 1)
			a.ageQueue[i], a.ageQueue[j] = a.ageQueue[j], a.ageQueue[i]
		}
	}
	return a
}

// N returns the network size the adversary was built for.
func (a *Adversary) N() int { return a.n }

// Law returns the adversary's churn law.
func (a *Adversary) Law() Law { return a.law }

// Strategy returns the slot-selection strategy.
func (a *Adversary) Strategy() Strategy { return a.strategy }

// Batch returns the distinct slot indices to replace in the given round.
// The returned slice is reused across calls; callers must not retain it.
func (a *Adversary) Batch(round int) []int {
	count := a.law.PerRound(a.n, round)
	if count <= 0 {
		return a.batch[:0]
	}
	// Laws are supposed to clamp to n, but Law is a public interface:
	// enforce the bound here so a misbehaving implementation cannot make
	// the batch emit out-of-range (or duplicate) slot indices.
	if count > a.n {
		count = a.n
	}
	if cap(a.batch) < count {
		a.batch = make([]int, count)
	}
	a.batch = a.batch[:count]
	switch a.strategy {
	case Uniform:
		// Reservoir-sample count distinct slots directly into the reused
		// batch buffer; draw-for-draw identical to rng.SampleK, without
		// its fresh result slice.
		if count >= a.n {
			for i := range a.batch {
				a.batch[i] = i
			}
		} else {
			for i := 0; i < count; i++ {
				a.batch[i] = i
			}
			for i := count; i < a.n; i++ {
				if j := a.r.Intn(i + 1); j < count {
					a.batch[j] = i
				}
			}
		}
		a.r.ShuffleInts(a.batch)
	case OldestFirst:
		// Pop the oldest `count` slots and requeue them at the back
		// (they rejoin now, becoming the youngest).
		for i := 0; i < count; i++ {
			a.batch[i] = int(a.ageQueue[i])
		}
		rest := a.ageQueue[count:]
		reborn := make([]int32, count)
		for i := 0; i < count; i++ {
			reborn[i] = int32(a.batch[i])
		}
		a.ageQueue = append(append(a.ageQueue[:0], rest...), reborn...)
	case YoungestFirst:
		// Pop from the back; replaced slots stay the youngest, so this
		// keeps hammering the same tail while the old core persists.
		start := len(a.ageQueue) - count
		for i := 0; i < count; i++ {
			a.batch[i] = int(a.ageQueue[start+i])
		}
	case SweepBurst:
		for i := 0; i < count; i++ {
			a.batch[i] = (a.sweepPos + i) % a.n
		}
		a.sweepPos = (a.sweepPos + count) % a.n
	default:
		panic("churn: unknown strategy")
	}
	return a.batch
}

// TotalOverHorizon returns the total number of replacements the law will
// make over the given number of rounds (for experiment sizing).
func TotalOverHorizon(l Law, n, rounds int) int {
	t := 0
	for r := 0; r < rounds; r++ {
		t += l.PerRound(n, r)
	}
	return t
}
