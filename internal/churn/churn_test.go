package churn

import (
	"math"
	"testing"
)

func TestRateLawMatchesFormula(t *testing.T) {
	l := RateLaw{C: 4, K: 1.4}
	for _, n := range []int{100, 1000, 10000} {
		want := int(4 * float64(n) / math.Pow(math.Log(float64(n)), 1.4))
		if got := l.PerRound(n, 0); got != want {
			t.Fatalf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestRateLawEdgeCases(t *testing.T) {
	l := RateLaw{C: 1000, K: 0.1}
	if got := l.PerRound(10, 0); got > 10 {
		t.Fatalf("rate law exceeded n: %d", got)
	}
	if got := l.PerRound(1, 0); got != 0 {
		t.Fatalf("n=1 should have zero churn, got %d", got)
	}
	if got := (RateLaw{C: -1, K: 1}).PerRound(100, 0); got != 0 {
		t.Fatalf("negative C should clamp to 0, got %d", got)
	}
}

func TestPaperLaw(t *testing.T) {
	l := PaperLaw(4, 0.5)
	if l.K != 1.5 || l.C != 4 {
		t.Fatalf("PaperLaw wrong: %+v", l)
	}
}

func TestFixedAndZeroLaws(t *testing.T) {
	if (FixedLaw{Count: 7}).PerRound(100, 3) != 7 {
		t.Fatal("fixed law wrong")
	}
	if (FixedLaw{Count: 200}).PerRound(100, 0) != 100 {
		t.Fatal("fixed law should clamp to n")
	}
	if (FixedLaw{Count: -5}).PerRound(100, 0) != 0 {
		t.Fatal("fixed law should clamp negatives")
	}
	if (ZeroLaw{}).PerRound(100, 0) != 0 {
		t.Fatal("zero law wrong")
	}
}

func TestBatchDistinctAndInRange(t *testing.T) {
	for _, strat := range []Strategy{Uniform, OldestFirst, YoungestFirst, SweepBurst} {
		a := NewAdversary(200, 42, strat, FixedLaw{Count: 17})
		for round := 0; round < 50; round++ {
			b := a.Batch(round)
			if len(b) != 17 {
				t.Fatalf("%v: batch size %d, want 17", strat, len(b))
			}
			seen := make(map[int]bool)
			for _, s := range b {
				if s < 0 || s >= 200 {
					t.Fatalf("%v: slot %d out of range", strat, s)
				}
				if seen[s] {
					t.Fatalf("%v: duplicate slot %d in batch", strat, s)
				}
				seen[s] = true
			}
		}
	}
}

// overLaw is a misbehaving Law returning more replacements than slots.
type overLaw struct{}

func (overLaw) PerRound(n, _ int) int { return 3 * n }
func (overLaw) String() string        { return "3n/round" }

func TestBatchClampsMisbehavingLaw(t *testing.T) {
	// Law is a public interface; the adversary must bound a law that asks
	// for more replacements than there are slots, keeping batches distinct
	// and in range.
	for _, strat := range []Strategy{Uniform, OldestFirst, YoungestFirst, SweepBurst} {
		a := NewAdversary(20, 7, strat, overLaw{})
		for round := 0; round < 5; round++ {
			b := a.Batch(round)
			if len(b) != 20 {
				t.Fatalf("%v: batch size %d, want 20 (clamped)", strat, len(b))
			}
			seen := make(map[int]bool)
			for _, s := range b {
				if s < 0 || s >= 20 || seen[s] {
					t.Fatalf("%v: bad slot %d in clamped batch %v", strat, s, b)
				}
				seen[s] = true
			}
		}
	}
}

func TestAdversaryDeterministic(t *testing.T) {
	for _, strat := range []Strategy{Uniform, OldestFirst, YoungestFirst, SweepBurst} {
		a := NewAdversary(100, 7, strat, FixedLaw{Count: 9})
		b := NewAdversary(100, 7, strat, FixedLaw{Count: 9})
		for round := 0; round < 30; round++ {
			ba := append([]int(nil), a.Batch(round)...)
			bb := b.Batch(round)
			for i := range ba {
				if ba[i] != bb[i] {
					t.Fatalf("%v: schedules diverge at round %d", strat, round)
				}
			}
		}
	}
}

func TestOldestFirstCyclesThroughAllSlots(t *testing.T) {
	// With count c per round, after n/c rounds every slot must have been
	// replaced exactly once.
	const n, c = 120, 10
	a := NewAdversary(n, 1, OldestFirst, FixedLaw{Count: c})
	seen := make(map[int]int)
	for round := 0; round < n/c; round++ {
		for _, s := range a.Batch(round) {
			seen[s]++
		}
	}
	if len(seen) != n {
		t.Fatalf("oldest-first covered %d slots in one cycle, want %d", len(seen), n)
	}
	for s, k := range seen {
		if k != 1 {
			t.Fatalf("slot %d replaced %d times in one cycle", s, k)
		}
	}
}

func TestYoungestFirstKeepsOldCore(t *testing.T) {
	// Youngest-first keeps re-replacing the same tail; over many rounds
	// the set of replaced slots stays the same c slots.
	const n, c = 100, 8
	a := NewAdversary(n, 2, YoungestFirst, FixedLaw{Count: c})
	first := append([]int(nil), a.Batch(0)...)
	inFirst := make(map[int]bool)
	for _, s := range first {
		inFirst[s] = true
	}
	for round := 1; round < 20; round++ {
		for _, s := range a.Batch(round) {
			if !inFirst[s] {
				t.Fatalf("youngest-first strayed outside initial tail at round %d (slot %d)", round, s)
			}
		}
	}
}

func TestSweepBurstCoversSpace(t *testing.T) {
	const n, c = 64, 10
	a := NewAdversary(n, 3, SweepBurst, FixedLaw{Count: c})
	covered := make(map[int]bool)
	for round := 0; round < (n+c-1)/c; round++ {
		for _, s := range a.Batch(round) {
			covered[s] = true
		}
	}
	if len(covered) != n {
		t.Fatalf("sweep covered %d slots, want all %d", len(covered), n)
	}
}

func TestUniformIsSpreadOut(t *testing.T) {
	const n, c, rounds = 100, 10, 2000
	a := NewAdversary(n, 5, Uniform, FixedLaw{Count: c})
	counts := make([]int, n)
	for round := 0; round < rounds; round++ {
		for _, s := range a.Batch(round) {
			counts[s]++
		}
	}
	want := float64(rounds*c) / n
	for s, k := range counts {
		if math.Abs(float64(k)-want) > 6*math.Sqrt(want) {
			t.Fatalf("slot %d replaced %d times, want about %.0f", s, k, want)
		}
	}
}

func TestZeroChurnBatchEmpty(t *testing.T) {
	a := NewAdversary(100, 1, Uniform, ZeroLaw{})
	if len(a.Batch(0)) != 0 {
		t.Fatal("zero law should yield empty batches")
	}
}

func TestTotalOverHorizon(t *testing.T) {
	if got := TotalOverHorizon(FixedLaw{Count: 5}, 100, 10); got != 50 {
		t.Fatalf("TotalOverHorizon = %d, want 50", got)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []Strategy{Uniform, OldestFirst, YoungestFirst, SweepBurst, Strategy(99)} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
	for _, l := range []Law{RateLaw{C: 4, K: 1.5}, FixedLaw{Count: 3}, ZeroLaw{}} {
		if l.String() == "" {
			t.Fatal("empty law string")
		}
	}
}
