package churn

import (
	"fmt"
	"strings"
)

// This file adds time-varying churn laws. The paper analyses a single
// steady rate; the scenario engine (internal/scenario) composes these to
// model bursts, ramps, and quiet periods while keeping the adversary
// oblivious — a Schedule is still committed before round 0 and is a pure
// function of the round number.

// Segment is one piece of a Schedule: a law active for Rounds rounds.
type Segment struct {
	// Rounds is the segment duration; a value <= 0 means "until the end
	// of the run" (subsequent segments are never reached).
	Rounds int
	Law    Law
}

// Schedule chains laws over time. Each segment sees rounds rebased to its
// own start (its law's round argument runs 0..Rounds-1), so round-aware
// laws like RampLaw compose naturally. After the last segment the
// schedule goes quiet.
type Schedule struct {
	Segments []Segment
}

// PerRound implements Law.
func (s Schedule) PerRound(n, round int) int {
	r := round
	for _, seg := range s.Segments {
		if seg.Rounds <= 0 || r < seg.Rounds {
			return seg.Law.PerRound(n, r)
		}
		r -= seg.Rounds
	}
	return 0
}

func (s Schedule) String() string {
	if len(s.Segments) == 0 {
		return "empty schedule"
	}
	parts := make([]string, len(s.Segments))
	for i, seg := range s.Segments {
		if seg.Rounds <= 0 {
			parts[i] = fmt.Sprintf("%s onwards", seg.Law)
		} else {
			parts[i] = fmt.Sprintf("%s for %d", seg.Law, seg.Rounds)
		}
	}
	return strings.Join(parts, "; ")
}

// RampLaw linearly interpolates the per-round replacement count from From
// at round 0 to To at round Rounds-1, then holds at To. Inside a Schedule
// segment the ramp spans that segment.
type RampLaw struct {
	From, To Law
	Rounds   int
}

// PerRound implements Law.
func (l RampLaw) PerRound(n, round int) int {
	if l.Rounds <= 1 || round >= l.Rounds {
		return l.To.PerRound(n, round)
	}
	if round <= 0 {
		return l.From.PerRound(n, round)
	}
	a := float64(l.From.PerRound(n, round))
	b := float64(l.To.PerRound(n, round))
	t := float64(round) / float64(l.Rounds-1)
	v := int(a + (b-a)*t + 0.5)
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

func (l RampLaw) String() string {
	return fmt.Sprintf("ramp %s -> %s over %d", l.From, l.To, l.Rounds)
}

// BurstLaw alternates quiet and burst periods: every Period rounds it
// replaces Count nodes per round for Width consecutive rounds, and none
// otherwise. Width must be <= Period.
type BurstLaw struct {
	Period int // cycle length in rounds
	Width  int // burst length at the start of each cycle
	Count  int // replacements per round during the burst
}

// PerRound implements Law.
func (l BurstLaw) PerRound(n, round int) int {
	if l.Period <= 0 || l.Width <= 0 {
		return 0
	}
	if round%l.Period >= l.Width {
		return 0
	}
	return FixedLaw{Count: l.Count}.PerRound(n, round)
}

func (l BurstLaw) String() string {
	return fmt.Sprintf("burst %d/round for %d every %d", l.Count, l.Width, l.Period)
}
