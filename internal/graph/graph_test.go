package graph

import (
	"testing"
	"testing/quick"

	"dynp2p/internal/rng"
)

func TestRandomRegularIsRegular(t *testing.T) {
	check := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw)%200 + 3
		d := (int(dRaw)%4 + 1) * 2 // 2,4,6,8
		g := RandomRegular(n, d, rng.New(seed))
		return g.CheckRegular() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegularOddDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd degree did not panic")
		}
	}()
	RandomRegular(10, 3, rng.New(1))
}

func TestRandomRegularConnected(t *testing.T) {
	// Random 8-regular graphs on >= 100 vertices are connected w.h.p.;
	// check several seeds.
	for seed := uint64(0); seed < 10; seed++ {
		g := RandomRegular(500, 8, rng.New(seed))
		if !g.IsConnected() {
			t.Fatalf("seed %d: 8-regular graph on 500 vertices disconnected", seed)
		}
	}
}

func TestRandomRegularExpander(t *testing.T) {
	// Friedman: lambda -> 2*sqrt(d-1)/d ~ 0.66 for d=8. Allow slack.
	r := rng.New(42)
	g := RandomRegular(2000, 8, r)
	lambda := g.SpectralGapEstimate(rng.New(7), 60)
	if lambda > 0.85 {
		t.Fatalf("spectral estimate %v too large for a random 8-regular graph", lambda)
	}
	if lambda < 0.3 {
		t.Fatalf("spectral estimate %v implausibly small", lambda)
	}
}

func TestFillRandomRegularReusesStorage(t *testing.T) {
	g := New(100, 6)
	r := rng.New(3)
	g.FillRandomRegular(r)
	if err := g.CheckRegular(); err != nil {
		t.Fatal(err)
	}
	before := g.Neighbors(0)[0]
	// Refill and confirm validity again (and that it actually changed).
	changed := false
	for i := 0; i < 5 && !changed; i++ {
		g.FillRandomRegular(r)
		if err := g.CheckRegular(); err != nil {
			t.Fatal(err)
		}
		if g.Neighbors(0)[0] != before {
			changed = true
		}
	}
	if !changed {
		t.Fatal("refill never changed the topology")
	}
}

func TestRingPlusRandomNonBipartiteOddN(t *testing.T) {
	g := New(101, 6)
	g.FillRingPlusRandom(rng.New(5))
	if err := g.CheckRegular(); err != nil {
		t.Fatal(err)
	}
	if g.IsBipartite() {
		t.Fatal("odd ring + random should be non-bipartite")
	}
	if !g.IsConnected() {
		t.Fatal("ring-based graph must be connected")
	}
}

func TestIsBipartiteDetectsEvenCycle(t *testing.T) {
	// A pure even cycle is bipartite.
	n := 8
	g := New(n, 2)
	for i := 0; i < n; i++ {
		g.SetPort(i, 0, int32((i+1)%n))
		g.SetPort(i, 1, int32((i-1+n)%n))
	}
	if !g.IsBipartite() {
		t.Fatal("even cycle reported non-bipartite")
	}
	// An odd cycle is not.
	n = 7
	g = New(n, 2)
	for i := 0; i < n; i++ {
		g.SetPort(i, 0, int32((i+1)%n))
		g.SetPort(i, 1, int32((i-1+n)%n))
	}
	if g.IsBipartite() {
		t.Fatal("odd cycle reported bipartite")
	}
}

func TestIsBipartiteSelfLoop(t *testing.T) {
	g := New(3, 2)
	g.SetPort(0, 0, 0)
	g.SetPort(0, 1, 1)
	g.SetPort(1, 0, 0)
	g.SetPort(1, 1, 2)
	g.SetPort(2, 0, 1)
	g.SetPort(2, 1, 2)
	if g.IsBipartite() {
		t.Fatal("graph with self-loop reported bipartite")
	}
}

func TestIsConnectedDetectsSplit(t *testing.T) {
	// Two disjoint 2-cycles.
	g := New(4, 2)
	g.SetPort(0, 0, 1)
	g.SetPort(0, 1, 1)
	g.SetPort(1, 0, 0)
	g.SetPort(1, 1, 0)
	g.SetPort(2, 0, 3)
	g.SetPort(2, 1, 3)
	g.SetPort(3, 0, 2)
	g.SetPort(3, 1, 2)
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestSpectralGapOfCycleNearOne(t *testing.T) {
	// Long even cycles mix very slowly: lambda = cos(2*pi/n) -> 1.
	n := 256
	g := New(n, 2)
	for i := 0; i < n; i++ {
		g.SetPort(i, 0, int32((i+1)%n))
		g.SetPort(i, 1, int32((i-1+n)%n))
	}
	lambda := g.SpectralGapEstimate(rng.New(1), 200)
	if lambda < 0.95 {
		t.Fatalf("cycle spectral estimate %v, want near 1", lambda)
	}
}

func TestCheckRegularCatchesCorruption(t *testing.T) {
	g := RandomRegular(50, 4, rng.New(8))
	g.SetPort(3, 1, 77) // out of range
	if err := g.CheckRegular(); err == nil {
		t.Fatal("out-of-range port not caught")
	}
	g = RandomRegular(50, 4, rng.New(8))
	g.SetPort(3, 1, g.Neighbor(3, 0)) // double-count a vertex
	if err := g.CheckRegular(); err == nil {
		t.Fatal("reference-count violation not caught")
	}
}

func TestRandomNeighborIsNeighbor(t *testing.T) {
	g := RandomRegular(64, 6, rng.New(10))
	r := rng.New(11)
	for trial := 0; trial < 500; trial++ {
		v := r.Intn(64)
		w := g.RandomNeighbor(v, r)
		found := false
		for _, u := range g.Neighbors(v) {
			if u == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("RandomNeighbor returned non-neighbour %d of %d", w, v)
		}
	}
}

func TestMixingTimeUpperBound(t *testing.T) {
	if MixingTimeUpperBound(1000, 0.7, 0.01) <= 0 {
		t.Fatal("mixing bound should be positive")
	}
	// Smaller lambda -> faster mixing.
	fast := MixingTimeUpperBound(1000, 0.3, 0.01)
	slow := MixingTimeUpperBound(1000, 0.9, 0.01)
	if fast >= slow {
		t.Fatalf("mixing bound not monotone in lambda: %d vs %d", fast, slow)
	}
	if MixingTimeUpperBound(1000, 0, 0.01) != 1 {
		t.Fatal("lambda=0 should give 1 step")
	}
}

func BenchmarkMicroFillRandomRegular(b *testing.B) {
	g := New(10000, 8)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FillRandomRegular(r)
	}
}

// TestSpectralGapOnRingPlusRandom: the deterministic-odd-cycle
// construction must still be an expander (the ring contributes only 2 of
// d ports; the random matchings dominate the spectrum) at both parities
// of n, and successive refills must stay expanding.
func TestSpectralGapOnRingPlusRandom(t *testing.T) {
	for _, n := range []int{501, 1024} {
		g := New(n, 8)
		r := rng.New(31)
		probe := rng.New(5)
		for fill := 0; fill < 3; fill++ {
			g.FillRingPlusRandom(r)
			if err := g.CheckRegular(); err != nil {
				t.Fatalf("n=%d fill %d: %v", n, fill, err)
			}
			lambda := g.SpectralGapEstimate(probe, 50)
			if lambda > 0.85 {
				t.Fatalf("n=%d fill %d: lambda %v too large for ring+random", n, fill, lambda)
			}
			if lambda < 0.3 {
				t.Fatalf("n=%d fill %d: lambda %v implausibly small", n, fill, lambda)
			}
		}
	}
}

// TestSpectralGapScratchValidation: the scratch variant must reject
// wrong-length vectors rather than silently mis-estimate.
func TestSpectralGapScratchValidation(t *testing.T) {
	g := RandomRegular(64, 4, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("short scratch vectors did not panic")
		}
	}()
	g.SpectralGapEstimateScratch(rng.New(2), 10, make([]float64, 63), make([]float64, 64))
}
