// Package graph implements the d-regular multigraph substrate of the
// dynamic-network model (paper §2.1): in every round the topology must be a
// d-regular non-bipartite expander over the n live slots.
//
// Graphs are stored as a flat adjacency array (n·d int32 entries) so the
// per-round regeneration and the random-walk inner loop stay allocation-free
// and cache-friendly. Vertices are *slots* (0..n-1); the simulation engine
// maps slots to node identities (see internal/simnet).
package graph

import (
	"fmt"
	"math"

	"dynp2p/internal/bitset"
	"dynp2p/internal/rng"
)

// Graph is a d-regular multigraph on n vertices. Self-loops and parallel
// edges are permitted (the permutation model produces them with vanishing
// probability); random walks treat each adjacency entry as one port.
type Graph struct {
	n, d int
	adj  []int32 // adj[v*d+p] = p-th neighbour of v
	perm []int32 // scratch for the Fill* constructors, reused across rounds
	j    *journal
}

// New returns an edgeless graph shell with capacity for n vertices of
// degree d. All ports initially point at vertex 0; callers are expected to
// fill the adjacency via a constructor below or SetPort.
func New(n, d int) *Graph {
	if n <= 0 || d <= 0 {
		panic("graph: non-positive n or d")
	}
	return &Graph{n: n, d: d, adj: make([]int32, n*d)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Degree returns the regular degree d.
func (g *Graph) Degree() int { return g.d }

// Neighbors returns a slice aliasing vertex v's d adjacency ports.
// The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[v*g.d : (v+1)*g.d]
}

// Adjacency returns the flat n·d adjacency array (adj[v*d+p] is the p-th
// neighbour of v), aliasing the graph's storage. The caller must not
// modify it. Per-round snapshotting (e.g. the walk soup's lazy trajectory
// ring) copies this wholesale instead of walking n Neighbors slices.
func (g *Graph) Adjacency() []int32 { return g.adj }

// Neighbor returns the p-th neighbour of v.
func (g *Graph) Neighbor(v, p int) int32 { return g.adj[v*g.d+p] }

// SetPort sets the p-th adjacency port of v. It is the caller's job to keep
// the multigraph consistent (each undirected edge appears once per side).
// When a change journal is enabled the write is recorded (see
// EnableJournal); SetPort is the single journaled mutation point — every
// incremental rewire (overlay splice, churn severing) goes through it.
func (g *Graph) SetPort(v, p int, w int32) {
	idx := v*g.d + p
	if g.j != nil {
		g.j.record(int32(idx), g.adj[idx], w)
	}
	g.adj[idx] = w
}

// setPortBulk is SetPort without the journal hook, for the Fill*
// constructors: they rewrite every port and report a single journal
// disruption instead of n·d delta entries.
func (g *Graph) setPortBulk(v, p int, w int32) { g.adj[v*g.d+p] = w }

// RandomNeighbor returns a uniformly random neighbour of v.
func (g *Graph) RandomNeighbor(v int, r *rng.Stream) int32 {
	return g.adj[v*g.d+r.Intn(g.d)]
}

// RandomRegular builds a d-regular multigraph from d/2 uniformly random
// permutations: for each permutation π, vertex i gets edge (i, π(i)), used
// in both directions. d must be even. This is the standard permutation
// model; the result is an expander with probability 1−o(1), with second
// eigenvalue concentrating near 2√(d−1)/d (Friedman's theorem).
func RandomRegular(n, d int, r *rng.Stream) *Graph {
	if d%2 != 0 {
		panic("graph: RandomRegular requires even degree")
	}
	g := New(n, d)
	g.FillRandomRegular(r)
	return g
}

// permScratch returns the reusable n-length permutation buffer, allocating
// it on first use. Keeping it on the Graph makes every subsequent per-round
// re-randomisation allocation-free.
func (g *Graph) permScratch() []int32 {
	if g.perm == nil {
		g.perm = make([]int32, g.n)
	}
	return g.perm
}

// FillRandomRegular overwrites g's edges with a fresh permutation-model
// d-regular multigraph drawn from r. It reuses g's storage (adjacency and
// permutation scratch), so the dynamic network can re-randomise edges every
// round with zero allocation.
func (g *Graph) FillRandomRegular(r *rng.Stream) {
	if g.d%2 != 0 {
		panic("graph: FillRandomRegular requires even degree")
	}
	g.j.disrupt()
	half := g.d / 2
	perm := g.permScratch()
	for k := 0; k < half; k++ {
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := g.n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < g.n; i++ {
			g.setPortBulk(i, 2*k, perm[i])
			g.setPortBulk(int(perm[i]), 2*k+1, int32(i))
		}
	}
}

// Ring fills g's first two ports with the cycle i → i±1 (mod n) and the
// remaining ports with random permutation edges. The explicit odd cycle
// when n is odd guarantees non-bipartiteness deterministically; used by
// tests and as a topology option.
func (g *Graph) FillRingPlusRandom(r *rng.Stream) {
	g.j.disrupt()
	for i := 0; i < g.n; i++ {
		g.setPortBulk(i, 0, int32((i+1)%g.n))
		g.setPortBulk(i, 1, int32((i-1+g.n)%g.n))
	}
	half := g.d / 2
	perm := g.permScratch()
	for k := 1; k < half; k++ {
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := g.n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < g.n; i++ {
			g.setPortBulk(i, 2*k, perm[i])
			g.setPortBulk(int(perm[i]), 2*k+1, int32(i))
		}
	}
}

// IsConnected reports whether the graph is connected (ignoring direction;
// the multigraph is symmetric by construction).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	visited := bitset.New(g.n)
	stack := make([]int32, 0, g.n)
	stack = append(stack, 0)
	visited.Set(0)
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(int(v)) {
			if !visited.Test(int(w)) {
				visited.Set(int(w))
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// IsBipartite reports whether the graph admits a proper 2-colouring.
// Non-bipartiteness is required by the model so that random walks converge
// to the uniform distribution instead of oscillating.
func (g *Graph) IsBipartite() bool {
	color := make([]int8, g.n) // 0 = unseen, 1/2 = sides
	stack := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(v)) {
				if int32(w) == v {
					return false // self-loop: odd cycle of length 1
				}
				switch color[w] {
				case 0:
					color[w] = 3 - color[v]
					stack = append(stack, w)
				case color[v]:
					return false
				}
			}
		}
	}
	return true
}

// SpectralGapEstimate estimates λ = max(|λ₂|, |λₙ|) of the random-walk
// transition matrix P = A/d via power iteration with deflation of the
// all-ones eigenvector. Smaller λ means faster mixing; the paper assumes a
// fixed bound λ < 1. iters controls accuracy (30–60 is ample for tests).
func (g *Graph) SpectralGapEstimate(r *rng.Stream, iters int) float64 {
	return g.SpectralGapEstimateScratch(r, iters, make([]float64, g.n), make([]float64, g.n))
}

// SpectralGapEstimateScratch is SpectralGapEstimate with caller-provided
// iteration vectors (each of length N), so per-round telemetry (the
// self-healing overlay measures λ on a cadence) can run allocation-free.
func (g *Graph) SpectralGapEstimateScratch(r *rng.Stream, iters int, x, y []float64) float64 {
	n := g.n
	if len(x) != n || len(y) != n {
		panic("graph: spectral scratch vectors must have length N")
	}
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	deflate(x)
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// y = P x
		for v := 0; v < n; v++ {
			var s float64
			for _, w := range g.Neighbors(v) {
				s += x[w]
			}
			y[v] = s / float64(g.d)
		}
		deflate(y)
		lambda = norm(y) // since |x| = 1, |Px| approximates |λ|
		if lambda == 0 {
			return 0
		}
		normalize(y)
		x, y = y, x
	}
	return lambda
}

func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// CheckRegular verifies that every adjacency entry is a valid vertex and
// that the multigraph is symmetric as a degree sequence (each vertex is
// referenced exactly d times). Returns an error describing the first
// violation. Used by tests and failure-injection experiments.
func (g *Graph) CheckRegular() error {
	refs := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		for p := 0; p < g.d; p++ {
			w := g.Neighbor(v, p)
			if w < 0 || int(w) >= g.n {
				return fmt.Errorf("graph: vertex %d port %d points at invalid vertex %d", v, p, w)
			}
			refs[w]++
		}
	}
	for v, c := range refs {
		if c != g.d {
			return fmt.Errorf("graph: vertex %d referenced %d times, want %d", v, c, g.d)
		}
	}
	return nil
}

// MixingTimeUpperBound returns the standard expander bound on the number of
// walk steps needed to get within ε of uniform in total variation:
// t ≥ log(n/ε) / log(1/λ). Protocol parameter selection uses it to pick
// T = Θ(log n).
func MixingTimeUpperBound(n int, lambda, eps float64) int {
	if lambda <= 0 {
		return 1
	}
	if lambda >= 1 {
		return math.MaxInt32
	}
	t := math.Log(float64(n)/eps) / math.Log(1/lambda)
	return int(math.Ceil(t))
}
