package graph

import (
	"testing"

	"dynp2p/internal/rng"
)

// TestJournalStartsDisrupted pins the enable-time contract: the first
// drain reports a disruption (no delta history for the pre-existing
// adjacency), subsequent quiet drains are clean and empty.
func TestJournalStartsDisrupted(t *testing.T) {
	r := rng.New(1)
	g := RandomRegular(64, 4, r)
	g.EnableJournal(0)
	if _, disrupted := g.DrainJournal(); !disrupted {
		t.Fatal("first drain after EnableJournal must be disrupted")
	}
	if deltas, disrupted := g.DrainJournal(); disrupted || len(deltas) != 0 {
		t.Fatalf("quiet drain: deltas=%d disrupted=%v", len(deltas), disrupted)
	}
}

// TestJournalNoJournalDrain pins DrainJournal on a journal-less graph:
// always disrupted, so consumers that don't know whether journaling is
// on fall back to snapshots.
func TestJournalNoJournalDrain(t *testing.T) {
	g := New(8, 2)
	if _, disrupted := g.DrainJournal(); !disrupted {
		t.Fatal("drain without journal must report disrupted")
	}
}

// TestJournalSkipsNoopWrites: writing a port to its current value emits
// no delta.
func TestJournalSkipsNoopWrites(t *testing.T) {
	r := rng.New(2)
	g := RandomRegular(32, 4, r)
	g.EnableJournal(0)
	g.DrainJournal()
	g.SetPort(5, 1, g.Neighbor(5, 1))
	if deltas, disrupted := g.DrainJournal(); disrupted || len(deltas) != 0 {
		t.Fatalf("no-op write journaled: deltas=%d disrupted=%v", len(deltas), disrupted)
	}
}

// TestJournalOverLimitDisrupts: a drain interval with more writes than
// the limit collapses to a disruption instead of growing unboundedly.
func TestJournalOverLimitDisrupts(t *testing.T) {
	r := rng.New(3)
	g := RandomRegular(64, 4, r)
	g.EnableJournal(8)
	g.DrainJournal()
	s := rng.Derive(7, 1)
	for i := 0; i < 32; i++ {
		g.SetPort(s.Intn(64), s.Intn(4), int32(s.Intn(64)))
	}
	deltas, disrupted := g.DrainJournal()
	if !disrupted || len(deltas) != 0 {
		t.Fatalf("over-limit interval: deltas=%d disrupted=%v", len(deltas), disrupted)
	}
	// The journal recovers: a small follow-up interval records cleanly.
	g.SetPort(0, 0, int32((g.Neighbor(0, 0)+1)%64))
	if deltas, disrupted := g.DrainJournal(); disrupted || len(deltas) != 1 {
		t.Fatalf("post-disruption interval: deltas=%d disrupted=%v", len(deltas), disrupted)
	}
}

// severSlot redirects every edge incident to slot v back onto v's own
// ports — the shape of churn severing in the self-healing overlay (the
// dead slot's neighbours each lose one port).
func severSlot(g *Graph, v int) {
	d := g.Degree()
	for p := 0; p < d; p++ {
		w := int(g.Neighbor(v, p))
		for q := 0; q < d; q++ {
			if int(g.Neighbor(w, q)) == v {
				g.SetPort(w, q, int32(w))
				break
			}
		}
		g.SetPort(v, p, int32(v))
	}
}

// spliceEdges splices vertex u into edge (a,b): the shape of overlay
// repair (two half-edges rewired to adopt a dangling vertex).
func spliceEdges(g *Graph, u, pa, pb, a, qa, b, qb int) {
	g.SetPort(a, qa, int32(u))
	g.SetPort(u, pa, int32(a))
	g.SetPort(b, qb, int32(u))
	g.SetPort(u, pb, int32(b))
}

// TestJournalReplayProperty is the satellite's property test: 300 rounds
// of randomly mixed mutations — churn-style severing, overlay-style
// splicing, raw port writes, and full Rerandomize/ring rebuilds — with
// the journal drained each round. A mirror adjacency advanced only by
// drained deltas (or re-snapshotted on disruption) must match the live
// adjacency exactly after every round, and unapplying the round's deltas
// must reproduce the round-start adjacency.
func TestJournalReplayProperty(t *testing.T) {
	const n, d, rounds = 128, 6, 300
	build := rng.New(7)
	mut := rng.Derive(7, 1)
	g := RandomRegular(n, d, build)
	g.EnableJournal(0)

	mirror := append([]int32(nil), g.Adjacency()...)
	g.DrainJournal() // consume the enable-time disruption

	prev := make([]int32, n*d)
	scratch := make([]int32, n*d)
	for round := 0; round < rounds; round++ {
		copy(prev, g.Adjacency())
		switch mut.Intn(6) {
		case 0: // full re-randomisation (oracle Rerandomize mode)
			g.FillRandomRegular(build)
		case 1: // ring + random rebuild
			g.FillRingPlusRandom(build)
		case 2: // churn-style severing of a few slots
			for i := 0; i < 1+mut.Intn(4); i++ {
				severSlot(g, mut.Intn(n))
			}
		case 3: // overlay-style splices
			for i := 0; i < 1+mut.Intn(8); i++ {
				u := mut.Intn(n)
				a, b := mut.Intn(n), mut.Intn(n)
				spliceEdges(g, u, mut.Intn(d), mut.Intn(d), a, mut.Intn(d), b, mut.Intn(d))
			}
		case 4: // raw port writes, including deliberate no-ops
			for i := 0; i < mut.Intn(20); i++ {
				v, p := mut.Intn(n), mut.Intn(d)
				w := int32(mut.Intn(n))
				if mut.Intn(4) == 0 {
					w = g.Neighbor(v, p) // no-op
				}
				g.SetPort(v, p, w)
			}
		case 5: // quiet round
		}

		deltas, disrupted := g.DrainJournal()
		if disrupted {
			copy(mirror, g.Adjacency())
		} else {
			// Forward replay advances the mirror to the live adjacency.
			ApplyDeltas(mirror, deltas)
			// Reverse replay of the same list recovers the round-start
			// adjacency from the round-end one.
			copy(scratch, g.Adjacency())
			UnapplyDeltas(scratch, deltas)
			for i := range scratch {
				if scratch[i] != prev[i] {
					t.Fatalf("round %d: unapply mismatch at index %d: got %d want %d",
						round, i, scratch[i], prev[i])
				}
			}
		}
		adj := g.Adjacency()
		for i := range adj {
			if mirror[i] != adj[i] {
				t.Fatalf("round %d (disrupted=%v, %d deltas): mirror mismatch at index %d: got %d want %d",
					round, disrupted, len(deltas), i, mirror[i], adj[i])
			}
		}
	}
}
