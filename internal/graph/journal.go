package graph

// PortDelta records one port write: adjacency index Idx (= v*d + p) went
// from Old to New. A round's delta list, applied in order, transforms the
// round-start adjacency into the round-end adjacency; applied in reverse
// order writing Old, it undoes the round. 12 bytes per rewired port —
// the currency the walk soup's lazy ring pays instead of full n·d
// snapshots.
type PortDelta struct {
	Idx int32
	Old int32
	New int32
}

// journal accumulates the port writes since the last Drain. It is either
// recording (every SetPort appends a PortDelta) or disrupted (a bulk
// rewrite or an over-limit round happened; the delta list is void and
// the consumer must fall back to a full snapshot).
type journal struct {
	deltas    []PortDelta
	limit     int
	disrupted bool
}

// EnableJournal starts recording port writes into a change journal
// drained by DrainJournal. limit bounds the entries kept per drain
// interval: a round that rewires more than limit ports is recorded as a
// disruption instead (consumers snapshot; memory stays bounded).
// limit <= 0 picks n·d/4 — well above paper-churn repair volume, well
// below the cost of a full snapshot.
//
// The journal starts in the disrupted state: the adjacency present at
// enable time has no delta history, so the first drain tells consumers
// to snapshot.
func (g *Graph) EnableJournal(limit int) {
	if limit <= 0 {
		limit = g.n * g.d / 4
		if limit < 64 {
			limit = 64
		}
	}
	g.j = &journal{deltas: make([]PortDelta, 0, 256), limit: limit, disrupted: true}
}

// JournalEnabled reports whether a change journal is recording.
func (g *Graph) JournalEnabled() bool { return g.j != nil }

// DrainJournal returns the port deltas recorded since the previous drain
// and whether the interval was disrupted (bulk rewrite or over-limit
// churn: the deltas are void and the caller must snapshot Adjacency
// instead). The returned slice aliases the journal's buffer and is valid
// only until the next port write; callers copy what they keep. Resets
// the journal to recording.
func (g *Graph) DrainJournal() (deltas []PortDelta, disrupted bool) {
	j := g.j
	if j == nil {
		return nil, true
	}
	deltas, disrupted = j.deltas, j.disrupted
	if disrupted {
		deltas = nil
	}
	j.deltas = j.deltas[:0]
	j.disrupted = false
	return deltas, disrupted
}

// record logs one port write. No-op writes (old == new) carry no
// information and are skipped; over-limit rounds collapse to a
// disruption so a pathological churn burst can't balloon the journal
// past snapshot cost.
func (j *journal) record(idx int32, old, new int32) {
	if j.disrupted || old == new {
		return
	}
	if len(j.deltas) >= j.limit {
		j.disrupted = true
		j.deltas = j.deltas[:0]
		return
	}
	j.deltas = append(j.deltas, PortDelta{Idx: idx, Old: old, New: new})
}

// disrupt voids the current interval: the consumer must snapshot.
// Called by the bulk Fill* constructors, which rewrite every port.
func (j *journal) disrupt() {
	if j == nil {
		return
	}
	j.disrupted = true
	j.deltas = j.deltas[:0]
}

// ApplyDeltas applies a drained delta list forward to adj (a flat n·d
// adjacency array): after the call adj reflects the interval's writes.
func ApplyDeltas(adj []int32, deltas []PortDelta) {
	for _, pd := range deltas {
		adj[pd.Idx] = pd.New
	}
}

// UnapplyDeltas undoes a drained delta list on adj: entries are walked
// in reverse order writing Old, returning adj to its pre-interval state.
func UnapplyDeltas(adj []int32, deltas []PortDelta) {
	for i := len(deltas) - 1; i >= 0; i-- {
		adj[deltas[i].Idx] = deltas[i].Old
	}
}
