package protocol

import (
	"bytes"
	"slices"

	"dynp2p/internal/ida"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// searchState tracks one retrieval this node initiated (Algorithm 4).
type searchState struct {
	key      uint64
	com      uint64 // the search committee's id
	start    int
	deadline int
	found    int // round the first storage roster arrived; -1 until then
	roster   []simnet.NodeID
	fetched  map[simnet.NodeID]bool // members already asked for data
	pieces   []ida.Piece
	itemLen  int
	want     []byte // expected content, if known (for verification)
	trace    uint64 // nonzero when this retrieval is lifecycle-traced
	cached   bool   // a cached copy resolved (or is resolving) the search
}

// RequestStore asks the node at slot to persistently store (key, data)
// via Algorithm 3: it will create a committee from its walk samples and
// instruct it to store the item and maintain landmark sets. Call between
// rounds only.
func (h *Handler) RequestStore(e *simnet.Engine, slot int, key uint64, data []byte) {
	st := &h.states[slot]
	st.pending = append(st.pending, pendingOp{
		mode: ModeStore, key: key,
		data:  append([]byte(nil), data...),
		start: e.Round(),
	})
}

// RequestRetrieve asks the node at slot to retrieve item key via
// Algorithm 4. expect, when non-nil, is verified against the retrieved
// bytes. Call between rounds only. One active search per (node, key).
func (h *Handler) RequestRetrieve(e *simnet.Engine, slot int, key uint64, expect []byte) {
	st := &h.states[slot]
	st.pending = append(st.pending, pendingOp{
		mode: ModeSearch, key: key,
		data:  expect,
		start: e.Round(),
	})
}

// tickPending creates committees for requested operations once the node
// has gathered enough walk samples to pick committee members.
func (h *Handler) tickPending(ctx *simnet.Ctx, st *nodeState) {
	if len(st.pending) == 0 {
		return
	}
	kept := st.pending[:0]
	for _, op := range st.pending {
		// A retrieval the node can answer from its own cache never forms
		// a committee: it resolves in place, this tick.
		if op.mode == ModeSearch {
			if e := h.cacheLookup(ctx, op.key); e != nil {
				h.serveOwnCacheHit(ctx, st, op, e)
				continue
			}
		}
		roster := st.recentDistinct(nil, h.inviteCount())
		// Wait until a full committee can be drawn; the grace period
		// covers the soup warm-up (a fresh node sees its first samples
		// only after one walk length), after which we use what we have.
		grace := h.soup.Params().WalkLength + 2*h.P.SampleWindow
		enough := len(roster) >= h.P.CommitteeSize ||
			(ctx.Round-op.start > grace && len(roster) > 0)
		if !enough {
			kept = append(kept, op)
			continue
		}
		switch op.mode {
		case ModeStore:
			h.createStoreCommittee(ctx, st, op, roster)
		case ModeSearch:
			h.createSearchCommittee(ctx, st, op, roster)
		}
	}
	st.pending = kept
}

// createStoreCommittee implements Algorithm 3 step 1-2: invite the roster
// to form the item's committee, handing each member the item (or its IDA
// piece).
func (h *Handler) createStoreCommittee(ctx *simnet.Ctx, st *nodeState, op pendingOp, roster []simnet.NodeID) {
	com := op.key
	trace := h.sampleOp(ctx, st, op, true)
	var pieces []ida.Piece
	if h.code != nil {
		pieces = h.code.Encode(op.data)
	}
	for i, peer := range roster {
		blob := op.data
		pieceIdx := 0
		if pieces != nil {
			p := pieces[i%len(pieces)]
			blob = p.Data
			pieceIdx = p.Index
		}
		ctx.SendRouted(simnet.Msg{
			To: peer, Kind: KindCInvite, Item: com,
			Aux:   packInvite(ctx.Round, ModeStore, pieceIdx),
			Aux2:  uint64(len(op.data)),
			IDs:   roster,
			Blob:  blob,
			Trace: trace,
		})
	}
	h.ctr.invitesSent.Add(ctx.Shard, int64(len(roster)))
	h.ctr.committeeCreated.Inc(ctx.Shard)
}

// sampleOp decides whether the operation is lifecycle-traced and, when it
// is, emits its start event (dated at the request round, so
// rounds-to-resolve includes the soup warm-up wait). The decision is a
// pure hash of (tracer seed, key, issuer): worker-count independent.
func (h *Handler) sampleOp(ctx *simnet.Ctx, st *nodeState, op pendingOp, isStore bool) uint64 {
	tr := ctx.E.Tracer()
	if tr == nil {
		return 0
	}
	trace := tr.Sampled(op.key, uint64(st.id))
	if trace != 0 {
		tr.Emit(ctx.Shard, telemetry.Event{
			Trace: trace, Round: int64(op.start), Kind: telemetry.EvOpStart,
			From: uint64(st.id), Item: op.key, OK: isStore,
		})
	}
	return trace
}

// createSearchCommittee implements Algorithm 4 step 1: invite a search
// committee and start tracking the retrieval locally.
func (h *Handler) createSearchCommittee(ctx *simnet.Ctx, st *nodeState, op pendingOp, roster []simnet.NodeID) {
	com := searchComID(op.key, st.id, op.start)
	trace := h.sampleOp(ctx, st, op, false)
	st.searches[op.key] = &searchState{
		key: op.key, com: com, start: op.start,
		deadline: op.start + h.P.SearchTTL,
		found:    -1,
		fetched:  make(map[simnet.NodeID]bool),
		want:     op.data,
		trace:    trace,
	}
	kb := keyBlob(op.key)
	for _, peer := range roster {
		ctx.SendRouted(simnet.Msg{
			To: peer, Kind: KindCInvite, Item: com,
			Aux:   packInvite(ctx.Round, ModeSearch, 0),
			Aux2:  uint64(st.id),
			IDs:   roster,
			Blob:  kb,
			Trace: trace,
		})
	}
	h.ctr.invitesSent.Add(ctx.Shard, int64(len(roster)))
	h.ctr.committeeCreated.Inc(ctx.Shard)
	// The searcher doubles as a search landmark so its own walk samples
	// contribute to the rendezvous.
	h.addSearchTask(st, op.key, st.id, ctx.Round, trace)
	// Shortcut: if the searcher already happens to be a storage landmark
	// for the item, it knows the roster and can fetch immediately.
	if ent, ok := st.storageLM[op.key]; ok && ctx.Round < ent.expiry {
		srch := st.searches[op.key]
		srch.found = ctx.Round
		for _, member := range ent.roster {
			if member == st.id || srch.fetched[member] {
				continue
			}
			srch.fetched[member] = true
			srch.roster = append(srch.roster, member)
			ctx.SendRouted(simnet.Msg{To: member, Kind: KindSFetch, Item: op.key, Trace: trace})
			h.ctr.fetches.Inc(ctx.Shard)
		}
	}
}

// searchComID derives a unique committee id for a retrieval operation.
func searchComID(key uint64, searcher simnet.NodeID, round int) uint64 {
	x := key ^ 0x9e3779b97f4a7c15*uint64(searcher) ^ uint64(round)<<32
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tickSearchLandmarks runs Algorithm 4 step 2's inquiry loop: every search
// landmark contacts the sources of the walk samples it received this round
// and inquires about the item.
func (h *Handler) tickSearchLandmarks(ctx *simnet.Ctx, st *nodeState, samples []walks.Sample) {
	if len(st.searchLM) == 0 || len(samples) == 0 {
		return
	}
	for _, key := range st.sortedLMKeys() {
		tasks := st.searchLM[key]
		for _, t := range tasks {
			if ctx.Round >= t.expiry {
				continue
			}
			for _, s := range samples {
				if s.Src == st.id {
					continue
				}
				// Keyed routed send: under overlay routing the walk may
				// terminate early at ANY current holder of the item (cache
				// replica, storage landmark, committee member), not just
				// the sampled source — replicas cut network distance.
				ctx.SendRoutedKeyed(simnet.Msg{
					To: s.Src, Kind: KindSInquire, Item: key,
					Aux2:  uint64(t.searcher),
					Trace: t.trace,
				})
			}
			h.ctr.inquiries.Add(ctx.Shard, int64(len(samples)))
		}
	}
}

// onInquire answers an inquiry if this node is a storage landmark (or
// committee member) for the item: it reports the storage roster directly
// to the searcher.
func (h *Handler) onInquire(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	// A cached copy beats a roster referral: the bytes go straight to
	// the searcher, skipping the fetch/reconstruct round-trips.
	if e := h.cacheLookup(ctx, msg.Item); e != nil {
		h.cacheServe(ctx, e, simnet.NodeID(msg.Aux2), msg.Trace)
		return
	}
	ent, ok := st.storageLM[msg.Item]
	if !ok || ctx.Round >= ent.expiry {
		return
	}
	ctx.SendRouted(simnet.Msg{
		To: simnet.NodeID(msg.Aux2), Kind: KindSFound, Item: msg.Item,
		IDs:   ent.roster,
		Trace: msg.Trace, // the inquiring search's trace rides the reply
	})
	h.ctr.founds.Inc(ctx.Shard)
}

// onFound handles the searcher's side: record the storage roster and fetch
// the item from the committee members.
func (h *Handler) onFound(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	srch, ok := st.searches[msg.Item]
	if !ok {
		return
	}
	if srch.found < 0 {
		srch.found = ctx.Round
	}
	for _, member := range msg.IDs {
		if member == st.id || srch.fetched[member] {
			continue
		}
		srch.fetched[member] = true
		srch.roster = append(srch.roster, member)
		ctx.SendRouted(simnet.Msg{To: member, Kind: KindSFetch, Item: msg.Item, Trace: srch.trace})
		h.ctr.fetches.Inc(ctx.Shard)
	}
}

// onFetch returns this member's copy or piece of the item.
func (h *Handler) onFetch(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	cp, ok := st.stored[msg.Item]
	if !ok {
		return
	}
	hasPiece := cp.pieceIdx >= 0
	idx := cp.pieceIdx
	if idx < 0 {
		idx = 0
	}
	ctx.SendRouted(simnet.Msg{
		To: msg.From, Kind: KindSData, Item: msg.Item,
		Aux:   packCount(0, idx, hasPiece),
		Aux2:  uint64(cp.itemLen),
		Blob:  cp.data,
		Trace: msg.Trace,
	})
}

// onData completes (or advances) a retrieval with a data response.
func (h *Handler) onData(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	srch, ok := st.searches[msg.Item]
	if !ok {
		return
	}
	_, pieceIdx, hasPiece := unpackCount(msg.Aux)
	var item []byte
	if !hasPiece {
		item = msg.Blob
	} else {
		if h.code == nil {
			return
		}
		srch.itemLen = int(msg.Aux2)
		srch.pieces = append(srch.pieces, ida.Piece{
			Index: pieceIdx, Data: append([]byte(nil), msg.Blob...),
		})
		if distinctPieces(srch.pieces) < h.code.K() {
			return
		}
		dec, err := h.code.Decode(srch.pieces, srch.itemLen)
		if err != nil {
			return
		}
		item = dec
	}
	ok = srch.want == nil || bytes.Equal(item, srch.want)
	if ok {
		h.cacheAdmit(ctx, st, msg.Item, item, srch.trace)
	}
	h.finishSearch(ctx, st, srch, ctx.Round, ok, len(item))
}

func distinctPieces(ps []ida.Piece) int {
	seen := make(map[int]bool, len(ps))
	for _, p := range ps {
		seen[p.Index] = true
	}
	return len(seen)
}

// finishSearch records the retrieval outcome and clears the local state.
func (h *Handler) finishSearch(ctx *simnet.Ctx, st *nodeState, srch *searchState, done int, success bool, nbytes int) {
	h.recordResult(SearchResult{
		Searcher: st.id, Key: srch.key, Start: srch.start,
		Found: srch.found, Done: done, Success: success,
		Cached: srch.cached, Bytes: nbytes,
	})
	if success {
		lat := int64(done - srch.start)
		if srch.cached {
			h.ctr.roundsCached.Observe(ctx.Shard, lat)
		} else {
			h.ctr.roundsUncached.Observe(ctx.Shard, lat)
		}
	}
	h.emitSearchDone(ctx, st, srch, done, success)
	delete(st.searches, srch.key)
}

// emitSearchDone closes a traced retrieval's lifecycle.
func (h *Handler) emitSearchDone(ctx *simnet.Ctx, st *nodeState, srch *searchState, done int, success bool) {
	if srch.trace == 0 {
		return
	}
	if tr := ctx.E.Tracer(); tr != nil {
		tr.Emit(ctx.Shard, telemetry.Event{
			Trace: srch.trace, Round: int64(done), Kind: telemetry.EvOpDone,
			From: uint64(st.id), Item: srch.key,
			Aux: int64(done - srch.start), OK: success,
		})
	}
}

// tickSearches expires overdue retrievals (recorded as failures).
func (h *Handler) tickSearches(ctx *simnet.Ctx, st *nodeState) {
	if len(st.searches) == 0 {
		return
	}
	for _, key := range st.sortedSearchKeys() {
		srch := st.searches[key]
		if ctx.Round >= srch.deadline {
			h.recordResult(SearchResult{
				Searcher: st.id, Key: srch.key, Start: srch.start,
				Found: srch.found, Done: -1, Success: false,
			})
			h.emitSearchDone(ctx, st, srch, ctx.Round, false)
			delete(st.searches, key)
			continue
		}
		// Keep the searcher's own inquiry task alive while the search
		// runs, even past the landmark TTL.
		if t := findSearchTask(st, key, st.id); t != nil && t.expiry <= ctx.Round+1 {
			t.expiry = ctx.Round + 2
		}
	}
}

// sortIDs sorts a NodeID slice ascending (helper for tests).
func sortIDs(ids []simnet.NodeID) {
	slices.Sort(ids)
}
