package protocol

import (
	"testing"

	"dynp2p/internal/churn"
)

// cacheSim builds a no-churn sim with the hot-key cache enabled and one
// stored item, settled enough for retrievals to work.
func cacheSim(t *testing.T, n int, ttl int) (*sim, uint64, []byte) {
	t.Helper()
	s := newSim(t, n, churn.ZeroLaw{}, 0, 9)
	s.h.SetCache(4, ttl, 1)
	s.warm()
	key := uint64(42)
	data := itemBytes(key, 96)
	s.h.RequestStore(s.e, 0, key, data)
	s.run(s.h.P.Period)
	return s, key, data
}

// retrieve runs one retrieval from slot to completion and returns its
// result.
func retrieve(t *testing.T, s *sim, slot int, key uint64, want []byte) SearchResult {
	t.Helper()
	s.h.RequestRetrieve(s.e, slot, key, want)
	for i := 0; i < s.h.P.SearchTTL+5; i++ {
		s.run(1)
		if rs := s.h.DrainResults(); len(rs) > 0 {
			return rs[0]
		}
	}
	t.Fatalf("retrieval from slot %d never completed", slot)
	return SearchResult{}
}

// TestCacheOwnHitShortCircuits: a node that completed a retrieval holds
// the bytes at depth 0, so its next retrieval of the same key resolves
// from its own cache in the same tick — no committee, no landmarks.
func TestCacheOwnHitShortCircuits(t *testing.T) {
	s, key, data := cacheSim(t, 256, 0)
	first := retrieve(t, s, 100, key, data)
	if !first.Success {
		t.Fatalf("first retrieval failed: %+v", first)
	}
	if !s.h.CachedAt(100, key, s.e.Round()) {
		t.Fatal("completer did not cache the item")
	}
	before := s.h.Counters().CacheHits
	second := retrieve(t, s, 100, key, data)
	if !second.Success || !second.Cached {
		t.Fatalf("second retrieval not cache-served: %+v", second)
	}
	if second.Done != second.Start {
		t.Fatalf("own-cache hit took %d rounds, want 0", second.Done-second.Start)
	}
	if got := s.h.Counters().CacheHits; got != before+1 {
		t.Fatalf("cache hits %d, want %d", got, before+1)
	}
}

// TestCacheReplacedSlotNeverServed: churn invalidation. OnJoin clears
// the replaced slot's cache region, so a newcomer inherits nothing and
// can neither self-serve nor answer inquiries from the departed node's
// entries.
func TestCacheReplacedSlotNeverServed(t *testing.T) {
	s, key, data := cacheSim(t, 256, 0)
	res := retrieve(t, s, 77, key, data)
	if !res.Success {
		t.Fatalf("retrieval failed: %+v", res)
	}
	if !s.h.CachedAt(77, key, s.e.Round()) {
		t.Fatal("completer did not cache the item")
	}
	// Replace the node as the engine would on churn.
	s.h.OnJoin(s.e, 77, 1<<40, s.e.Round())
	if s.h.CachedAt(77, key, s.e.Round()) {
		t.Fatal("replaced slot still reports a cached copy")
	}
	// The newcomer's own retrieval must fall back to the full search
	// path (it can still be served by OTHER nodes' caches, but never
	// from the cleared region in the same tick).
	served := s.h.Counters().CacheServed
	again := retrieve(t, s, 77, key, data)
	if !again.Success {
		t.Fatalf("newcomer retrieval failed: %+v", again)
	}
	if again.Done == again.Start {
		t.Fatal("newcomer resolved in 0 rounds: served from a cleared cache region")
	}
	if again.Cached && s.h.Counters().CacheServed == served {
		t.Fatal("result marked cached but no replica serve happened")
	}
}

// TestCacheTTLExpiryFallsBack: with a tiny TTL every seeded replica is
// expired by the time the second retrieval runs, so the search falls
// back to the full Algorithm-4 path and still succeeds.
func TestCacheTTLExpiryFallsBack(t *testing.T) {
	s, key, data := cacheSim(t, 256, 2)
	first := retrieve(t, s, 50, key, data)
	if !first.Success {
		t.Fatalf("first retrieval failed: %+v", first)
	}
	// Outlive the TTL — generously. The first search's landmarks keep
	// inquiring until their own TTL expires, and every inquiry lookup
	// that frees an expired entry lets a later seed re-install (and
	// re-cascade), so the replica population only ages out for good
	// once the inquiry tail is gone.
	s.run(s.h.P.SearchTTL + 2*s.h.P.LandmarkTTL)
	second := retrieve(t, s, 50, key, data)
	if !second.Success {
		t.Fatalf("post-expiry retrieval failed: %+v", second)
	}
	if second.Cached {
		t.Fatalf("post-expiry retrieval was cache-served: %+v", second)
	}
	if s.h.Counters().CacheExpired == 0 {
		t.Fatal("no expired-entry lookups counted")
	}
}

// TestCacheSeedsSpread: completions seed walk-sample sources, and
// first-time installs cascade, so repeated retrievals grow the hot
// key's replica population well beyond the searchers themselves.
func TestCacheSeedsSpread(t *testing.T) {
	s, key, data := cacheSim(t, 256, 0)
	for i := 0; i < 6; i++ {
		if res := retrieve(t, s, 10+17*i, key, data); !res.Success {
			t.Fatalf("retrieval %d failed: %+v", i, res)
		}
	}
	load := s.h.CacheLoad(s.e.Round())
	if load < 20 {
		t.Fatalf("cache load %d after 6 completions, want cascade spread >= 20", load)
	}
	c := s.h.Counters()
	if c.CacheSeeds == 0 || c.CacheInserts == 0 {
		t.Fatalf("no seeding activity: %+v", c)
	}
}

// TestCacheDisabledIsInert: capacity 0 must leave every cache counter
// at zero and still retrieve correctly.
func TestCacheDisabledIsInert(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 9)
	s.warm()
	key := uint64(42)
	data := itemBytes(key, 96)
	s.h.RequestStore(s.e, 0, key, data)
	s.run(s.h.P.Period)
	for i := 0; i < 3; i++ {
		if res := retrieve(t, s, 10+17*i, key, data); !res.Success || res.Cached {
			t.Fatalf("retrieval %d: %+v", i, res)
		}
	}
	c := s.h.Counters()
	if c.CacheHits != 0 || c.CacheServed != 0 || c.CacheSeeds != 0 || c.CacheInserts != 0 {
		t.Fatalf("cache counters nonzero with caching off: %+v", c)
	}
}
