package protocol

import (
	"dynp2p/internal/simnet"
)

// maybeWave starts a landmark-construction wave (Algorithm 2) if this is a
// wave round for the membership: at join, and every WaveEvery rounds from
// the committee's base round. Each member roots its own sampling tree; the
// trees' nodes become landmarks that know the committee roster.
func (h *Handler) maybeWave(ctx *simnet.Ctx, st *nodeState, m *membership) {
	round := ctx.Round
	due := round == m.joined
	if !due && round > m.base {
		due = (round-m.base)%h.P.WaveEvery == 0
	}
	if !due {
		return
	}
	h.ctr.waves.Inc(ctx.Shard)
	wave := round

	// The member itself is a landmark for its task.
	switch m.mode {
	case ModeStore:
		st.storageLM[m.key] = &lmEntry{
			roster: m.roster, expiry: round + h.P.LandmarkTTL, wave: wave,
		}
	case ModeSearch:
		h.addSearchTask(st, m.key, m.searcher, round, m.trace)
	}

	h.growChildren(ctx, st, m.key, m.mode, m.searcher, m.roster, h.P.TreeDepth, wave, m.trace)
}

// growChildren sends tree-growth invitations to TreeFanout recent walk
// samples ("node v contacts its received sample nodes and adds 2 nodes
// that are not yet part of the tree as its children").
func (h *Handler) growChildren(ctx *simnet.Ctx, st *nodeState, key uint64,
	mode Mode, searcher simnet.NodeID, roster []simnet.NodeID, depth, wave int, trace uint64) {
	if depth <= 0 {
		return
	}
	children := st.recentDistinct(nil, h.P.TreeFanout)
	for _, child := range children {
		ctx.SendRouted(simnet.Msg{
			To: child, Kind: KindLGrow, Item: key,
			Aux:   packGrow(depth-1, wave, mode),
			Aux2:  uint64(searcher),
			IDs:   roster,
			Trace: trace,
		})
	}
	h.ctr.growSent.Add(ctx.Shard, int64(len(children)))
}

// onGrow handles a tree-growth invitation: the node becomes a landmark for
// the item (or search task) and recursively extends the tree unless it was
// already recruited into this wave (the paper's "not yet part of the
// tree" rule, enforced at the receiver).
func (h *Handler) onGrow(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	depth, wave, mode := unpackGrow(msg.Aux)
	key := msg.Item
	switch mode {
	case ModeStore:
		if ent, ok := st.storageLM[key]; ok && ent.wave == wave {
			// Already in this wave's tree: refresh, do not extend.
			if exp := ctx.Round + h.P.LandmarkTTL; exp > ent.expiry {
				ent.expiry = exp
			}
			return
		}
		st.storageLM[key] = &lmEntry{
			roster: append([]simnet.NodeID(nil), msg.IDs...),
			expiry: ctx.Round + h.P.LandmarkTTL,
			wave:   wave,
		}
	case ModeSearch:
		searcher := simnet.NodeID(msg.Aux2)
		if t := findSearchTask(st, key, searcher); t != nil && t.wave == wave {
			if exp := ctx.Round + h.P.LandmarkTTL; exp > t.expiry {
				t.expiry = exp
			}
			return
		}
		h.addSearchTaskWave(st, key, searcher, ctx.Round, wave, msg.Trace)
	default:
		return
	}
	h.growChildren(ctx, st, key, mode, simnet.NodeID(msg.Aux2), msg.IDs, depth, wave, msg.Trace)
}

// addSearchTask registers this node as a search landmark for (key,
// searcher), creating or refreshing the task.
func (h *Handler) addSearchTask(st *nodeState, key uint64, searcher simnet.NodeID, round int, trace uint64) {
	h.addSearchTaskWave(st, key, searcher, round, round, trace)
}

func (h *Handler) addSearchTaskWave(st *nodeState, key uint64, searcher simnet.NodeID, round, wave int, trace uint64) {
	if t := findSearchTask(st, key, searcher); t != nil {
		t.expiry = round + h.P.LandmarkTTL
		t.wave = wave
		if trace != 0 {
			t.trace = trace
		}
		return
	}
	st.searchLM[key] = append(st.searchLM[key], &searchTask{
		searcher: searcher, expiry: round + h.P.LandmarkTTL, wave: wave, trace: trace,
	})
}

func findSearchTask(st *nodeState, key uint64, searcher simnet.NodeID) *searchTask {
	for _, t := range st.searchLM[key] {
		if t.searcher == searcher {
			return t
		}
	}
	return nil
}
