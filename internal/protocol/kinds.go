package protocol

import "encoding/binary"

// Message kinds. Committee control, landmark growth, and storage/search
// each get a range; simnet delivers them all through the same inboxes.
const (
	// KindCInvite invites the recipient into a committee.
	// Item = committee id, Aux = packInvite(base round, mode, piece index),
	// Aux2 = searcher id (search mode) or item length (store mode),
	// IDs = roster, Blob = item copy / IDA piece (store) or the 8-byte
	// item key (search mode, where Item carries the op-unique com id).
	KindCInvite uint8 = 0x10
	// KindCCount is the epoch count exchange between committee members.
	// Item = com, Aux = packCount(count, piece index, has piece),
	// Aux2 = item length, Blob = the member's IDA piece (IDA mode only).
	KindCCount uint8 = 0x11
	// KindCHandover tells old members the epoch handover happened.
	// Item = com, Aux = epoch, IDs = new roster (members also present in
	// the new roster do not resign).
	KindCHandover uint8 = 0x12

	// KindLGrow grows a landmark tree by one level.
	// Item = item key, Aux = packGrow(depth, wave, mode), Aux2 = searcher
	// (search mode), IDs = committee roster.
	KindLGrow uint8 = 0x20

	// KindSInquire asks a sampled node whether it knows item Item.
	// Aux2 = searcher id the answer should be reported for.
	KindSInquire uint8 = 0x30
	// KindSFound reports to the searcher that the sender knows item
	// Item's storage committee. IDs = storage roster.
	KindSFound uint8 = 0x31
	// KindSFetch asks a storage committee member for the item bytes.
	KindSFetch uint8 = 0x32
	// KindSData returns the item copy or an IDA piece.
	// Aux = packCount-style (piece index, has piece), Aux2 = item length,
	// Blob = data.
	KindSData uint8 = 0x33

	// KindCacheData answers a search inquiry straight from a hot-key
	// cache (DESIGN.md §10): the full item bytes go to the searcher,
	// short-circuiting the found/fetch/reconstruct leg of Algorithm 4.
	// Item = key, Aux = the serving replica's seed depth, Blob = bytes.
	KindCacheData uint8 = 0x40
	// KindCacheSeed pushes a cached replica to a walk-sample source.
	// Item = key, Aux = the recipient's seed depth, Blob = bytes.
	KindCacheSeed uint8 = 0x41
)

// packInvite encodes (base round, mode, piece index) into Aux.
func packInvite(base int, mode Mode, pieceIdx int) uint64 {
	return uint64(uint32(base)) | uint64(mode)<<32 | uint64(uint16(pieceIdx))<<40
}

func unpackInvite(aux uint64) (base int, mode Mode, pieceIdx int) {
	return int(uint32(aux)), Mode(aux >> 32 & 0xff), int(uint16(aux >> 40))
}

// packCount encodes (sample count, piece index, piece presence) into Aux.
func packCount(count, pieceIdx int, hasPiece bool) uint64 {
	v := uint64(uint32(count)) | uint64(uint16(pieceIdx))<<32
	if hasPiece {
		v |= 1 << 48
	}
	return v
}

func unpackCount(aux uint64) (count, pieceIdx int, hasPiece bool) {
	return int(uint32(aux)), int(uint16(aux >> 32)), aux>>48&1 == 1
}

// packGrow encodes (remaining depth, wave id, mode) into Aux.
func packGrow(depth int, wave int, mode Mode) uint64 {
	return uint64(uint8(depth)) | uint64(uint32(wave))<<8 | uint64(mode)<<40
}

func unpackGrow(aux uint64) (depth int, wave int, mode Mode) {
	return int(uint8(aux)), int(uint32(aux >> 8)), Mode(aux >> 40 & 0xff)
}

// keyBlob encodes an item key as a message blob (search-mode invites carry
// the key separately from the op-unique committee id).
func keyBlob(key uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, key)
	return b
}

func blobKey(b []byte) uint64 {
	if len(b) != 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
