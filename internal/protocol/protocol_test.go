package protocol

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/rng"
	"dynp2p/internal/simnet"
	"dynp2p/internal/walks"
)

// sim bundles a full protocol stack for tests.
type sim struct {
	e    *simnet.Engine
	soup *walks.Soup
	h    *Handler
}

func newSim(t testing.TB, n int, law churn.Law, idaK int, seed uint64) *sim {
	t.Helper()
	e := simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: seed, ProtocolSeed: seed + 1,
		Strategy: churn.Uniform, Law: law,
	})
	wp := walks.DefaultParams(n)
	soup := walks.NewSoup(e, wp, 0)
	e.AddHook(soup)
	p := DefaultParams(n, wp.WalkLength)
	p.IDAThreshold = idaK
	h := NewHandler(e, soup, p)
	return &sim{e: e, soup: soup, h: h}
}

func (s *sim) run(rounds int) {
	s.e.Run(s.h, rounds)
}

// warm runs enough rounds for the soup to reach steady state so nodes have
// sample buffers to draw committees from.
func (s *sim) warm() {
	s.run(s.soup.Params().WalkLength + 3)
}

func itemBytes(key uint64, n int) []byte {
	b := make([]byte, n)
	rng.New(key).Fill(b)
	return b
}

func TestStoreCreatesCommitteeAndCopies(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 1)
	s.warm()
	data := itemBytes(42, 200)
	s.h.RequestStore(s.e, 5, 42, data)
	s.run(4)
	// Without churn every invitee materialises, so the committee equals
	// the over-provisioned invitation count.
	invited := int(s.h.P.InviteFactor*float64(s.h.P.CommitteeSize) + 0.5)
	copies := s.h.CopyCount(42)
	if copies != invited {
		t.Fatalf("copies = %d, want invite count %d", copies, invited)
	}
	if got := len(s.h.CommitteeSlots(42)); got != invited {
		t.Fatalf("committee slots = %d, want %d", got, invited)
	}
}

func TestLandmarksGrow(t *testing.T) {
	s := newSim(t, 512, churn.ZeroLaw{}, 0, 2)
	s.warm()
	s.h.RequestStore(s.e, 0, 7, itemBytes(7, 64))
	// Committee forms next round; tree needs TreeDepth more rounds.
	s.run(3 + s.h.P.TreeDepth)
	lm := s.h.StorageLandmarkCount(7, s.e.Round())
	if lm < s.h.P.CommitteeSize {
		t.Fatalf("landmarks = %d, want at least committee size %d", lm, s.h.P.CommitteeSize)
	}
	// Lemma 8 upper bound: members (invite count, no churn) * full tree.
	invited := int(s.h.P.InviteFactor*float64(s.h.P.CommitteeSize) + 0.5)
	treeMax := 1
	for i := 0; i < s.h.P.TreeDepth; i++ {
		treeMax *= s.h.P.TreeFanout
		treeMax++
	}
	if lm > invited*treeMax {
		t.Fatalf("landmarks = %d exceed tree bound %d", lm, invited*treeMax)
	}
}

func TestRetrieveNoChurn(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 3)
	s.warm()
	data := itemBytes(99, 128)
	s.h.RequestStore(s.e, 3, 99, data)
	s.run(s.h.P.Period)
	s.h.RequestRetrieve(s.e, 200, 99, data)
	var results []SearchResult
	for i := 0; i < s.h.P.SearchTTL+5 && len(results) == 0; i++ {
		s.run(1)
		results = append(results, s.h.DrainResults()...)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if !r.Success {
		t.Fatalf("retrieval failed: %+v", r)
	}
	if r.Bytes != len(data) {
		t.Fatalf("retrieved %d bytes, want %d", r.Bytes, len(data))
	}
	if r.Found < r.Start || r.Done < r.Found {
		t.Fatalf("inconsistent rounds: %+v", r)
	}
}

func TestRetrieveUnderChurn(t *testing.T) {
	// Moderate churn: committees must maintain themselves and retrieval
	// must still succeed.
	law := churn.RateLaw{C: 0.5, K: 2.0}
	s := newSim(t, 512, law, 0, 4)
	s.warm()
	data := itemBytes(1234, 64)
	s.h.RequestStore(s.e, 10, 1234, data)
	s.run(3 * s.h.P.Period) // survive several epochs first
	if c := s.h.CopyCount(1234); c == 0 {
		t.Fatal("item lost before retrieval test began")
	}
	ok := 0
	attempts := 5
	for a := 0; a < attempts; a++ {
		slot := 50 + a*37
		s.h.RequestRetrieve(s.e, slot, 1234, data)
	}
	deadline := s.e.Round() + s.h.P.SearchTTL + 10
	var results []SearchResult
	for s.e.Round() < deadline && len(results) < attempts {
		s.run(1)
		results = append(results, s.h.DrainResults()...)
	}
	for _, r := range results {
		if r.Success {
			ok++
		}
	}
	if ok < attempts-1 {
		t.Fatalf("only %d/%d retrievals succeeded under churn", ok, attempts)
	}
}

func TestCommitteeSurvivesEpochs(t *testing.T) {
	law := churn.RateLaw{C: 0.5, K: 2.0}
	s := newSim(t, 512, law, 0, 5)
	s.warm()
	s.h.RequestStore(s.e, 0, 77, itemBytes(77, 32))
	s.run(2)
	for epoch := 0; epoch < 6; epoch++ {
		s.run(s.h.P.Period)
		members := len(s.h.CommitteeSlots(77))
		if members == 0 {
			t.Fatalf("committee died at epoch %d", epoch)
		}
		copies := s.h.CopyCount(77)
		if copies == 0 {
			t.Fatalf("all copies lost at epoch %d", epoch)
		}
		if copies > 3*s.h.P.CommitteeSize {
			t.Fatalf("copy count exploded: %d", copies)
		}
	}
	c := s.h.Counters()
	if c.Handovers == 0 {
		t.Fatal("no handovers happened across 6 epochs")
	}
	if c.Resignations == 0 {
		t.Fatal("no resignations despite handovers")
	}
}

func TestHandoverRefreshesRoster(t *testing.T) {
	// With churn, the committee after several epochs should consist of
	// different slots than the original.
	law := churn.RateLaw{C: 1, K: 2.0}
	s := newSim(t, 512, law, 0, 6)
	s.warm()
	s.h.RequestStore(s.e, 0, 5, itemBytes(5, 16))
	s.run(3)
	first := append([]int(nil), s.h.CommitteeSlots(5)...)
	s.run(5 * s.h.P.Period)
	last := s.h.CommitteeSlots(5)
	if len(last) == 0 {
		t.Fatal("committee died")
	}
	same := 0
	inFirst := make(map[int]bool)
	for _, sl := range first {
		inFirst[sl] = true
	}
	for _, sl := range last {
		if inFirst[sl] {
			same++
		}
	}
	if same == len(last) && len(last) == len(first) {
		t.Fatal("committee membership never changed across 5 epochs")
	}
}

func TestIDAStoreAndRetrieve(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 5, 7)
	if !s.h.IDA() {
		t.Fatal("IDA mode not active")
	}
	s.warm()
	data := itemBytes(88, 333)
	s.h.RequestStore(s.e, 2, 88, data)
	// Run past the first epoch's handover phase to exercise re-coding.
	s.run(s.h.P.Period + s.h.P.SampleWindow + 8)
	if c := s.h.Counters(); c.IDARecoded == 0 {
		t.Fatal("handover never reconstructed and re-dispersed the item")
	}
	s.h.RequestRetrieve(s.e, 100, 88, data)
	var results []SearchResult
	for i := 0; i < s.h.P.SearchTTL+5 && len(results) == 0; i++ {
		s.run(1)
		results = append(results, s.h.DrainResults()...)
	}
	if len(results) != 1 || !results[0].Success {
		t.Fatalf("IDA retrieval failed: %+v", results)
	}
	if results[0].Bytes != len(data) {
		t.Fatalf("IDA retrieved %d bytes, want %d", results[0].Bytes, len(data))
	}
}

func TestIDAStorageOverhead(t *testing.T) {
	// IDA pieces should total ~L/K of the item, far below replication.
	s := newSim(t, 256, churn.ZeroLaw{}, 8, 8)
	s.warm()
	data := itemBytes(11, 800)
	s.h.RequestStore(s.e, 0, 11, data)
	s.run(4)
	var total int
	for slot := range s.h.states {
		if cp, ok := s.h.states[slot].stored[11]; ok {
			total += len(cp.data)
		}
	}
	invited := int(s.h.P.InviteFactor*float64(s.h.P.CommitteeSize) + 0.5)
	replicated := invited * len(data)
	if total >= replicated/2 {
		t.Fatalf("IDA stored %d bytes; replication would be %d — expected large saving", total, replicated)
	}
	// Each member holds exactly one ceil(L/K) piece; the roster may be
	// smaller than the invite count (the leader's sample window can hold
	// fewer distinct sources) but must allow reconstruction (≥ K pieces).
	pieceSize := (len(data) + 7) / 8
	if total%pieceSize != 0 {
		t.Fatalf("IDA stored %d bytes, not a multiple of the %d-byte piece size", total, pieceSize)
	}
	if pieces := total / pieceSize; pieces < 8 || pieces > invited {
		t.Fatalf("IDA stored %d pieces, want between K=8 and invited=%d", pieces, invited)
	}
}

func TestSearchForMissingItemFails(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 9)
	s.warm()
	s.h.RequestRetrieve(s.e, 8, 31337, nil)
	var results []SearchResult
	for i := 0; i < s.h.P.SearchTTL+10 && len(results) == 0; i++ {
		s.run(1)
		results = append(results, s.h.DrainResults()...)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1 expiry failure", len(results))
	}
	if results[0].Success || results[0].Found >= 0 {
		t.Fatalf("search for missing item should fail cleanly: %+v", results[0])
	}
}

func TestSearchCommitteeDissolves(t *testing.T) {
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 10)
	s.warm()
	s.h.RequestRetrieve(s.e, 8, 555, nil)
	s.run(2)
	// Find the search committee id via the searcher's state.
	searcher := &s.h.states[8]
	srch := searcher.searches[555]
	if srch == nil {
		t.Fatal("search state missing")
	}
	com := srch.com
	s.run(2)
	if len(s.h.CommitteeSlots(com)) == 0 {
		t.Fatal("search committee never formed")
	}
	s.run(s.h.P.SearchTTL + 2)
	if len(s.h.CommitteeSlots(com)) != 0 {
		t.Fatal("search committee did not dissolve after TTL")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) ([]SearchResult, Counters) {
		e := simnet.New(simnet.Config{
			N: 128, Degree: 8, EdgeMode: expander.Rerandomize,
			AdversarySeed: 11, ProtocolSeed: 12,
			Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 2},
			Workers: workers,
		})
		wp := walks.DefaultParams(128)
		soup := walks.NewSoup(e, wp, workers)
		e.AddHook(soup)
		p := DefaultParams(128, wp.WalkLength)
		h := NewHandler(e, soup, p)
		e.Run(h, wp.WalkLength+3)
		h.RequestStore(e, 0, 9, itemBytes(9, 50))
		e.Run(h, p.Period)
		h.RequestRetrieve(e, 64, 9, itemBytes(9, 50))
		e.Run(h, p.SearchTTL+5)
		return h.DrainResults(), h.Counters()
	}
	r1, c1 := run(1)
	r2, c2 := run(5)
	if len(r1) != len(r2) {
		t.Fatalf("result counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("results differ at %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("counters differ:\n%+v\n%+v", c1, c2)
	}
}

func TestPendingWaitsForSamples(t *testing.T) {
	// A store requested before the soup has warmed up (no samples seen
	// yet) must wait, then execute once samples flow.
	s := newSim(t, 256, churn.ZeroLaw{}, 0, 13)
	s.run(1) // initial joins; protocol state now exists
	s.h.RequestStore(s.e, 4, 21, itemBytes(21, 16))
	s.run(3)
	if s.h.CopyCount(21) != 0 {
		t.Fatal("store executed before any samples existed")
	}
	s.run(s.soup.Params().WalkLength + 12)
	if s.h.CopyCount(21) == 0 {
		t.Fatal("pending store never executed")
	}
}

func TestPerNodeTrafficPolylog(t *testing.T) {
	// The scalability claim: per-node per-round traffic stays polylog even
	// with an item stored and a search running.
	s := newSim(t, 512, churn.RateLaw{C: 0.5, K: 2}, 0, 14)
	s.warm()
	s.h.RequestStore(s.e, 0, 1, itemBytes(1, 32))
	s.run(s.h.P.Period)
	s.h.RequestRetrieve(s.e, 101, 1, nil)
	s.run(s.h.P.SearchTTL)
	maxBits := s.e.Metrics().MaxNodeBitsRound
	// The busiest node is the epoch leader, which in one round sends
	// CommitteeSize invites (roster + item blob each), CommitteeSize
	// handovers (roster each), and its own waves/counts. That is
	// Θ(log²n) words + Θ(|I|·log n) bits — polylog for fixed |I|.
	size := int64(s.h.P.CommitteeSize)
	itemBits := int64(8 * 32)
	perInvite := 328 + 16 + 64*size + 16 + itemBits
	perHandover := 328 + 16 + 64*size
	leaderPeak := size*(perInvite+perHandover) + size*400
	if maxBits > 2*leaderPeak {
		t.Fatalf("max per-node bits %d exceeds 2x leader peak %d", maxBits, 2*leaderPeak)
	}
	// And it must be far below the flooding alternative of Θ(n·|I|) bits.
	floodBits := int64(s.e.N()) * itemBits
	if maxBits > floodBits {
		t.Fatalf("per-node traffic %d is not below flooding scale %d", maxBits, floodBits)
	}
}

func TestParamsValidate(t *testing.T) {
	mustPanic := func(name string, p Params) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		p.validate()
	}
	good := DefaultParams(1000, 14)
	mustPanic("zero committee", func() Params { p := good; p.CommitteeSize = 0; return p }())
	mustPanic("short period", func() Params { p := good; p.Period = 1; return p }())
	mustPanic("bad ida", func() Params { p := good; p.IDAThreshold = p.CommitteeSize + 1; return p }())
	good.validate() // must not panic
}

func TestTreeDepthHelpers(t *testing.T) {
	d := DefaultTreeDepth(1024, 17)
	if d < 1 || d > 10 {
		t.Fatalf("DefaultTreeDepth(1024,17) = %d, implausible", d)
	}
	// Bigger networks need deeper trees.
	if DefaultTreeDepth(1<<20, 35) <= DefaultTreeDepth(1<<10, 17) {
		t.Fatal("tree depth should grow with n")
	}
	// Paper formula: works only at astronomically large n.
	if _, ok := PaperTreeDepth(1024, 1.5); ok {
		t.Fatal("PaperTreeDepth should report out-of-regime for n=1024")
	}
	// For larger churn exponents the correction factors shrink fast
	// enough that the formula becomes usable at (still huge) n.
	if mu, ok := PaperTreeDepth(1<<62, 3.0); !ok || mu < 1 {
		t.Fatalf("PaperTreeDepth at huge n, k=3 = (%d,%v), want usable", mu, ok)
	}
}

func TestPackingRoundTrips(t *testing.T) {
	base, mode, idx := unpackInvite(packInvite(123456, ModeSearch, 77))
	if base != 123456 || mode != ModeSearch || idx != 77 {
		t.Fatalf("invite packing broken: %d %d %d", base, mode, idx)
	}
	c, pi, hp := unpackCount(packCount(99, 13, true))
	if c != 99 || pi != 13 || !hp {
		t.Fatalf("count packing broken: %d %d %v", c, pi, hp)
	}
	d, w, m := unpackGrow(packGrow(5, 100000, ModeStore))
	if d != 5 || w != 100000 || m != ModeStore {
		t.Fatalf("grow packing broken: %d %d %d", d, w, m)
	}
	if blobKey(keyBlob(0xdeadbeefcafe)) != 0xdeadbeefcafe {
		t.Fatal("key blob round trip broken")
	}
	if blobKey([]byte{1, 2}) != 0 {
		t.Fatal("short blob should decode to 0")
	}
}

func TestSortIDsHelper(t *testing.T) {
	ids := []simnet.NodeID{5, 1, 9, 3}
	sortIDs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			t.Fatal("sortIDs did not sort")
		}
	}
}
