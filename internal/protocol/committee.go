package protocol

import (
	"cmp"
	"slices"

	"dynp2p/internal/ida"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// membership is one node's view of one committee it belongs to
// (Algorithm 1). The epoch machinery re-elects the whole committee from
// fresh walk samples every Period rounds so the committee outlives its
// members (Theorem 2).
type membership struct {
	com      uint64 // committee id (= item key for storage committees)
	key      uint64 // item key (differs from com for search committees)
	mode     Mode
	base     int             // committee creation round; anchors the epoch schedule
	searcher simnet.NodeID   // search mode: whom results are for
	roster   []simnet.NodeID // current members (possibly including dead ids)
	joined   int             // round this node (re-)joined
	owner    simnet.NodeID   // the node this membership state belongs to
	trace    uint64          // lifecycle trace id inherited from the invite (0 = untraced)

	// Per-epoch scratch, reset at each epoch's sample window.
	curEpoch     int                   // epoch the scratch belongs to
	sources      []simnet.NodeID       // walk sources recorded in the window
	myCount      int                   // walks received in the window
	counts       map[simnet.NodeID]int // member -> reported count
	gathered     map[int][]byte        // IDA pieces piggybacked on counts
	gatheredLen  int                   // item length for gathered pieces
	handledEpoch int                   // last epoch with a handover seen/attempted
}

// epochOf returns the maintenance epoch index for a round (0 = the epoch
// in which the committee was created; maintenance starts with epoch 1).
func (m *membership) epochOf(round, period int) int {
	if round < m.base {
		return 0
	}
	return (round - m.base) / period
}

// phaseOf returns the offset of round within its epoch.
func (m *membership) phaseOf(round, period int) int {
	if round < m.base {
		return 0
	}
	return (round - m.base) % period
}

// inRoster reports whether id appears in ids.
func inRoster(ids []simnet.NodeID, id simnet.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// tickMemberships runs the per-round committee machinery for every
// committee this node belongs to: sample-window recording, count exchange,
// ranked handover attempts, landmark waves, and search-committee expiry.
func (h *Handler) tickMemberships(ctx *simnet.Ctx, st *nodeState, samples []walks.Sample) {
	if len(st.memberships) == 0 {
		return
	}
	round := ctx.Round
	for _, com := range st.sortedComIDs() {
		m := st.memberships[com]

		// Search committees dissolve after SearchTTL (Algorithm 4 step 1).
		if m.mode == ModeSearch {
			if round >= m.base+h.P.SearchTTL {
				delete(st.memberships, com)
				continue
			}
			h.maybeWave(ctx, st, m)
			continue
		}

		// Storage committees: epoch maintenance (Algorithm 1).
		epoch := m.epochOf(round, h.P.Period)
		phase := m.phaseOf(round, h.P.Period)
		if epoch >= 1 {
			if phase < h.P.SampleWindow {
				if m.curEpoch != epoch {
					m.curEpoch = epoch
					m.sources = m.sources[:0]
					m.myCount = 0
					m.counts = make(map[simnet.NodeID]int, len(m.roster))
					m.gathered = nil
					m.gatheredLen = 0
				}
				m.myCount += len(samples)
				for _, s := range samples {
					if s.Src != st.id {
						m.sources = append(m.sources, s.Src)
					}
				}
			}
			if phase == h.P.SampleWindow && m.curEpoch == epoch {
				h.sendCounts(ctx, st, m)
			}
			if phase > h.P.SampleWindow && m.curEpoch == epoch && m.handledEpoch < epoch {
				k := phase - h.P.SampleWindow - 1
				if k >= 0 && k%h.P.FallbackSpacing == 0 {
					k /= h.P.FallbackSpacing
					if k < h.P.FallbackCandidates && h.rankOf(m) == k {
						h.attemptHandover(ctx, st, m, epoch, k)
					}
				}
			}
		}
		h.maybeWave(ctx, st, m)
	}
}

// sendCounts broadcasts this member's sample count (and, in IDA mode, its
// piece) to the whole roster.
func (h *Handler) sendCounts(ctx *simnet.Ctx, st *nodeState, m *membership) {
	m.counts[st.id] = m.myCount
	var blob []byte
	aux := packCount(m.myCount, 0, false)
	var itemLen uint64
	if h.code != nil {
		if cp, ok := st.stored[m.key]; ok && cp.pieceIdx >= 0 {
			blob = cp.data
			aux = packCount(m.myCount, cp.pieceIdx, true)
			itemLen = uint64(cp.itemLen)
			// Record own piece for a potential local reconstruction.
			if m.gathered == nil {
				m.gathered = make(map[int][]byte)
			}
			m.gathered[cp.pieceIdx] = cp.data
			m.gatheredLen = cp.itemLen
		}
	}
	for _, peer := range m.roster {
		if peer == st.id {
			continue
		}
		ctx.SendRouted(simnet.Msg{
			To: peer, Kind: KindCCount, Item: m.com,
			Aux: aux, Aux2: itemLen, Blob: blob,
			Trace: m.trace,
		})
	}
}

// onCount records a peer's count (and piece) for the current epoch.
func (h *Handler) onCount(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	m, ok := st.memberships[msg.Item]
	if !ok || m.counts == nil {
		return
	}
	count, pieceIdx, hasPiece := unpackCount(msg.Aux)
	m.counts[msg.From] = count
	if hasPiece && len(msg.Blob) > 0 {
		if m.gathered == nil {
			m.gathered = make(map[int][]byte)
		}
		if _, dup := m.gathered[pieceIdx]; !dup {
			m.gathered[pieceIdx] = append([]byte(nil), msg.Blob...)
			m.gatheredLen = int(msg.Aux2)
		}
	}
}

// rankOf returns this node's position in the epoch leader ranking:
// members ordered by (count desc, id asc), as in Algorithm 1 ("the node
// with the largest number of random walks, breaking ties arbitrarily yet
// unanimously").
func (h *Handler) rankOf(m *membership) int {
	type entry struct {
		id    simnet.NodeID
		count int
	}
	entries := make([]entry, 0, len(m.counts))
	for id, c := range m.counts {
		entries = append(entries, entry{id, c})
	}
	slices.SortFunc(entries, func(a, b entry) int {
		if a.count != b.count {
			return cmp.Compare(b.count, a.count)
		}
		return cmp.Compare(a.id, b.id)
	})
	for i, e := range entries {
		if e.id == m.owner {
			return i
		}
	}
	return len(entries)
}

// attemptHandover is the epoch leader action (Algorithm 1 rounds r+2/r+3):
// pick a fresh roster from the walk sources recorded in the sample window,
// invite them (with the item payload), and tell the old roster to resign.
// Fallback candidates (k > 0) run the same code if the primary vanished.
// inviteCount is the number of invitations sent per committee formation:
// CommitteeSize scaled by the over-provisioning factor.
func (h *Handler) inviteCount() int {
	return int(h.P.InviteFactor*float64(h.P.CommitteeSize) + 0.5)
}

func (h *Handler) attemptHandover(ctx *simnet.Ctx, st *nodeState, m *membership, epoch, k int) {
	newRoster := dedupeIDs(m.sources, h.inviteCount(), st.id)
	if len(newRoster) == 0 {
		return // no samples: let the next candidate try
	}

	// Prepare the task payload for the new members. If this candidate
	// cannot produce the item (its copy is gone, or fewer than K pieces
	// survived the epoch), it aborts WITHOUT handing over: the surviving
	// members keep their copies/pieces, a better-equipped fallback
	// candidate may still act this epoch, and otherwise the committee
	// retries at the next epoch boundary.
	var blobs [][]byte
	var itemLen uint64
	if m.mode == ModeStore {
		if h.code == nil {
			cp, ok := st.stored[m.key]
			if !ok {
				return
			}
			blobs = make([][]byte, len(newRoster))
			for i := range blobs {
				blobs[i] = cp.data
			}
			itemLen = uint64(cp.itemLen)
		} else {
			// §4.4: reconstruct from the pieces piggybacked on counts,
			// then re-disperse fresh pieces to the new roster.
			item, ok := h.reconstruct(m)
			if !ok {
				h.ctr.idaLost.Inc(ctx.Shard)
				return
			}
			pieces := h.code.Encode(item)
			blobs = make([][]byte, len(newRoster))
			for i := range blobs {
				blobs[i] = pieces[i%len(pieces)].Data
			}
			itemLen = uint64(len(item))
			h.ctr.idaRecoded.Inc(ctx.Shard)
		}
	}
	m.handledEpoch = epoch

	for i, peer := range newRoster {
		pieceIdx := 0
		var blob []byte
		if blobs != nil {
			blob = blobs[i]
			if h.code != nil {
				pieceIdx = i % h.P.CommitteeSize
			}
		}
		ctx.SendRouted(simnet.Msg{
			To: peer, Kind: KindCInvite, Item: m.com,
			Aux:   packInvite(m.base, m.mode, pieceIdx),
			Aux2:  itemLen,
			IDs:   newRoster,
			Blob:  blob,
			Trace: m.trace,
		})
	}
	h.ctr.invitesSent.Add(ctx.Shard, int64(len(newRoster)))
	for _, peer := range m.roster {
		ctx.SendRouted(simnet.Msg{
			To: peer, Kind: KindCHandover, Item: m.com,
			Aux: uint64(epoch), IDs: newRoster,
			Trace: m.trace,
		})
	}
	h.ctr.handovers.Inc(ctx.Shard)
	if k > 0 {
		h.ctr.fallbackHandovers.Inc(ctx.Shard)
	}
}

// reconstruct rebuilds the item from the pieces gathered this epoch.
func (h *Handler) reconstruct(m *membership) ([]byte, bool) {
	if len(m.gathered) < h.code.K() {
		return nil, false
	}
	idxs := make([]int, 0, len(m.gathered))
	for i := range m.gathered {
		idxs = append(idxs, i)
	}
	slices.Sort(idxs)
	pieces := make([]ida.Piece, 0, len(idxs))
	for _, i := range idxs {
		pieces = append(pieces, ida.Piece{Index: i, Data: m.gathered[i]})
	}
	item, err := h.code.Decode(pieces, m.gatheredLen)
	if err != nil {
		return nil, false
	}
	return item, true
}

// dedupeIDs returns up to want distinct ids from src (order preserved),
// excluding self.
func dedupeIDs(src []simnet.NodeID, want int, self simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, want)
	seen := make(map[simnet.NodeID]bool, want*2)
	for _, id := range src {
		if id == self || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
		if len(out) == want {
			break
		}
	}
	return out
}

// onInvite installs (or refreshes) a committee membership, stores the task
// payload, and registers the new member as a landmark for the item.
func (h *Handler) onInvite(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	base, mode, pieceIdx := unpackInvite(msg.Aux)
	com := msg.Item
	key := com
	var searcher simnet.NodeID
	if mode == ModeSearch {
		key = blobKey(msg.Blob)
		searcher = simnet.NodeID(msg.Aux2)
	}
	m := &membership{
		com: com, key: key, mode: mode, base: base,
		searcher: searcher,
		roster:   append([]simnet.NodeID(nil), msg.IDs...),
		joined:   ctx.Round,
		owner:    st.id,
		curEpoch: -1,
		trace:    msg.Trace,
	}
	m.handledEpoch = m.epochOf(ctx.Round, h.P.Period)
	st.memberships[com] = m

	switch mode {
	case ModeStore:
		if len(msg.Blob) > 0 {
			idx := -1
			if h.code != nil {
				idx = pieceIdx
			}
			st.stored[key] = &storedCopy{
				data:     append([]byte(nil), msg.Blob...),
				pieceIdx: idx,
				itemLen:  int(msg.Aux2),
			}
		}
		st.storageLM[key] = &lmEntry{
			roster: m.roster, expiry: ctx.Round + h.P.LandmarkTTL, wave: ctx.Round,
		}
		// A traced store settles when its *creation* invites land (base ==
		// the send round): every founding member emits a done event, and
		// the tracer's first-done-wins aggregation closes the lifecycle
		// deterministically. Handover invites (older base) don't re-close.
		if msg.Trace != 0 && base == ctx.Round-1 {
			if tr := ctx.E.Tracer(); tr != nil {
				tr.Emit(ctx.Shard, telemetry.Event{
					Trace: msg.Trace, Round: int64(ctx.Round), Kind: telemetry.EvOpDone,
					From: uint64(st.id), Item: key, OK: true,
				})
			}
		}
	case ModeSearch:
		h.addSearchTask(st, key, searcher, ctx.Round, msg.Trace)
	}
}

// onHandover processes the old-roster notification: members not re-invited
// resign and drop the task payload (Algorithm 1: "the nodes in Com cease to
// be members of the committee").
func (h *Handler) onHandover(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	m, ok := st.memberships[msg.Item]
	if !ok {
		return
	}
	if int(msg.Aux) > m.handledEpoch {
		m.handledEpoch = int(msg.Aux)
	}
	if inRoster(msg.IDs, st.id) {
		return // re-invited: the CInvite (processed earlier) refreshed us
	}
	delete(st.memberships, msg.Item)
	if m.mode == ModeStore {
		delete(st.stored, m.key)
	}
	h.ctr.resignations.Inc(ctx.Shard)
}
