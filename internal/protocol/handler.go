package protocol

import (
	"slices"
	"sync"

	"dynp2p/internal/ida"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// Handler is the protocol stack: a simnet.Handler that runs committees,
// landmark trees, storage, and retrieval for every node in the network.
// Per-node state is kept per slot; HandleRound runs concurrently across
// slots but each invocation touches only its own slot's state, shared
// immutable configuration, and sharded telemetry cells.
type Handler struct {
	P    Params
	soup *walks.Soup
	code *ida.Coder // nil in replication mode

	states []nodeState

	// Hot-key cache (cache.go): one flat arena, slot s owning the region
	// [s·stride, (s+1)·stride); cacheCap <= cacheStride is the runtime
	// per-node capacity (SetCache can shrink without dropping entries and
	// grow by rebuilding the arena). seed keys the deterministic
	// replica-placement hash.
	seed        uint64
	cacheArena  []cacheEntry
	cacheStride int
	cacheCap    int
	cacheTTL    int
	cacheRate   float64

	mu      sync.Mutex
	results []SearchResult

	ctr counters
}

// counters are the handler's event counters: registry-backed sharded
// cells. Every update site runs inside HandleRound and adds to the
// node's shard (ctx.Shard), so the hot path takes no atomics and the
// merged totals are identical at any worker count.
type counters struct {
	invitesSent       telemetry.Counter
	handovers         telemetry.Counter
	fallbackHandovers telemetry.Counter
	resignations      telemetry.Counter
	committeeCreated  telemetry.Counter
	waves             telemetry.Counter
	growSent          telemetry.Counter
	inquiries         telemetry.Counter
	founds            telemetry.Counter
	fetches           telemetry.Counter
	idaLost           telemetry.Counter
	idaRecoded        telemetry.Counter
	cacheHits         telemetry.Counter
	cacheServed       telemetry.Counter
	cacheSeeds        telemetry.Counter
	cacheInserts      telemetry.Counter
	cacheEvictions    telemetry.Counter
	cacheExpired      telemetry.Counter
	cacheHitsByHop    telemetry.Histogram
	roundsCached      telemetry.Histogram
	roundsUncached    telemetry.Histogram
}

func newCounters(reg *telemetry.Registry) counters {
	return counters{
		invitesSent:       reg.Counter("dynp2p_proto_invites_sent_total", "committee invitations sent"),
		handovers:         reg.Counter("dynp2p_proto_handovers_total", "epoch handovers completed"),
		fallbackHandovers: reg.Counter("dynp2p_proto_fallback_handovers_total", "handovers performed by a non-primary candidate"),
		resignations:      reg.Counter("dynp2p_proto_resignations_total", "members resigned after a handover"),
		committeeCreated:  reg.Counter("dynp2p_proto_committees_created_total", "committees created by store/retrieve requests"),
		waves:             reg.Counter("dynp2p_proto_waves_total", "landmark waves started by members"),
		growSent:          reg.Counter("dynp2p_proto_grow_sent_total", "tree-growth messages sent"),
		inquiries:         reg.Counter("dynp2p_proto_inquiries_total", "landmark inquiries sent"),
		founds:            reg.Counter("dynp2p_proto_founds_total", "positive inquiry responses sent"),
		fetches:           reg.Counter("dynp2p_proto_fetches_total", "data fetch requests sent"),
		idaLost:           reg.Counter("dynp2p_proto_ida_lost_total", "handovers where fewer than K pieces survived"),
		idaRecoded:        reg.Counter("dynp2p_proto_ida_recoded_total", "handovers that reconstructed and re-dispersed"),
		cacheHits:         reg.Counter("dynp2p_cache_hits_total", "retrievals resolved by a cached copy (own-node or served)"),
		cacheServed:       reg.Counter("dynp2p_cache_served_total", "inquiries answered directly from a cache"),
		cacheSeeds:        reg.Counter("dynp2p_cache_seeds_total", "cache replicas pushed to walk-sample sources"),
		cacheInserts:      reg.Counter("dynp2p_cache_inserts_total", "cache entries written (excluding same-key refreshes)"),
		cacheEvictions:    reg.Counter("dynp2p_cache_evictions_total", "live cache entries evicted by LRU pressure"),
		cacheExpired:      reg.Counter("dynp2p_cache_expired_total", "cache lookups that found only a TTL-expired entry"),
		cacheHitsByHop:    reg.Histogram("dynp2p_cache_hits_by_hop", "seed depth of the replica resolving each cache hit"),
		roundsCached:      reg.Histogram("dynp2p_search_rounds_cached", "rounds to resolve for cache-served retrievals"),
		roundsUncached:    reg.Histogram("dynp2p_search_rounds_uncached", "rounds to resolve for committee-served retrievals"),
	}
}

// Counters is a plain snapshot of the handler's event counters.
type Counters struct {
	InvitesSent       int64 // committee invitations sent
	Handovers         int64 // epoch handovers completed (by any candidate)
	FallbackHandovers int64 // handovers performed by a non-primary candidate
	Resignations      int64 // members resigned after a handover
	CommitteesCreated int64 // committees created by Store/Retrieve requests
	Waves             int64 // landmark waves started by members
	GrowSent          int64 // tree-growth messages sent
	Inquiries         int64 // landmark inquiries sent
	Founds            int64 // positive inquiry responses sent
	Fetches           int64 // data fetch requests sent
	IDALost           int64 // handovers where fewer than K pieces survived
	IDARecoded        int64 // handovers that reconstructed and re-dispersed
	CacheHits         int64 // retrievals resolved by a cached copy
	CacheServed       int64 // inquiries answered directly from a cache
	CacheSeeds        int64 // cache replicas pushed to walk-sample sources
	CacheInserts      int64 // cache entries written (excluding refreshes)
	CacheEvictions    int64 // live cache entries evicted by LRU pressure
	CacheExpired      int64 // lookups that found only a TTL-expired entry
}

// Counters returns a snapshot of event counters, merged from the
// telemetry registry (the store of record). Call between rounds.
func (h *Handler) Counters() Counters {
	return Counters{
		InvitesSent:       h.ctr.invitesSent.Value(),
		Handovers:         h.ctr.handovers.Value(),
		FallbackHandovers: h.ctr.fallbackHandovers.Value(),
		Resignations:      h.ctr.resignations.Value(),
		CommitteesCreated: h.ctr.committeeCreated.Value(),
		Waves:             h.ctr.waves.Value(),
		GrowSent:          h.ctr.growSent.Value(),
		Inquiries:         h.ctr.inquiries.Value(),
		Founds:            h.ctr.founds.Value(),
		Fetches:           h.ctr.fetches.Value(),
		IDALost:           h.ctr.idaLost.Value(),
		IDARecoded:        h.ctr.idaRecoded.Value(),
		CacheHits:         h.ctr.cacheHits.Value(),
		CacheServed:       h.ctr.cacheServed.Value(),
		CacheSeeds:        h.ctr.cacheSeeds.Value(),
		CacheInserts:      h.ctr.cacheInserts.Value(),
		CacheEvictions:    h.ctr.cacheEvictions.Value(),
		CacheExpired:      h.ctr.cacheExpired.Value(),
	}
}

// SearchResult records the outcome of one retrieval operation.
type SearchResult struct {
	Searcher simnet.NodeID
	Key      uint64
	Start    int  // round the retrieval was requested
	Found    int  // round the searcher learned a storage-committee roster (-1 if never)
	Done     int  // round the item bytes were reconstructed (-1 if never)
	Success  bool // true if the data was retrieved and verified
	Cached   bool // true if a cached copy resolved the retrieval
	Bytes    int  // length of the retrieved data
}

// nodeState is the per-slot protocol state. It is reset when the slot's
// occupant is churned: the newcomer knows nothing.
type nodeState struct {
	id simnet.NodeID

	// recent is a ring buffer of recent walk-sample sources — the node's
	// window onto the "soup" from which it draws random peers.
	recent    []simnet.NodeID
	recentPos int
	recentLen int

	memberships map[uint64]*membership   // com id -> membership
	stored      map[uint64]*storedCopy   // item key -> local copy/piece
	storageLM   map[uint64]*lmEntry      // item key -> storage landmark state
	searchLM    map[uint64][]*searchTask // item key -> active search tasks
	searches    map[uint64]*searchState  // item key -> retrieval this node runs
	pending     []pendingOp
}

// storedCopy is this node's share of an item: the full bytes in
// replication mode, or one IDA piece.
type storedCopy struct {
	data     []byte
	pieceIdx int // -1 in replication mode
	itemLen  int
}

// lmEntry is a storage-landmark registration: this node can point
// searchers at the item's committee.
type lmEntry struct {
	roster []simnet.NodeID
	expiry int
	wave   int
}

// searchTask makes this node a search landmark for (key, searcher).
type searchTask struct {
	searcher simnet.NodeID
	expiry   int
	wave     int
	trace    uint64 // the search's lifecycle trace id (0 = untraced)
}

// pendingOp is a Store/Retrieve request waiting for enough walk samples to
// pick a committee.
type pendingOp struct {
	mode  Mode
	key   uint64
	data  []byte
	start int
}

// NewHandler builds the protocol handler. The soup must be registered as a
// hook on the same engine. Panics on invalid parameters.
func NewHandler(e *simnet.Engine, soup *walks.Soup, p Params) *Handler {
	p.validate()
	h := &Handler{
		P: p, soup: soup,
		seed:   e.Config().ProtocolSeed,
		states: make([]nodeState, e.N()),
		ctr:    newCounters(e.Telemetry()),
	}
	h.SetCache(p.CacheCapacity, p.CacheTTL, p.CacheSeedRate)
	if p.IDAThreshold > 0 {
		c, err := ida.New(p.IDAThreshold, p.CommitteeSize)
		if err != nil {
			panic("protocol: " + err.Error())
		}
		h.code = c
	}
	e.SetKeyHolder(h.holdsKey)
	return h
}

// holdsKey is the routed-walk holder predicate (simnet.SetKeyHolder):
// whether slot could answer an inquiry for key right now — a live cache
// entry or an unexpired storage-landmark registration, exactly the two
// paths onInquire serves from. It runs in the engine's serial routed
// phase, between handler phases, so the read-only scan over per-slot
// state is race-free; it deliberately never bumps LRU clocks — routing
// observes, never mutates.
func (h *Handler) holdsKey(slot int, key uint64, round int) bool {
	if h.cacheCap > 0 {
		base := slot * h.cacheStride
		for i := base; i < base+h.cacheCap; i++ {
			e := &h.cacheArena[i]
			if e.expiry != 0 && e.key == key && round < int(e.expiry) {
				return true
			}
		}
	}
	ent, ok := h.states[slot].storageLM[key]
	return ok && round < ent.expiry
}

// IDA reports whether erasure-coded storage is active.
func (h *Handler) IDA() bool { return h.code != nil }

// OnJoin implements simnet.Handler: a fresh node knows nothing.
func (h *Handler) OnJoin(e *simnet.Engine, slot int, id simnet.NodeID, round int) {
	st := &h.states[slot]
	*st = nodeState{
		id:          id,
		recent:      make([]simnet.NodeID, h.P.SampleBuffer),
		memberships: make(map[uint64]*membership),
		stored:      make(map[uint64]*storedCopy),
		storageLM:   make(map[uint64]*lmEntry),
		searchLM:    make(map[uint64][]*searchTask),
		searches:    make(map[uint64]*searchState),
	}
	h.cacheClearSlot(slot)
}

// OnLeave implements simnet.Handler.
func (h *Handler) OnLeave(e *simnet.Engine, slot int, id simnet.NodeID, round int) {}

// pushRecent records a walk sample source in the node's ring buffer.
func (st *nodeState) pushRecent(src simnet.NodeID) {
	if len(st.recent) == 0 {
		return
	}
	st.recent[st.recentPos] = src
	st.recentPos = (st.recentPos + 1) % len(st.recent)
	if st.recentLen < len(st.recent) {
		st.recentLen++
	}
}

// recentDistinct appends up to want distinct recent sample sources to dst,
// newest first, excluding the node itself.
func (st *nodeState) recentDistinct(dst []simnet.NodeID, want int) []simnet.NodeID {
	seen := make(map[simnet.NodeID]bool, want*2)
	for i := 0; i < st.recentLen && len(dst) < want; i++ {
		pos := (st.recentPos - 1 - i + len(st.recent)*2) % len(st.recent)
		src := st.recent[pos]
		if src == st.id || seen[src] {
			continue
		}
		seen[src] = true
		dst = append(dst, src)
	}
	return dst
}

// HandleRound implements simnet.Handler. It is the per-node round body:
// absorb walk samples, process inbox, then run the periodic machinery.
func (h *Handler) HandleRound(ctx *simnet.Ctx) {
	st := &h.states[ctx.Slot]
	samples := h.soup.Samples(ctx.Slot)
	for _, s := range samples {
		st.pushRecent(s.Src)
	}

	for i := range ctx.Inbox {
		h.dispatch(ctx, st, &ctx.Inbox[i])
	}

	h.tickPending(ctx, st)
	h.tickMemberships(ctx, st, samples)
	h.tickSearchLandmarks(ctx, st, samples)
	h.tickSearches(ctx, st)
	if ctx.Round%16 == 5 {
		h.sweepExpired(ctx.Round, st)
	}
}

// dispatch routes one message to its protocol sub-handler. Hop counting
// is centralised here: every delivered message belonging to a traced
// operation records exactly one hop event, so per-op hop counts measure
// delivered protocol traffic regardless of which sub-handler consumes it.
func (h *Handler) dispatch(ctx *simnet.Ctx, st *nodeState, m *simnet.Msg) {
	if m.Trace != 0 {
		if tr := ctx.E.Tracer(); tr != nil {
			tr.Emit(ctx.Shard, telemetry.Event{
				Trace: m.Trace, Round: int64(ctx.Round), Kind: telemetry.EvHop,
				Msg: m.Kind, From: uint64(m.From), To: uint64(st.id),
				Item: m.Item, Aux: int64(m.Bits()), Path: m.Hops,
			})
		}
	}
	switch m.Kind {
	case KindCInvite:
		h.onInvite(ctx, st, m)
	case KindCCount:
		h.onCount(ctx, st, m)
	case KindCHandover:
		h.onHandover(ctx, st, m)
	case KindLGrow:
		h.onGrow(ctx, st, m)
	case KindSInquire:
		h.onInquire(ctx, st, m)
	case KindSFound:
		h.onFound(ctx, st, m)
	case KindSFetch:
		h.onFetch(ctx, st, m)
	case KindSData:
		h.onData(ctx, st, m)
	case KindCacheData:
		h.onCached(ctx, st, m)
	case KindCacheSeed:
		h.onSeed(ctx, st, m)
	}
}

// sortedComIDs returns the node's committee ids in ascending order, so
// per-round iteration over the memberships map is deterministic.
func (st *nodeState) sortedComIDs() []uint64 {
	ids := make([]uint64, 0, len(st.memberships))
	for com := range st.memberships {
		ids = append(ids, com)
	}
	slices.Sort(ids)
	return ids
}

// sortedSearchKeys returns the keys of active searches in ascending order.
func (st *nodeState) sortedSearchKeys() []uint64 {
	ids := make([]uint64, 0, len(st.searches))
	for k := range st.searches {
		ids = append(ids, k)
	}
	slices.Sort(ids)
	return ids
}

// sortedLMKeys returns the keys with search-landmark tasks in order.
func (st *nodeState) sortedLMKeys() []uint64 {
	ids := make([]uint64, 0, len(st.searchLM))
	for k := range st.searchLM {
		ids = append(ids, k)
	}
	slices.Sort(ids)
	return ids
}

// sweepExpired drops expired landmark registrations.
func (h *Handler) sweepExpired(round int, st *nodeState) {
	for k, ent := range st.storageLM {
		if round >= ent.expiry {
			delete(st.storageLM, k)
		}
	}
	for k, tasks := range st.searchLM {
		kept := tasks[:0]
		for _, t := range tasks {
			if round < t.expiry {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			delete(st.searchLM, k)
		} else {
			st.searchLM[k] = kept
		}
	}
}

// recordResult appends a finished retrieval outcome (thread-safe).
func (h *Handler) recordResult(r SearchResult) {
	h.mu.Lock()
	h.results = append(h.results, r)
	h.mu.Unlock()
}

// DrainResults returns and clears the accumulated retrieval outcomes.
// Call between rounds only.
func (h *Handler) DrainResults() []SearchResult {
	h.mu.Lock()
	r := h.results
	h.results = nil
	h.mu.Unlock()
	return r
}

// --- Introspection helpers for experiments (call between rounds only) ---

// CommitteeSlots returns the slots whose occupants are currently members
// of committee com.
func (h *Handler) CommitteeSlots(com uint64) []int {
	var out []int
	for s := range h.states {
		if _, ok := h.states[s].memberships[com]; ok {
			out = append(out, s)
		}
	}
	return out
}

// CopyCount returns how many nodes hold a copy (or piece) of the item.
func (h *Handler) CopyCount(key uint64) int {
	c := 0
	for s := range h.states {
		if _, ok := h.states[s].stored[key]; ok {
			c++
		}
	}
	return c
}

// StorageLandmarkCount returns the number of current (unexpired) storage
// landmarks for the item.
func (h *Handler) StorageLandmarkCount(key uint64, round int) int {
	c := 0
	for s := range h.states {
		if ent, ok := h.states[s].storageLM[key]; ok && round < ent.expiry {
			c++
		}
	}
	return c
}

// SearchLandmarkCount returns the number of current search landmarks for
// the item across all searchers.
func (h *Handler) SearchLandmarkCount(key uint64, round int) int {
	c := 0
	for s := range h.states {
		for _, t := range h.states[s].searchLM[key] {
			if round < t.expiry {
				c++
				break
			}
		}
	}
	return c
}

// StorageLandmarkSlots returns the slots currently registered as storage
// landmarks for key.
func (h *Handler) StorageLandmarkSlots(key uint64, round int) []int {
	var out []int
	for s := range h.states {
		if ent, ok := h.states[s].storageLM[key]; ok && round < ent.expiry {
			out = append(out, s)
		}
	}
	return out
}

// PendingSearch reports whether the given slot still has an active search
// for key.
func (h *Handler) PendingSearch(slot int, key uint64) bool {
	_, ok := h.states[slot].searches[key]
	return ok
}
