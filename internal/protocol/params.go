// Package protocol implements the paper's storage-and-search protocol
// stack on top of the simulation engine and the random-walk soup:
//
//   - committees (Algorithm 1): Θ(log n)-node cliques of near-random nodes
//     that re-elect themselves from fresh walk samples every epoch so they
//     survive churn for a long time (Theorem 2);
//   - landmark trees (Algorithm 2): committee-rooted sampling trees that
//     advertise a committee to Θ(√n) near-random nodes (Lemma 8);
//   - persistent storage (Algorithm 3): an item is stored at the members
//     of its committee and advertised by storage landmarks (Theorem 3);
//   - retrieval (Algorithm 4): a searcher builds a search committee and
//     search landmarks; the Ω(√n)×Ω(√n) landmark rendezvous through walk
//     samples finds the item in O(log n) rounds (Theorem 4);
//   - erasure-coded storage (§4.4): committee members hold IDA pieces
//     instead of full copies; the epoch leader reconstructs and
//     re-disperses at every handover.
//
// Every protocol interaction is an id-addressed simnet message, so the
// model's failure semantics (messages to churned-out nodes vanish) apply
// to every step, exactly as in the paper.
package protocol

import (
	"math"
)

// Mode distinguishes a committee's task.
type Mode uint8

// Committee task modes.
const (
	ModeStore Mode = iota + 1
	ModeSearch
)

// Params configures the protocol stack. Zero values are replaced by
// DefaultParams-derived values in NewHandler.
type Params struct {
	// CommitteeSize is the paper's h·log n: members per committee and
	// (in replication mode) copies per item.
	CommitteeSize int
	// Period is the committee maintenance period (the paper's 2τ): a new
	// epoch — count exchange, leader election, handover — runs every
	// Period rounds.
	Period int
	// SampleWindow is how many rounds at the start of an epoch members
	// record walk samples before exchanging counts. The paper records one
	// round (its α is astronomically large); small networks need a few
	// rounds to gather committee-size many samples.
	SampleWindow int
	// FallbackCandidates is the number of ranked leader candidates that
	// may attempt the handover if the primary is churned out mid-epoch
	// (the paper's footnote-†† resilience mechanism).
	FallbackCandidates int
	// FallbackSpacing is the number of rounds a candidate waits for
	// evidence of the previous candidate's handover before acting.
	FallbackSpacing int
	// WaveEvery is the landmark-rebuild period (the paper's "every τ
	// rounds" in Algorithm 2).
	WaveEvery int
	// TreeDepth is µ from Algorithm 2 equation (4): landmark trees grow
	// to this depth with fanout TreeFanout.
	TreeDepth int
	// TreeFanout is the number of children per tree node (2 in the paper).
	TreeFanout int
	// LandmarkTTL is how long a node stays a landmark after its last
	// refresh (the paper's 2τ).
	LandmarkTTL int
	// SearchTTL bounds a retrieval operation: the search committee and
	// the searcher's state dissolve after this many rounds.
	SearchTTL int
	// SampleBuffer is the capacity of each node's ring of recent walk
	// sample sources.
	SampleBuffer int
	// InviteFactor over-provisions committee invitations: a creator or
	// epoch leader invites InviteFactor*CommitteeSize sample sources.
	// Walk samples are T rounds old, so under churn a fraction of the
	// invitees is already gone; over-inviting keeps the realised
	// committee near CommitteeSize. (Still Θ(log n) invitations; the
	// paper's asymptotics hide this constant inside Lemma 7.)
	InviteFactor float64
	// IDA enables erasure-coded storage (§4.4) with the given
	// reconstruction threshold K; the number of pieces L equals
	// CommitteeSize. K = 0 selects plain replication.
	IDAThreshold int
	// CacheCapacity is the number of hot items each node may cache for
	// walk-seeded replication (DESIGN.md §10). 0 disables caching.
	CacheCapacity int
	// CacheTTL is a cached entry's lifetime in rounds; 0 selects
	// 2·LandmarkTTL.
	CacheTTL int
	// CacheSeedRate is the probability that an eligible walk sample
	// receives a seeded replica when a node completes or serves a
	// retrieval; 0 selects 0.5.
	CacheSeedRate float64
}

// DefaultParams derives protocol parameters for network size n from the
// paper's Θ(log n) prescriptions (natural log, as in the paper) with
// simulation-calibrated constants. walkLen is the soup's walk length T
// (the dynamic mixing time τ is proportional to it).
func DefaultParams(n, walkLen int) Params {
	ln := math.Log(float64(n))
	size := int(math.Ceil(2.5 * ln))
	p := Params{
		CommitteeSize:      size,
		Period:             2 * walkLen,
		SampleWindow:       3,
		FallbackCandidates: 3,
		FallbackSpacing:    2,
		WaveEvery:          walkLen,
		TreeDepth:          DefaultTreeDepth(n, size),
		TreeFanout:         2,
		LandmarkTTL:        2 * walkLen,
		SearchTTL:          6 * walkLen,
		SampleBuffer:       4 * size,
		InviteFactor:       1.5,
	}
	if min := p.SampleWindow + 1 + p.FallbackCandidates*p.FallbackSpacing + 3; p.Period < min {
		p.Period = min
	}
	return p
}

// DefaultTreeDepth targets a landmark population of about 2√n total: each
// of the committeeSize trees contributes ≈ 2^depth leaves-and-internals.
// Lemma 8's exact equation (4) is asymptotic — its correction factors
// (1 − 1/log^{(k−1)/2} n) only approach 1 for astronomically large n — so
// simulations use this calibrated form and E6 verifies the resulting
// √n ≤ |M_I| ≤ O(n^{1/2+δ}·log n) band directly.
func DefaultTreeDepth(n, committeeSize int) int {
	if committeeSize < 1 {
		committeeSize = 1
	}
	target := 2 * math.Sqrt(float64(n)) / float64(committeeSize)
	depth := int(math.Ceil(math.Log2(target)))
	if depth < 1 {
		depth = 1
	}
	// Lemma 8's upper bound caps the depth at (1/2+δ)·log₂ n.
	if cap := int(math.Ceil(0.75 * math.Log2(float64(n)))); depth > cap {
		depth = cap
	}
	return depth
}

// PaperTreeDepth evaluates Algorithm 2's equation (4) literally for the
// given n and churn exponent k = 1+δ. It returns (depth, ok); ok is false
// when n is too small for the formula's correction factors (denominator
// non-positive), i.e. outside the asymptotic regime.
func PaperTreeDepth(n int, k float64) (int, bool) {
	ln := math.Log(float64(n))
	a := 1 / math.Pow(ln, (k-1)/2)
	b := 1 / math.Pow(ln, k-1)
	c := 1 / math.Pow(float64(n), 3)
	den := 2 * math.Log2(2*(1-a)*(1-b)*(1-c))
	if den <= 0 {
		return 0, false
	}
	num := math.Log2(float64(n)) - 2*(math.Log2(ln)+math.Ln2)
	if num <= 0 {
		return 0, false
	}
	mu := int(math.Floor(num / den))
	if mu < 1 {
		mu = 1
	}
	return mu, true
}

// validate panics on nonsensical parameter combinations.
func (p Params) validate() {
	switch {
	case p.CommitteeSize < 1:
		panic("protocol: CommitteeSize must be >= 1")
	case p.Period < p.SampleWindow+2:
		panic("protocol: Period too short for the epoch phases")
	case p.TreeFanout < 1:
		panic("protocol: TreeFanout must be >= 1")
	case p.TreeDepth < 0:
		panic("protocol: negative TreeDepth")
	case p.IDAThreshold < 0 || p.IDAThreshold > p.CommitteeSize:
		panic("protocol: IDAThreshold must be in [0, CommitteeSize]")
	case p.InviteFactor < 1:
		panic("protocol: InviteFactor must be >= 1")
	case p.CacheCapacity < 0:
		panic("protocol: negative CacheCapacity")
	case p.CacheTTL < 0:
		panic("protocol: negative CacheTTL")
	case p.CacheSeedRate < 0 || p.CacheSeedRate > 1:
		panic("protocol: CacheSeedRate must be in [0, 1]")
	}
}
