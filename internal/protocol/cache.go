package protocol

import (
	"bytes"

	"dynp2p/internal/rng"
	"dynp2p/internal/simnet"
)

// Hot-key caching (DESIGN.md §10), after "A Random Structure for Optimum
// Cache Size DHT" (Sarshar & Roychowdhury): a node that completes a
// retrieval — or serves one from its cache — keeps the reconstructed
// bytes and pushes replicas to the sources of this round's walk samples,
// gated by a pure hash so placement is worker-count deterministic. A
// cached node answers a search landmark's inquiry with the bytes
// directly (KindCacheData), short-circuiting the roster/fetch/
// reconstruct leg of Algorithm 4; the searcher's own cache
// short-circuits committee formation entirely. Seeding fires on
// completion events and cascades through first-time installs (see
// onSeed) — never on serves — so a key's replica population grows in
// proportion to its completed request volume, which is exactly the
// traffic-proportional random replication the reference paper shows
// yields polylog expected search time. (Seeding on serves was measured
// first: Algorithm 4's inquiry fan-out is Θ(√n·T) messages per search,
// so serve-triggered seeding saturates the whole network off a handful
// of retrievals.)
//
// Entries live in one flat arena of n·capacity slots; slot s owns the
// region [s·cap, (s+1)·cap). OnJoin clears the replaced slot's region,
// so churn invalidation needs no extra machinery: a newcomer inherits
// nothing, exactly like the rest of nodeState. Eviction is LRU by
// last-touched round with index order as the tie-break — both inputs
// are round-derived, never arrival-order-derived, so eviction is
// deterministic too.

// cacheEntry is one cached item. expiry == 0 marks an empty slot; a
// non-empty entry is live while round < expiry and merely expired (data
// intact, revivable by a same-key refresh) afterwards.
type cacheEntry struct {
	key     uint64
	data    []byte
	expiry  int32
	used    int32 // last round the entry was hit, served, or written
	served  int32 // last round the entry answered an inquiry
	aliased int32 // last round e.data was attached to an outgoing Msg
	depth   uint8 // seed-hops from the completing searcher (0 = completer)
}

// cacheMaxDepth caps the seed-hop lineage an entry can record; entries
// at the cap stop re-seeding, bounding any one completion's cascade at
// cacheSeedFanout^cacheMaxDepth installs (a backstop — in practice the
// refresh rule kills chains long before the cap).
const cacheMaxDepth = 16

// cacheSeedFanout is the per-event replica budget: at most this many of
// the round's walk samples receive a seeded copy (each still gated by
// CacheSeedRate). It is also the cascade branching factor, so it sets
// the self-limiting coverage ceiling ≈ 1 − 1/(fanout·rate); measured
// equilibrium sits well below that because synchronized cascade waves
// collide (a node sourcing several walks is seeded by several cascaders
// in the same round, and only the first install propagates).
const cacheSeedFanout = 6

// cacheRegion returns the slot's private window of the arena, sized to
// the current runtime capacity.
func (h *Handler) cacheRegion(slot int) []cacheEntry {
	base := slot * h.cacheStride
	return h.cacheArena[base : base+h.cacheCap]
}

// cacheEnabled reports whether the cache path is active.
func (h *Handler) cacheEnabled() bool { return h.cacheCap > 0 }

// SetCache reconfigures the cache at runtime (call between rounds).
// capacity 0 disables caching (entries are retained and reappear if a
// later call re-enables it); growing the capacity past the high-water
// stride reallocates the arena, preserving every slot's region. ttl 0
// and rate 0 select the same defaults NewHandler applies.
func (h *Handler) SetCache(capacity, ttl int, rate float64) {
	switch {
	case capacity < 0:
		panic("protocol: negative cache capacity")
	case ttl < 0:
		panic("protocol: negative cache TTL")
	case rate < 0 || rate > 1:
		panic("protocol: cache seed rate must be in [0, 1]")
	}
	if ttl == 0 {
		ttl = 2 * h.P.LandmarkTTL
	}
	if rate == 0 {
		rate = defaultCacheSeedRate
	}
	if capacity > h.cacheStride {
		arena := make([]cacheEntry, len(h.states)*capacity)
		for s := range h.states {
			copy(arena[s*capacity:], h.cacheArena[s*h.cacheStride:(s+1)*h.cacheStride])
		}
		h.cacheArena = arena
		h.cacheStride = capacity
	}
	h.cacheCap = capacity
	h.cacheTTL = ttl
	h.cacheRate = rate
}

const defaultCacheSeedRate = 0.5

// cacheClearSlot invalidates a replaced slot's entire region (the
// newcomer knows nothing). Buffers are kept for reuse, and the aliased
// stamp survives so a buffer attached to one of the departed node's
// in-flight replies is never rewritten under the reader.
func (h *Handler) cacheClearSlot(slot int) {
	if h.cacheStride == 0 {
		return
	}
	base := slot * h.cacheStride
	for i := base; i < base+h.cacheStride; i++ {
		e := &h.cacheArena[i]
		e.key, e.expiry, e.used, e.served, e.depth = 0, 0, 0, 0, 0
	}
}

// cacheLookup returns the slot's live entry for key, refreshing its LRU
// stamp, or nil. A TTL-expired match is dropped (counted) so the search
// falls back to the full Algorithm-4 path.
func (h *Handler) cacheLookup(ctx *simnet.Ctx, key uint64) *cacheEntry {
	if !h.cacheEnabled() {
		return nil
	}
	reg := h.cacheRegion(ctx.Slot)
	for i := range reg {
		e := &reg[i]
		if e.expiry == 0 || e.key != key {
			continue
		}
		if int(e.expiry) <= ctx.Round {
			e.expiry = 0
			h.ctr.cacheExpired.Inc(ctx.Shard)
			return nil
		}
		e.used = int32(ctx.Round)
		return e
	}
	return nil
}

// cachePut installs (key, data) in the node's region, evicting the
// least-recently-used entry if no slot is free. A same-key refresh only
// bumps the clocks: item bytes are immutable per key, so the buffer —
// possibly aliased by an in-flight reply — is left untouched. The
// returned flag reports whether the install took a FREE slot (empty or
// TTL-expired): only those cascade further seeds. A refresh does not
// cascade (the territory is already covered), and neither does an
// install that evicted a live entry — under capacity contention an
// evicted key's next seed would register as "new" again, and cascading
// on it turns two keys fighting over full caches into a permanent
// seed storm. Free-slot-only cascades keep seeding self-limiting on
// both axes: coverage (refreshes die out) and capacity (contended
// caches absorb seeds silently).
func (h *Handler) cachePut(ctx *simnet.Ctx, key uint64, data []byte, depth uint8) (*cacheEntry, bool) {
	if !h.cacheEnabled() || len(data) == 0 {
		return nil, false
	}
	round := int32(ctx.Round)
	reg := h.cacheRegion(ctx.Slot)
	victim := &reg[0]
	for i := range reg {
		e := &reg[i]
		if e.expiry != 0 && e.key == key {
			e.expiry = round + int32(h.cacheTTL)
			e.used = round
			if depth < e.depth {
				e.depth = depth
			}
			return e, false
		}
		if cacheRank(e, round) < cacheRank(victim, round) {
			victim = e
		}
	}
	free := victim.expiry == 0 || int(victim.expiry) <= ctx.Round
	if !free {
		h.ctr.cacheEvictions.Inc(ctx.Shard)
	}
	// A buffer attached to a Msg in the current or previous round may
	// still be read by the recipient's concurrently-running handler;
	// rewriting it would race. Those (rare) evictions take a fresh
	// buffer instead.
	if victim.aliased >= round-1 || cap(victim.data) < len(data) {
		victim.data = append([]byte(nil), data...)
		victim.aliased = -1
	} else {
		victim.data = append(victim.data[:0], data...)
	}
	victim.key = key
	victim.expiry = round + int32(h.cacheTTL)
	victim.used = round
	victim.served = 0
	victim.depth = depth
	h.ctr.cacheInserts.Inc(ctx.Shard)
	return victim, free
}

// cacheAdmit is the completer's path: install the verified bytes at
// depth 0 and seed replicas outward (refresh or not — a completion is
// fresh demand, so it always re-seeds).
func (h *Handler) cacheAdmit(ctx *simnet.Ctx, st *nodeState, key uint64, data []byte, trace uint64) {
	if e, _ := h.cachePut(ctx, key, data, 0); e != nil {
		h.cacheSeed(ctx, st, e, trace)
	}
}

// cacheSeed pushes replicas of a cached entry to up to cacheSeedFanout
// of this round's walk-sample sources. Each send is gated by a pure
// hash of (protocol seed, key, slot, round, sample index) against
// CacheSeedRate — deterministic replica placement along near-random
// walk endpoints, the reference paper's replication rule. Entries at
// cacheMaxDepth stop propagating.
func (h *Handler) cacheSeed(ctx *simnet.Ctx, st *nodeState, e *cacheEntry, trace uint64) {
	if h.cacheRate <= 0 || e.depth >= cacheMaxDepth {
		return
	}
	samples := h.soup.Samples(ctx.Slot)
	sent := 0
	for i := 0; i < len(samples) && sent < cacheSeedFanout; i++ {
		s := samples[i]
		if s.Src == st.id {
			continue
		}
		g := rng.Hash(h.seed, e.key, uint64(ctx.Slot), uint64(ctx.Round), uint64(i))
		if rng.Unit(g) >= h.cacheRate {
			continue
		}
		e.aliased = int32(ctx.Round)
		ctx.SendRouted(simnet.Msg{
			To: s.Src, Kind: KindCacheSeed, Item: e.key,
			Aux:   uint64(e.depth) + 1,
			Blob:  e.data,
			Trace: trace,
		})
		h.ctr.cacheSeeds.Inc(ctx.Shard)
		sent++
	}
}

// cacheServe answers an inquiry straight from the cache: the item bytes
// go to the searcher, short-circuiting found/fetch/reconstruct. Serving
// refreshes the entry's LRU stamp (via the lookup) but deliberately does
// not seed — inquiry volume is not request volume; see the package-top
// comment. The completing searcher seeds on receipt instead.
func (h *Handler) cacheServe(ctx *simnet.Ctx, e *cacheEntry, searcher simnet.NodeID, trace uint64) {
	// At most one serve per entry per round: a hot key's landmarks
	// inquire many nodes per round and several inquiries can land here
	// in the same tick; one reply resolves the search just as fast.
	if e.served == int32(ctx.Round) {
		return
	}
	e.served = int32(ctx.Round)
	e.aliased = int32(ctx.Round)
	ctx.SendRouted(simnet.Msg{
		To: searcher, Kind: KindCacheData, Item: e.key,
		Aux:   uint64(e.depth),
		Blob:  e.data,
		Trace: trace,
	})
	h.ctr.cacheServed.Inc(ctx.Shard)
	h.ctr.cacheHitsByHop.Observe(ctx.Shard, int64(e.depth))
}

// serveOwnCacheHit resolves a pending retrieval from the node's own
// cache: no committee, no landmarks — the operation starts and finishes
// in the same tick.
func (h *Handler) serveOwnCacheHit(ctx *simnet.Ctx, st *nodeState, op pendingOp, e *cacheEntry) {
	trace := h.sampleOp(ctx, st, op, false)
	ok := op.data == nil || bytes.Equal(e.data, op.data)
	h.ctr.cacheHits.Inc(ctx.Shard)
	h.ctr.cacheHitsByHop.Observe(ctx.Shard, int64(e.depth))
	srch := &searchState{
		key: op.key, start: op.start,
		found: ctx.Round, want: op.data,
		trace: trace, cached: true,
	}
	h.finishSearch(ctx, st, srch, ctx.Round, ok, len(e.data))
	h.cacheSeed(ctx, st, e, trace)
}

// onCached completes a retrieval with a cache-served reply.
func (h *Handler) onCached(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	srch, ok := st.searches[msg.Item]
	if !ok {
		return
	}
	item := msg.Blob
	ok = srch.want == nil || bytes.Equal(item, srch.want)
	if srch.found < 0 {
		srch.found = ctx.Round
	}
	srch.cached = true
	if ok {
		h.cacheAdmit(ctx, st, msg.Item, item, srch.trace)
	}
	h.ctr.cacheHits.Inc(ctx.Shard)
	h.finishSearch(ctx, st, srch, ctx.Round, ok, len(item))
}

// onSeed installs a walk-seeded replica. The receiver was a near-random
// walk endpoint; it accepts unconditionally (the sender already rolled
// the placement hash) at the sender's depth + 1. An install into a free
// slot cascades onward; a refresh or a live eviction does not (see
// cachePut). That makes the replica population logistic: while a key is
// under-replicated most seeds land in free territory and the chain
// branches at fanout×rate, but as coverage approaches 1 − 1/(fanout×
// rate) — or as caches fill up — chains die out, with the depth cap
// bounding any one chain at fanout^cacheMaxDepth installs. Churn prunes
// replicas for free (the replaced slot's region is cleared), so
// sustained coverage still requires sustained completions —
// demand-proportional replication, never an unbounded epidemic.
func (h *Handler) onSeed(ctx *simnet.Ctx, st *nodeState, msg *simnet.Msg) {
	if !h.cacheEnabled() || msg.Aux > cacheMaxDepth {
		return
	}
	if e, cascade := h.cachePut(ctx, msg.Item, msg.Blob, uint8(msg.Aux)); cascade {
		h.cacheSeed(ctx, st, e, msg.Trace)
	}
}

// CachedAt reports whether slot currently holds a live cached copy of
// key (introspection for tests; call between rounds only).
func (h *Handler) CachedAt(slot int, key uint64, round int) bool {
	if h.cacheStride == 0 {
		return false
	}
	base := slot * h.cacheStride
	for i := base; i < base+min(h.cacheCap, h.cacheStride); i++ {
		e := &h.cacheArena[i]
		if e.expiry != 0 && e.key == key && round < int(e.expiry) {
			return true
		}
	}
	return false
}

// CacheLoad returns the number of live cached entries across all slots
// (introspection for tests and experiments; call between rounds only).
func (h *Handler) CacheLoad(round int) int {
	c := 0
	for s := range h.states {
		base := s * h.cacheStride
		for i := base; i < base+h.cacheCap; i++ {
			e := &h.cacheArena[i]
			if e.expiry != 0 && round < int(e.expiry) {
				c++
			}
		}
	}
	return c
}

// cacheRank orders eviction candidates: empty slots first, then expired
// entries (oldest-used first), then live entries by LRU stamp. The
// strict-less scan keeps the lowest index on ties.
func cacheRank(e *cacheEntry, round int32) int64 {
	switch {
	case e.expiry == 0:
		return -1 << 62
	case e.expiry <= round:
		return -1<<61 + int64(e.used)
	default:
		return int64(e.used)
	}
}
