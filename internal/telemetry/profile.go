package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// maxPhases bounds the number of named phases a profiler tracks; the
// engine's hot loop has a handful (churn, topology, deliver, handlers,
// route) plus one per named hook.
const maxPhases = 16

// ringDepth is how many rounds of per-phase timings the ring buffer
// retains for the text summary's recent-window statistics.
const ringDepth = 256

// PhaseProfiler times the engine round loop phase by phase into a
// preallocated ring buffer. All of its output is wall-clock and therefore
// outside the determinism contract: it registers timing counters
// (excluded from DeterministicSnapshot) and its summaries are only
// schema-pinned by tests, never value-pinned.
//
// Usage: the engine calls Begin at the top of the round, then Lap(phase)
// after each phase completes; EndRound closes the round. Single-writer,
// engine-serial.
type PhaseProfiler struct {
	names  []string
	totals []Counter // dynp2p_phase_<name>_ns_total timing counters
	reg    *Registry

	rounds int64
	cur    [maxPhases]int64 // this round's per-phase ns
	last   time.Time

	ring [ringDepth][maxPhases]int64
	head int
	fill int

	w   *bufio.Writer // JSONL stream, nil when off
	buf []byte
}

// NewPhaseProfiler creates a profiler for the given phase names (at most
// maxPhases; extras are dropped) registering per-phase ns counters on reg.
func NewPhaseProfiler(reg *Registry, names []string) *PhaseProfiler {
	if len(names) > maxPhases {
		names = names[:maxPhases]
	}
	p := &PhaseProfiler{names: append([]string(nil), names...), reg: reg}
	for _, n := range p.names {
		p.totals = append(p.totals, reg.TimingCounter("dynp2p_phase_"+n+"_ns_total", "cumulative wall-clock ns in round phase "+n))
	}
	return p
}

// Names returns the phase names in Lap-index order.
func (p *PhaseProfiler) Names() []string { return p.names }

// StreamTo directs per-round phase timings as JSONL to w (nil stops).
func (p *PhaseProfiler) StreamTo(w io.Writer) {
	if w == nil {
		p.w = nil
		return
	}
	p.w = bufio.NewWriterSize(w, 1<<16)
}

// Flush drains buffered JSONL output.
func (p *PhaseProfiler) Flush() error {
	if p.w == nil {
		return nil
	}
	return p.w.Flush()
}

// Begin starts timing a round.
func (p *PhaseProfiler) Begin() {
	for i := range p.cur[:len(p.names)] {
		p.cur[i] = 0
	}
	p.last = time.Now()
}

// Lap records the time since the previous Lap (or Begin) against phase i.
func (p *PhaseProfiler) Lap(i int) {
	now := time.Now()
	if i >= 0 && i < len(p.names) {
		p.cur[i] += now.Sub(p.last).Nanoseconds()
	}
	p.last = now
}

// EndRound commits the round's timings to the ring, the registry, and the
// JSONL stream. round is the engine round just finished.
func (p *PhaseProfiler) EndRound(round int64) {
	p.rounds++
	copy(p.ring[p.head][:], p.cur[:len(p.names)])
	p.head = (p.head + 1) % ringDepth
	if p.fill < ringDepth {
		p.fill++
	}
	for i := range p.names {
		p.totals[i].Add(0, p.cur[i])
	}
	if p.w != nil {
		b := p.buf[:0]
		b = append(b, `{"round":`...)
		b = strconv.AppendInt(b, round, 10)
		for i, n := range p.names {
			b = append(b, `,"`...)
			b = append(b, n...)
			b = append(b, `_ns":`...)
			b = strconv.AppendInt(b, p.cur[i], 10)
		}
		b = append(b, '}', '\n')
		p.buf = b
		p.w.Write(b)
	}
}

// Summary writes a text table of per-phase timings: cumulative share of
// the run plus mean/p50/p99 over the recent ring window.
func (p *PhaseProfiler) Summary(w io.Writer) {
	fmt.Fprintf(w, "round-phase profile (%d rounds, window %d)\n", p.rounds, p.fill)
	var grand int64
	totals := make([]int64, len(p.names))
	for i := range p.names {
		totals[i] = p.totals[i].Value()
		grand += totals[i]
	}
	if grand == 0 {
		grand = 1
	}
	fmt.Fprintf(w, "  %-14s %10s %7s %12s %12s %12s\n", "phase", "total", "share", "mean/round", "p50", "p99")
	window := make([]int64, 0, ringDepth)
	for i, name := range p.names {
		window = window[:0]
		for r := 0; r < p.fill; r++ {
			window = append(window, p.ring[r][i])
		}
		sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
		var p50, p99 int64
		if n := len(window); n > 0 {
			p50, p99 = window[n/2], window[n*99/100]
		}
		mean := int64(0)
		if p.rounds > 0 {
			mean = totals[i] / p.rounds
		}
		fmt.Fprintf(w, "  %-14s %10s %6.1f%% %12s %12s %12s\n",
			name, fmtNS(totals[i]), 100*float64(totals[i])/float64(grand),
			fmtNS(mean), fmtNS(p50), fmtNS(p99))
	}
	fmt.Fprintf(w, "  %-14s %10s\n", "total", fmtNS(grand))
}

// fmtNS renders nanoseconds with an adaptive unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 10*1e9:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	case ns >= 10*1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 10*1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
