package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: one # TYPE line per metric, plain samples for counters and
// gauges, and cumulative le-labelled _bucket series plus _sum/_count for
// histograms. Log₂ buckets expose le="2^b - 1" upper bounds.
func WritePrometheus(w io.Writer, snap []MetricValue) error {
	bw := bufio.NewWriter(w)
	for _, mv := range snap {
		if mv.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", mv.Name, mv.Help)
		}
		switch mv.Kind {
		case KindHistogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", mv.Name)
			if mv.Hist == nil {
				continue
			}
			var cum int64
			for b := 0; b < HistBuckets; b++ {
				if mv.Hist.Buckets[b] == 0 && b > 0 {
					continue // sparse: only emit occupied buckets (plus le="0")
				}
				cum += mv.Hist.Buckets[b]
				ub := int64(0)
				if b > 0 {
					ub = int64(1)<<b - 1
				}
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", mv.Name, ub, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", mv.Name, mv.Hist.Count)
			fmt.Fprintf(bw, "%s_sum %d\n", mv.Name, mv.Hist.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", mv.Name, mv.Hist.Count)
		case KindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", mv.Name)
			fmt.Fprintf(bw, "%s %d\n", mv.Name, mv.Value)
		default:
			fmt.Fprintf(bw, "# TYPE %s counter\n", mv.Name)
			fmt.Fprintf(bw, "%s %d\n", mv.Name, mv.Value)
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the snapshot as one JSON object per line:
//
//	{"metric":NAME,"kind":KIND,"value":V}                          counter/gauge
//	{"metric":NAME,"kind":"histogram","count":C,"sum":S,
//	 "buckets":[[UPPER,COUNT],...]}                                histogram
//
// with only occupied histogram buckets listed as [upper-bound, count]
// pairs.
func WriteJSONL(w io.Writer, snap []MetricValue) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, mv := range snap {
		buf = buf[:0]
		buf = append(buf, `{"metric":"`...)
		buf = append(buf, mv.Name...)
		buf = append(buf, `","kind":"`...)
		buf = append(buf, mv.Kind.String()...)
		buf = append(buf, '"')
		if mv.Kind == KindHistogram && mv.Hist != nil {
			buf = append(buf, `,"count":`...)
			buf = strconv.AppendInt(buf, mv.Hist.Count, 10)
			buf = append(buf, `,"sum":`...)
			buf = strconv.AppendInt(buf, mv.Hist.Sum, 10)
			buf = append(buf, `,"buckets":[`...)
			first := true
			for b := 0; b < HistBuckets; b++ {
				if mv.Hist.Buckets[b] == 0 {
					continue
				}
				if !first {
					buf = append(buf, ',')
				}
				first = false
				ub := int64(0)
				if b > 0 {
					ub = int64(1)<<b - 1
				}
				buf = append(buf, '[')
				buf = strconv.AppendInt(buf, ub, 10)
				buf = append(buf, ',')
				buf = strconv.AppendInt(buf, mv.Hist.Buckets[b], 10)
				buf = append(buf, ']')
			}
			buf = append(buf, ']')
		} else {
			buf = append(buf, `,"value":`...)
			buf = strconv.AppendInt(buf, mv.Value, 10)
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FprintHistogram renders a compact text distribution for reports: count,
// mean, quantiles, and a power-of-two bucket bar chart.
func FprintHistogram(w io.Writer, label string, hv HistValue) {
	if hv.Count == 0 {
		fmt.Fprintf(w, "  %-26s (no samples)\n", label)
		return
	}
	mean := float64(hv.Sum) / float64(hv.Count)
	fmt.Fprintf(w, "  %-26s n=%d mean=%.1f p50=%d p90=%d p99=%d max≤%d\n",
		label, hv.Count, mean,
		hv.Quantile(0.50), hv.Quantile(0.90), hv.Quantile(0.99), hv.Max())
	var peak int64
	lo, hi := -1, -1
	for b := 0; b < HistBuckets; b++ {
		if hv.Buckets[b] > 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
			if hv.Buckets[b] > peak {
				peak = hv.Buckets[b]
			}
		}
	}
	for b := lo; b <= hi; b++ {
		width := int(hv.Buckets[b] * 40 / peak)
		var span string
		switch b {
		case 0:
			span = "0"
		case 1:
			span = "1"
		default:
			span = fmt.Sprintf("%d-%d", int64(1)<<(b-1), int64(1)<<b-1)
		}
		fmt.Fprintf(w, "    %12s %8d %s\n", span, hv.Buckets[b], strings.Repeat("#", width))
	}
}
