// Package telemetry is the unified observability substrate of the stack:
// a metrics registry every subsystem reports into, per-operation lifecycle
// tracing, and a round-phase profiler — designed to stay ON during
// benchmarked runs.
//
// The registry holds named counters, gauges, and fixed-bucket log₂
// histograms. All storage is preallocated at registration time and sharded
// over the same fixed slot grid the engine and walk soup use
// (internal/shard): a writer updates only its shard's cache-line-padded
// cell block, and values merge across shards on read. Steady-state rounds
// therefore add zero allocations, and — because shard ownership is a pure
// function of the slot, not of the worker that happens to run it — every
// event-counting metric is bit-identical at any worker count.
//
// Determinism contract: metrics registered through Counter/Gauge/Histogram
// are *event* metrics and must be driven only by simulation events, so
// they are reproducible in (seed, config). Metrics registered through the
// Timing variants (and everything the PhaseProfiler reports) are
// wall-clock measurements, excluded from the determinism contract and from
// DeterministicSnapshot. Tests pin the former and only schema-check the
// latter.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"unsafe"

	"dynp2p/internal/shard"
)

// NumShards is the width of the registry's cell grid — the largest shard
// count any engine grid can have (shard.MaxCount), so handler code can
// pass its shard index straight through whatever grid the engine picked.
// Smaller grids simply leave the upper cells untouched.
const NumShards = shard.MaxCount

// HistBuckets is the number of log₂ histogram buckets: bucket b counts
// observations v with bits.Len64(v) == b, i.e. bucket 0 holds v <= 0,
// bucket b >= 1 holds 2^(b-1) <= v < 2^b.
const HistBuckets = 64

// Kind classifies a metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the metric kind's JSON/exposition name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// cacheLineWords is the per-shard block granularity: blocks are padded to
// a multiple of the 64-byte cache line (8 int64 words) and the backing
// array is aligned to it, so two workers writing adjacent shards never
// false-share a line.
const cacheLineWords = 8

type metricDef struct {
	name   string
	kind   Kind
	timing bool // wall-clock: excluded from the determinism contract
	help   string
	off    int // first cell offset within a shard's block
	width  int // cells: 1 (counter/gauge) or HistBuckets+2 (histogram)
}

// Registry is the metrics store. Register everything during setup (a
// single goroutine); Add/Set/Observe are then safe from concurrent
// writers as long as each shard index is driven by at most one goroutine
// at a time — the discipline shard.Run already enforces — and reads
// (Snapshot and friends) happen between rounds.
type Registry struct {
	defs   []metricDef
	byName map[string]int

	cells  []int64 // aligned view: NumShards blocks of stride words
	stride int

	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// alignedCells allocates n int64 cells whose first element sits on a
// 64-byte boundary.
func alignedCells(n int) []int64 {
	raw := make([]int64, n+cacheLineWords-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % 64; rem != 0 {
		off = int((64 - rem) / 8)
	}
	return raw[off : off+n]
}

// register appends a metric definition and grows the cell grid. Offsets
// within a shard's block never change once assigned, so existing handles
// stay valid across re-layout.
func (r *Registry) register(name string, kind Kind, timing bool, help string, width int) int {
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	off := 0
	if len(r.defs) > 0 {
		last := r.defs[len(r.defs)-1]
		off = last.off + last.width
	}
	r.byName[name] = len(r.defs)
	r.defs = append(r.defs, metricDef{name: name, kind: kind, timing: timing, help: help, off: off, width: width})

	need := off + width
	stride := (need + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	if stride > r.stride {
		grown := alignedCells(NumShards * stride)
		for sh := 0; sh < NumShards; sh++ {
			copy(grown[sh*stride:], r.cells[sh*r.stride:(sh+1)*r.stride])
		}
		r.cells, r.stride = grown, stride
	}
	return len(r.defs) - 1
}

// Counter registers (or returns the existing) named event counter.
func (r *Registry) Counter(name, help string) Counter {
	if i, ok := r.byName[name]; ok {
		return Counter{r: r, off: r.defs[i].off}
	}
	i := r.register(name, KindCounter, false, help, 1)
	return Counter{r: r, off: r.defs[i].off}
}

// TimingCounter registers a counter of wall-clock quantities (e.g.
// accumulated nanoseconds), excluded from the determinism contract.
func (r *Registry) TimingCounter(name, help string) Counter {
	if i, ok := r.byName[name]; ok {
		return Counter{r: r, off: r.defs[i].off}
	}
	i := r.register(name, KindCounter, true, help, 1)
	return Counter{r: r, off: r.defs[i].off}
}

// Gauge registers (or returns the existing) named gauge. Gauges are
// last-write-wins and single-writer: Set writes shard 0 only, from serial
// (between-round) contexts.
func (r *Registry) Gauge(name, help string) Gauge {
	if i, ok := r.byName[name]; ok {
		return Gauge{r: r, off: r.defs[i].off}
	}
	i := r.register(name, KindGauge, false, help, 1)
	return Gauge{r: r, off: r.defs[i].off}
}

// Histogram registers (or returns the existing) named log₂ histogram.
func (r *Registry) Histogram(name, help string) Histogram {
	if i, ok := r.byName[name]; ok {
		return Histogram{r: r, off: r.defs[i].off}
	}
	i := r.register(name, KindHistogram, false, help, HistBuckets+2)
	return Histogram{r: r, off: r.defs[i].off}
}

// Counter is a handle to a registered counter. The zero value is inert:
// Add on it panics, so instruments default to a registry-backed handle.
type Counter struct {
	r   *Registry
	off int
}

// Add adds v to the counter's cell in shard sh. Shard indices come from
// the caller's shard.Run context; serial callers use shard 0.
func (c Counter) Add(sh int, v int64) { c.r.cells[sh*c.r.stride+c.off] += v }

// Inc adds 1 in shard sh.
func (c Counter) Inc(sh int) { c.Add(sh, 1) }

// Value merges the counter across shards.
func (c Counter) Value() int64 {
	var t int64
	for sh := 0; sh < NumShards; sh++ {
		t += c.r.cells[sh*c.r.stride+c.off]
	}
	return t
}

// Gauge is a handle to a registered gauge.
type Gauge struct {
	r   *Registry
	off int
}

// Set stores v (single-writer, serial contexts).
func (g Gauge) Set(v int64) { g.r.cells[g.off] = v }

// SetMax raises the gauge to v if larger.
func (g Gauge) SetMax(v int64) {
	if v > g.r.cells[g.off] {
		g.r.cells[g.off] = v
	}
}

// Value reads the gauge.
func (g Gauge) Value() int64 { return g.r.cells[g.off] }

// Histogram is a handle to a registered log₂ histogram. Layout within a
// shard block: HistBuckets bucket cells, then a count cell and a sum cell.
type Histogram struct {
	r   *Registry
	off int
}

// bucketOf maps an observation to its log₂ bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records v in shard sh.
func (h Histogram) Observe(sh int, v int64) {
	base := sh*h.r.stride + h.off
	h.r.cells[base+bucketOf(v)]++
	h.r.cells[base+HistBuckets]++
	h.r.cells[base+HistBuckets+1] += v
}

// HistValue is a merged histogram snapshot.
type HistValue struct {
	Buckets [HistBuckets]int64
	Count   int64
	Sum     int64
}

// Value merges the histogram across shards.
func (h Histogram) Value() HistValue {
	var out HistValue
	for sh := 0; sh < NumShards; sh++ {
		base := sh*h.r.stride + h.off
		for b := 0; b < HistBuckets; b++ {
			out.Buckets[b] += h.r.cells[base+b]
		}
		out.Count += h.r.cells[base+HistBuckets]
		out.Sum += h.r.cells[base+HistBuckets+1]
	}
	return out
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) of the
// observations: the geometric midpoint of the bucket holding the target
// rank (exact for bucket-0 and bucket-1 values). Returns 0 on an empty
// histogram.
func (v HistValue) Quantile(q float64) int64 {
	if v.Count == 0 {
		return 0
	}
	rank := int64(q * float64(v.Count))
	if rank >= v.Count {
		rank = v.Count - 1
	}
	var seen int64
	for b := 0; b < HistBuckets; b++ {
		seen += v.Buckets[b]
		if seen > rank {
			switch b {
			case 0:
				return 0
			case 1:
				return 1
			default:
				lo := int64(1) << (b - 1) // bucket spans [2^(b-1), 2^b)
				return lo + lo/2
			}
		}
	}
	return 0
}

// Max returns the upper bound of the highest occupied bucket (the largest
// observation rounded up to the next power of two), or 0 when empty.
func (v HistValue) Max() int64 {
	for b := HistBuckets - 1; b >= 0; b-- {
		if v.Buckets[b] > 0 {
			if b == 0 {
				return 0
			}
			return int64(1)<<b - 1
		}
	}
	return 0
}

// Collector contributes externally-owned metrics to snapshots: subsystems
// that already keep their own deterministic counters (the walk soup, the
// overlay) bridge them into the registry by registering a collector
// instead of rewiring their accumulation. Emit may be called once per
// metric; values must be merged/final. Collectors run on every snapshot,
// from the snapshotting goroutine (between rounds).
type Collector func(emit func(name string, kind Kind, v int64))

// RegisterCollector adds a snapshot collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.collectors = append(r.collectors, c)
}

// MetricValue is one metric in a snapshot.
type MetricValue struct {
	Name   string
	Kind   Kind
	Timing bool
	Help   string
	Value  int64      // counter/gauge
	Hist   *HistValue // histogram
}

// Snapshot returns every metric — registered and collector-contributed —
// merged across shards and sorted by name. Call between rounds.
func (r *Registry) Snapshot() []MetricValue {
	out := make([]MetricValue, 0, len(r.defs)+8)
	for _, d := range r.defs {
		mv := MetricValue{Name: d.name, Kind: d.kind, Timing: d.timing, Help: d.help}
		switch d.kind {
		case KindHistogram:
			h := Histogram{r: r, off: d.off}.Value()
			mv.Hist = &h
		case KindGauge:
			mv.Value = Gauge{r: r, off: d.off}.Value()
		default:
			mv.Value = Counter{r: r, off: d.off}.Value()
		}
		out = append(out, mv)
	}
	for _, c := range r.collectors {
		c(func(name string, kind Kind, v int64) {
			out = append(out, MetricValue{Name: name, Kind: kind, Value: v})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeterministicSnapshot returns the snapshot restricted to event metrics
// (timing metrics excluded): the part of the registry that must be
// bit-identical across worker counts for one (seed, config).
func (r *Registry) DeterministicSnapshot() []MetricValue {
	all := r.Snapshot()
	out := all[:0]
	for _, mv := range all {
		if !mv.Timing {
			out = append(out, mv)
		}
	}
	return out
}

// CounterValue returns a registered counter's merged value (0 when the
// name is unknown), a convenience for delta-tracking readers.
func (r *Registry) CounterValue(name string) int64 {
	i, ok := r.byName[name]
	if !ok {
		return 0
	}
	return Counter{r: r, off: r.defs[i].off}.Value()
}

// HistogramValue returns a registered histogram's merged snapshot (zero
// when the name is unknown or not a histogram).
func (r *Registry) HistogramValue(name string) HistValue {
	i, ok := r.byName[name]
	if !ok || r.defs[i].kind != KindHistogram {
		return HistValue{}
	}
	return Histogram{r: r, off: r.defs[i].off}.Value()
}
