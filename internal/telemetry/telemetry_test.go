package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterShardMerge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "")
	for sh := 0; sh < NumShards; sh++ {
		c.Add(sh, int64(sh))
	}
	want := int64(NumShards * (NumShards - 1) / 2)
	if got := c.Value(); got != want {
		t.Fatalf("merged counter = %d, want %d", got, want)
	}
	if got := reg.CounterValue("x_total"); got != want {
		t.Fatalf("CounterValue = %d, want %d", got, want)
	}
	if got := reg.CounterValue("missing"); got != 0 {
		t.Fatalf("CounterValue(missing) = %d, want 0", got)
	}
}

func TestHandlesSurviveRelayout(t *testing.T) {
	// Registering more metrics grows the cell grid; earlier handles must
	// keep reading/writing the same logical cells.
	reg := NewRegistry()
	a := reg.Counter("a_total", "")
	a.Add(3, 7)
	h := reg.Histogram("h", "")
	h.Observe(5, 100)
	for i := 0; i < 20; i++ {
		reg.Counter("pad_"+string(rune('a'+i))+"_total", "")
	}
	g := reg.Gauge("g", "")
	g.Set(42)
	if a.Value() != 7 {
		t.Fatalf("counter lost across re-layout: %d", a.Value())
	}
	hv := h.Value()
	if hv.Count != 1 || hv.Sum != 100 {
		t.Fatalf("histogram lost across re-layout: %+v", hv)
	}
	if g.Value() != 42 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestDuplicateRegistrationReturnsSameHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "")
	b := reg.Counter("dup_total", "")
	a.Add(0, 1)
	b.Add(1, 2)
	if a.Value() != 3 || b.Value() != 3 {
		t.Fatalf("duplicate registration split the counter: %d/%d", a.Value(), b.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(int(v)%NumShards, v)
	}
	hv := h.Value()
	if hv.Count != 1000 || hv.Sum != 500500 {
		t.Fatalf("count/sum = %d/%d", hv.Count, hv.Sum)
	}
	// v=1 lands in bucket 1; 512..1000 in bucket 10 (489 values).
	if hv.Buckets[1] != 1 || hv.Buckets[10] != 489 {
		t.Fatalf("buckets: %v", hv.Buckets[:12])
	}
	p50 := hv.Quantile(0.5)
	if p50 < 256 || p50 > 1023 {
		t.Fatalf("p50 = %d, want within log2 bucket of 500", p50)
	}
	if hv.Max() != 1023 {
		t.Fatalf("max = %d, want 1023", hv.Max())
	}
	if (HistValue{}).Quantile(0.5) != 0 || (HistValue{}).Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestObserveZeroAndNegative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("z", "")
	h.Observe(0, 0)
	h.Observe(0, -5)
	hv := h.Value()
	if hv.Buckets[0] != 2 || hv.Count != 2 {
		t.Fatalf("zero/negative bucketing: %+v", hv.Buckets[:2])
	}
}

func TestCellAlignment(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "")
	reg.Counter("b_total", "")
	if reg.stride%cacheLineWords != 0 {
		t.Fatalf("stride %d not cache-line padded", reg.stride)
	}
	if len(reg.cells) != NumShards*reg.stride {
		t.Fatalf("cells %d != %d shards * stride %d", len(reg.cells), NumShards, reg.stride)
	}
}

func TestSnapshotSortedAndCollector(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "").Add(0, 1)
	reg.Counter("aa_total", "").Add(0, 2)
	reg.RegisterCollector(func(emit func(string, Kind, int64)) {
		emit("mm_bridged_total", KindCounter, 9)
	})
	snap := reg.Snapshot()
	var names []string
	for _, mv := range snap {
		names = append(names, mv.Name)
	}
	want := []string{"aa_total", "mm_bridged_total", "zz_total"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
}

func TestDeterministicSnapshotExcludesTiming(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ev_total", "")
	reg.TimingCounter("wall_ns_total", "")
	for _, mv := range reg.DeterministicSnapshot() {
		if mv.Timing {
			t.Fatalf("timing metric %s leaked into deterministic snapshot", mv.Name)
		}
	}
	if len(reg.DeterministicSnapshot()) != 1 {
		t.Fatal("expected exactly the event counter")
	}
}

func TestTracerLifecycle(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 1)
	id := tr.Sampled(77, 5)
	if id == 0 {
		t.Fatal("sampleEvery=1 must trace all ops")
	}
	if tr.Sampled(77, 5) != id {
		t.Fatal("sampling not deterministic")
	}
	tr.Emit(3, Event{Trace: id, Round: 10, Kind: EvOpStart, From: 5, Item: 77})
	tr.EndRound(10)
	tr.Emit(7, Event{Trace: id, Round: 11, Kind: EvHop, From: 5, To: 9})
	tr.Emit(2, Event{Trace: id, Round: 12, Kind: EvHop, From: 9, To: 4})
	tr.EndRound(12)
	tr.Emit(1, Event{Trace: id, Round: 14, Kind: EvOpDone, OK: true})
	tr.EndRound(14)

	if got := reg.CounterValue("dynp2p_trace_ops_total"); got != 1 {
		t.Fatalf("ops traced = %d", got)
	}
	if got := reg.CounterValue("dynp2p_trace_ops_done_total"); got != 1 {
		t.Fatalf("ops done = %d", got)
	}
	hops := reg.HistogramValue("dynp2p_search_hops")
	if hops.Count != 1 || hops.Sum != 2 {
		t.Fatalf("hop histogram: %+v", hops)
	}
	rounds := reg.HistogramValue("dynp2p_search_rounds_to_resolve")
	if rounds.Count != 1 || rounds.Sum != 4 {
		t.Fatalf("rounds histogram: count=%d sum=%d", rounds.Count, rounds.Sum)
	}
	if tr.LiveTraces() != 0 {
		t.Fatalf("live traces = %d after done", tr.LiveTraces())
	}
}

func TestTracerStoreVsSearch(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 1)
	id := tr.Sampled(1, 2)
	// OK on a start event flags the op as a store.
	tr.Emit(0, Event{Trace: id, Round: 1, Kind: EvOpStart, OK: true})
	tr.Emit(0, Event{Trace: id, Round: 3, Kind: EvOpDone, OK: true})
	tr.EndRound(3)
	if reg.HistogramValue("dynp2p_store_rounds_to_settle").Count != 1 {
		t.Fatal("store op not recorded in store histogram")
	}
	if reg.HistogramValue("dynp2p_search_rounds_to_resolve").Count != 0 {
		t.Fatal("store op leaked into search histogram")
	}
}

func TestTracerSamplingRate(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 9, 8)
	sampled := 0
	for k := uint64(0); k < 4096; k++ {
		if tr.Sampled(k, k%100) != 0 {
			sampled++
		}
	}
	if sampled < 4096/16 || sampled > 4096/4 {
		t.Fatalf("sampleEvery=8 sampled %d/4096", sampled)
	}
	var off *Tracer
	if off.Sampled(1, 1) != 0 {
		t.Fatal("nil tracer must not sample")
	}
	if NewTracer(NewRegistry(), 1, 0).Sampled(1, 1) != 0 {
		t.Fatal("sampleEvery=0 must disable sampling")
	}
}

func TestTracerExpiry(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 1)
	tr.expireAfter = 10
	id := tr.Sampled(3, 4)
	tr.Emit(0, Event{Trace: id, Round: 0, Kind: EvOpStart})
	tr.EndRound(0)
	tr.EndRound(64) // expiry sweep rounds are multiples of 64
	if tr.LiveTraces() != 0 {
		t.Fatal("idle trace not expired")
	}
	if reg.CounterValue("dynp2p_trace_ops_expired_total") != 1 {
		t.Fatal("expiry not counted")
	}
}

func TestTracerJSONLStream(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 1)
	var buf bytes.Buffer
	tr.StreamTo(&buf)
	id := tr.Sampled(42, 7)
	tr.Emit(0, Event{Trace: id, Round: 5, Kind: EvOpStart, From: 7, Item: 42})
	tr.Emit(0, Event{Trace: id, Round: 6, Kind: EvHop, Msg: 0x10, From: 7, To: 3})
	tr.Emit(0, Event{Trace: id, Round: 9, Kind: EvOpDone, Aux: 4, OK: true})
	tr.EndRound(9)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines: %q", len(lines), buf.String())
	}
	for _, want := range []string{`"ev":"start"`, `"ev":"hop"`, `"ev":"done"`, `"msg":16`, `"rounds":4`, `"ok":true`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("stream missing %s:\n%s", want, buf.String())
		}
	}
}

func TestProfilerSummaryAndStream(t *testing.T) {
	reg := NewRegistry()
	p := NewPhaseProfiler(reg, []string{"churn", "route"})
	var stream bytes.Buffer
	p.StreamTo(&stream)
	for r := int64(0); r < 3; r++ {
		p.Begin()
		p.Lap(0)
		p.Lap(1)
		p.EndRound(r)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(stream.String(), "\n"); n != 3 {
		t.Fatalf("phase stream lines = %d", n)
	}
	if !strings.Contains(stream.String(), `"churn_ns":`) {
		t.Fatalf("stream missing phase field: %s", stream.String())
	}
	var sum bytes.Buffer
	p.Summary(&sum)
	for _, want := range []string{"round-phase profile (3 rounds", "churn", "route", "total"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
	// Phase counters are timing metrics: must be absent deterministically.
	for _, mv := range reg.DeterministicSnapshot() {
		if strings.HasPrefix(mv.Name, "dynp2p_phase_") {
			t.Fatalf("phase timing %s in deterministic snapshot", mv.Name)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dynp2p_x_total", "things").Add(0, 5)
	reg.Gauge("dynp2p_g", "").Set(-2)
	h := reg.Histogram("dynp2p_h", "")
	h.Observe(0, 3)
	h.Observe(0, 300)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dynp2p_x_total counter", "dynp2p_x_total 5",
		"# HELP dynp2p_x_total things",
		"# TYPE dynp2p_g gauge", "dynp2p_g -2",
		"# TYPE dynp2p_h histogram",
		`dynp2p_h_bucket{le="3"} 1`,   // 3 is in bucket 2, cumulative 1
		`dynp2p_h_bucket{le="511"} 2`, // 300 in bucket 9
		`dynp2p_h_bucket{le="+Inf"} 2`,
		"dynp2p_h_sum 303", "dynp2p_h_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONLFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(0, 7)
	h := reg.Histogram("h", "")
	h.Observe(0, 10)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`{"metric":"c_total","kind":"counter","value":7}`,
		`{"metric":"h","kind":"histogram","count":1,"sum":10,"buckets":[[15,1]]}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSONL missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(i&63, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_h", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(i&63, int64(i))
	}
}
