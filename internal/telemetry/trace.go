package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"dynp2p/internal/rng"
)

// EventKind classifies one trace event in an operation's lifecycle.
type EventKind uint8

const (
	// EvOpStart marks the round an operation (store or search) was issued.
	EvOpStart EventKind = iota
	// EvHop marks one traced protocol message delivered to a node: the
	// unit of the hop-count distribution.
	EvHop
	// EvOpDone marks resolution; Aux carries rounds-to-resolve and OK
	// records success.
	EvOpDone
	// EvDrop marks one traced protocol message discarded by the overlay
	// router (budget exhausted, queue full, queued at a churned slot, or
	// dead target); Aux carries the route.DropReason code. The operation
	// itself stays open — protocols retry or fail on their own clock.
	EvDrop
)

// String returns the event kind's JSONL name.
func (k EventKind) String() string {
	switch k {
	case EvOpStart:
		return "start"
	case EvHop:
		return "hop"
	case EvOpDone:
		return "done"
	case EvDrop:
		return "drop"
	}
	return "unknown"
}

// Event is one record in an operation trace. From/To are node IDs (not
// slots) so traces survive churn-driven slot reuse.
type Event struct {
	Trace uint64
	Round int64
	Kind  EventKind
	Msg   uint8 // protocol message kind for hop events (0 otherwise)
	From  uint64
	To    uint64
	Item  uint64
	Aux   int64 // done: rounds-to-resolve; hop: payload bits; drop: reason
	Path  int32 // hop: true overlay path length (0 when oracle-delivered)
	OK    bool  // done: whether the operation succeeded
}

// traceEventBuf is a per-shard event staging buffer, padded so adjacent
// shards' headers don't share a cache line while workers append.
type traceEventBuf struct {
	ev []Event
	_  [40]byte
}

// traceAgg accumulates per-trace state between an op's start and done.
type traceAgg struct {
	start    int64
	lastSeen int64
	hops     int64
	path     int64 // accumulated true overlay path length across hops
	isStore  bool
}

// Tracer samples operation lifecycles deterministically and aggregates
// their events into hop-count and rounds-to-resolve histograms. The
// sampling decision — and therefore every event metric derived from it —
// is a pure hash of (seed, key, issuer), independent of worker count and
// of wall-clock time.
//
// Writers call Sampled at op issue; if it returns a nonzero trace ID they
// stamp it on outgoing protocol messages, and every subsystem that sees a
// stamped message calls Emit from its shard. EndRound (engine-serial)
// merges the per-shard buffers in fixed shard order, updates the
// histograms, and optionally streams JSONL.
type Tracer struct {
	seed        uint64
	sampleEvery uint64

	bufs [NumShards]traceEventBuf

	live map[uint64]*traceAgg
	free []*traceAgg // recycled aggs: steady state allocates none

	// round-merged event scratch, reused across rounds
	merged []Event

	searchHops   Histogram
	searchRounds Histogram
	searchPath   Histogram
	storeHops    Histogram
	storeRounds  Histogram
	storePath    Histogram
	opsTraced    Counter
	opsDone      Counter
	opsFailed    Counter
	hopEvents    Counter
	dropEvents   Counter
	opsExpired   Counter

	w   *bufio.Writer // nil when not streaming
	buf []byte        // JSONL line scratch, reused

	// expireAfter bounds live-trace lifetime: a trace idle this many
	// rounds is dropped (counted in opsExpired) so lost ops can't leak.
	expireAfter int64
}

// NewTracer returns a tracer registering its histograms/counters on reg.
// sampleEvery picks roughly 1/sampleEvery of operations (1 = trace all,
// 0 disables sampling entirely).
func NewTracer(reg *Registry, seed uint64, sampleEvery int) *Tracer {
	t := &Tracer{
		seed:        seed,
		sampleEvery: uint64(sampleEvery),
		live:        make(map[uint64]*traceAgg),
		expireAfter: 4096,

		searchHops:   reg.Histogram("dynp2p_search_hops", "delivered protocol messages per traced search"),
		searchRounds: reg.Histogram("dynp2p_search_rounds_to_resolve", "rounds from search issue to resolution"),
		searchPath:   reg.Histogram("dynp2p_search_path_hops", "true overlay path length accumulated per traced search"),
		storeHops:    reg.Histogram("dynp2p_store_hops", "delivered protocol messages per traced store"),
		storeRounds:  reg.Histogram("dynp2p_store_rounds_to_settle", "rounds from store issue to committee settlement"),
		storePath:    reg.Histogram("dynp2p_store_path_hops", "true overlay path length accumulated per traced store"),
		opsTraced:    reg.Counter("dynp2p_trace_ops_total", "operations selected for tracing"),
		opsDone:      reg.Counter("dynp2p_trace_ops_done_total", "traced operations resolved"),
		opsFailed:    reg.Counter("dynp2p_trace_ops_failed_total", "traced operations resolved unsuccessfully"),
		hopEvents:    reg.Counter("dynp2p_trace_hop_events_total", "hop events recorded across traced operations"),
		dropEvents:   reg.Counter("dynp2p_trace_drop_events_total", "routed-message drop events recorded across traced operations"),
		opsExpired:   reg.Counter("dynp2p_trace_ops_expired_total", "traced operations dropped after going idle"),
	}
	for i := range t.bufs {
		t.bufs[i].ev = make([]Event, 0, 64)
	}
	return t
}

// StreamTo directs per-event JSONL output to w (nil stops streaming).
// Lines are written during EndRound; callers flush by calling Flush.
func (t *Tracer) StreamTo(w io.Writer) {
	if w == nil {
		t.w = nil
		return
	}
	t.w = bufio.NewWriterSize(w, 1<<16)
}

// Flush drains any buffered JSONL output.
func (t *Tracer) Flush() error {
	if t.w == nil {
		return nil
	}
	return t.w.Flush()
}

// Sampled decides whether the operation identified by (key, issuer) is
// traced. Returns the operation's trace ID (nonzero) when sampled, else
// 0. The decision is a pure function of (tracer seed, key, issuer): the
// same op is sampled identically at any worker count.
func (t *Tracer) Sampled(key, issuer uint64) uint64 {
	if t == nil || t.sampleEvery == 0 {
		return 0
	}
	h := rng.Hash(t.seed, key, issuer)
	if h%t.sampleEvery != 0 {
		return 0
	}
	return h | 1 // trace IDs are nonzero by construction
}

// Emit stages ev in shard sh's buffer. Callers must hold the shard (i.e.
// be the goroutine shard.Run assigned it to), or be serial.
func (t *Tracer) Emit(sh int, ev Event) {
	b := &t.bufs[sh]
	b.ev = append(b.ev, ev)
}

// EndRound merges the round's staged events in fixed shard order, updates
// aggregates and histograms, expires idle traces, and streams JSONL if
// configured. Must run serially between rounds. round is the engine round
// the events belong to.
func (t *Tracer) EndRound(round int64) {
	t.merged = t.merged[:0]
	for sh := 0; sh < NumShards; sh++ {
		b := &t.bufs[sh]
		t.merged = append(t.merged, b.ev...)
		b.ev = b.ev[:0]
	}
	// Shard order is canonical but within-round event order across shards
	// depends only on (shard, staging order), both worker-independent.
	// Two passes: starts and hops first, dones second, so hops delivered
	// in an op's final round are counted no matter which shard staged the
	// done event. JSONL order follows the same discipline.
	for i := range t.merged {
		ev := &t.merged[i]
		switch ev.Kind {
		case EvOpStart:
			agg := t.getAgg()
			agg.start = ev.Round
			agg.lastSeen = ev.Round
			agg.hops = 0
			agg.path = 0
			agg.isStore = ev.OK // start events carry isStore in OK
			t.live[ev.Trace] = agg
			t.opsTraced.Inc(0)
		case EvHop:
			// Traced ops' stamps outlive them (committee maintenance keeps
			// carrying the ID); only hops of still-open ops count or stream.
			agg, ok := t.live[ev.Trace]
			if !ok {
				continue
			}
			t.hopEvents.Inc(0)
			agg.hops++
			agg.path += int64(ev.Path)
			agg.lastSeen = ev.Round
		case EvDrop:
			agg, ok := t.live[ev.Trace]
			if !ok {
				continue
			}
			t.dropEvents.Inc(0)
			agg.lastSeen = ev.Round
		default:
			continue
		}
		if t.w != nil {
			t.writeJSON(ev)
		}
	}
	for i := range t.merged {
		ev := &t.merged[i]
		if ev.Kind != EvOpDone {
			continue
		}
		if agg, ok := t.live[ev.Trace]; ok {
			rounds := ev.Round - agg.start
			if ev.Aux > 0 {
				rounds = ev.Aux
			}
			if agg.isStore {
				t.storeHops.Observe(0, agg.hops)
				t.storeRounds.Observe(0, rounds)
				t.storePath.Observe(0, agg.path)
			} else {
				t.searchHops.Observe(0, agg.hops)
				t.searchRounds.Observe(0, rounds)
				t.searchPath.Observe(0, agg.path)
			}
			t.opsDone.Inc(0)
			if !ev.OK {
				t.opsFailed.Inc(0)
			}
			delete(t.live, ev.Trace)
			t.putAgg(agg)
			if t.w != nil {
				t.writeJSON(ev)
			}
		}
	}
	// Expire idle traces so a lost op can't pin an agg forever. The map
	// iteration order is irrelevant: expiry only deletes entries and adds
	// to one counter.
	if round%64 == 0 {
		for id, agg := range t.live {
			if round-agg.lastSeen > t.expireAfter {
				delete(t.live, id)
				t.putAgg(agg)
				t.opsExpired.Inc(0)
			}
		}
	}
}

// LiveTraces returns the number of operations currently being traced.
func (t *Tracer) LiveTraces() int { return len(t.live) }

func (t *Tracer) getAgg() *traceAgg {
	if n := len(t.free); n > 0 {
		a := t.free[n-1]
		t.free = t.free[:n-1]
		return a
	}
	return &traceAgg{}
}

func (t *Tracer) putAgg(a *traceAgg) { t.free = append(t.free, a) }

// writeJSON appends one trace event as a JSONL line. Hand-rolled to keep
// the hot path free of encoding/json reflection and allocation.
func (t *Tracer) writeJSON(ev *Event) {
	b := t.buf[:0]
	b = append(b, `{"trace":"`...)
	b = strconv.AppendUint(b, ev.Trace, 16)
	b = append(b, `","round":`...)
	b = strconv.AppendInt(b, ev.Round, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Kind == EvHop || ev.Kind == EvDrop {
		b = append(b, `,"msg":`...)
		b = strconv.AppendUint(b, uint64(ev.Msg), 10)
	}
	if ev.Kind == EvHop && ev.Path > 0 {
		b = append(b, `,"path":`...)
		b = strconv.AppendInt(b, int64(ev.Path), 10)
	}
	if ev.Kind == EvDrop {
		b = append(b, `,"reason":`...)
		b = strconv.AppendInt(b, ev.Aux, 10)
	}
	b = append(b, `,"from":`...)
	b = strconv.AppendUint(b, ev.From, 10)
	b = append(b, `,"to":`...)
	b = strconv.AppendUint(b, ev.To, 10)
	if ev.Item != 0 {
		b = append(b, `,"item":`...)
		b = strconv.AppendUint(b, ev.Item, 10)
	}
	if ev.Kind == EvOpDone {
		b = append(b, `,"rounds":`...)
		b = strconv.AppendInt(b, ev.Aux, 10)
		b = append(b, `,"ok":`...)
		b = strconv.AppendBool(b, ev.OK)
	}
	b = append(b, '}', '\n')
	t.buf = b
	t.w.Write(b)
}

// SortEventsForTest orders events by (round, trace, kind, from, to) — a
// stable cross-run order for golden tests that don't want to depend on
// shard interleaving.
func SortEventsForTest(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}
