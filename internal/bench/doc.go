// Package bench holds the round-loop micro-benchmarks that track the
// simulation engine's performance trajectory across PRs:
//
//   - BenchmarkRouteOnly  — handler fan-out + message routing, no soup;
//   - BenchmarkSoupOnly   — walk-soup token exchange + topology re-randomise;
//   - BenchmarkFullRound  — the complete dynp2p stack under churn.
//
// Each runs at n ∈ {4096, 65536}, and SoupOnly additionally at n=262144
// (-short drops everything above the 4096 reference size). The
// scripts/bench.sh wrapper parses the output into BENCH_roundloop.json
// (ns/round, allocs/round, token-moves/s) and enforces the committed
// steady-state allocation budget; see DESIGN.md §6 for how to read it.
package bench
