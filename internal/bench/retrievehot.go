package bench

import (
	"testing"

	"dynp2p"
	"dynp2p/internal/rng"
)

// RetrieveHot is the skewed-retrieval benchmark body: an n-node network
// under the paper's churn law serving a Zipf(s=1.1) retrieval stream
// over 16 stored keys, two arrivals per round. One iteration is one
// simulated round. Run with cached=false it is the committed baseline
// for the hot-key cache; with cached=true the same workload runs with
// per-node caches on, so the ns/op and rounds/retrieval deltas are the
// cache's measured win (and the alloc column its steady-state cost).
func RetrieveHot(b *testing.B, n int, cached bool) {
	cfg := dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 1}
	if cached {
		cfg.Cache = dynp2p.CacheConfig{Capacity: 4, SeedRate: 1}
	}
	nw := dynp2p.New(cfg)
	nw.Run(nw.WarmupRounds())
	const keys = 16
	items := make([][]byte, keys)
	for k := 0; k < keys; k++ {
		items[k] = make([]byte, 128)
		rng.New(uint64(100 + k)).Fill(items[k])
		nw.Store((k*997)%n, uint64(100+k), items[k])
	}
	nw.Run(nw.Tunables().Protocol.Period)

	// One active search per (node, key): issue arrivals like the
	// scenario runner does, skipping busy pairs. Results clear their
	// marks; searchers churned out mid-search never report, so the map
	// is reset when stale marks pile up.
	type reqKey struct {
		id  dynp2p.NodeID
		key uint64
	}
	zipf := rng.NewZipf(keys, 1.1)
	wr := rng.New(7)
	busy := make(map[reqKey]bool)
	done, roundsSum := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2; j++ {
			k := zipf.Next(wr)
			slot := wr.Intn(n)
			rk := reqKey{id: nw.IDAt(slot), key: uint64(100 + k)}
			if busy[rk] {
				continue
			}
			busy[rk] = true
			nw.Retrieve(slot, rk.key, items[k])
		}
		nw.Run(1)
		for _, r := range nw.Results() {
			delete(busy, reqKey{id: r.Searcher, key: r.Key})
			if r.Success {
				done++
				roundsSum += r.Done - r.Start
			}
		}
		if len(busy) > 256 {
			busy = make(map[reqKey]bool)
		}
	}
	b.StopTimer()
	if done > 0 {
		b.ReportMetric(float64(roundsSum)/float64(done), "rounds/retrieval")
		b.ReportMetric(float64(done)/float64(b.N), "retrievals/round")
	}
}
