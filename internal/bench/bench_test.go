package bench

import (
	"fmt"
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/overlay"
	"dynp2p/internal/simnet"
	"dynp2p/internal/walks"
)

// sizes returns the network sizes the round-loop benchmarks run at.
func sizes() []int {
	if testing.Short() {
		return []int{4096}
	}
	return []int{4096, 65536}
}

// fanoutHandler sends a fixed number of messages per node per round to
// pseudo-random live targets, exercising the handler fan-out and routing
// paths without any protocol logic on top.
type fanoutHandler struct{ fanout int }

func (fanoutHandler) OnJoin(*simnet.Engine, int, simnet.NodeID, int)  {}
func (fanoutHandler) OnLeave(*simnet.Engine, int, simnet.NodeID, int) {}
func (h fanoutHandler) HandleRound(ctx *simnet.Ctx) {
	n := ctx.E.N()
	for i := 0; i < h.fanout; i++ {
		ctx.Send(ctx.E.IDAt(ctx.Rand.Intn(n)), 1, 0, 0, nil)
	}
}

// BenchmarkRouteOnly measures one engine round whose only work is message
// fan-out and routing: static topology, no churn, no soup, 4 messages per
// node per round. In steady state this path must be allocation-free.
func BenchmarkRouteOnly(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Static,
				AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
			})
			h := fanoutHandler{fanout: 4}
			// Warm to steady state so inbox/shard buffers reach capacity
			// (inbox sizes are random maxima; give them time to peak).
			e.Run(h, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunRound(h)
			}
			b.ReportMetric(float64(4*n), "msgs/round")
		})
	}
}

// soupSizes returns the sizes BenchmarkSoupOnly runs at. The soup is the
// round loop's dominant cost and the reason the n >= 2^20 scenario sizes
// are in reach, so it alone also runs at n=262144 (~85M in-flight tokens,
// a few GB of store+staging) when -short is not set — the scale point
// that shows whether token-moves/s holds as the working set leaves cache.
func soupSizes() []int {
	if testing.Short() {
		return []int{4096}
	}
	return []int{4096, 65536, 262144}
}

// BenchmarkSoupOnly measures one engine round whose only work is the
// random-walk soup plus per-round topology re-randomisation: the token
// scatter/gather exchange at the paper's default walk density.
func BenchmarkSoupOnly(b *testing.B) {
	for _, n := range soupSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Rerandomize,
				AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
			})
			soup := walks.NewSoup(e, walks.DefaultParams(n), 0)
			e.AddHook(soup)
			// Warm until the in-flight token population is steady (one walk
			// lifetime plus slack) so bucket and exchange buffers stop
			// growing.
			e.Run(simnet.NopHandler{}, walks.DefaultParams(n).WalkLength+16)
			startMoves := soup.Metrics().Moves
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunRound(simnet.NopHandler{})
			}
			b.StopTimer()
			moves := soup.Metrics().Moves - startMoves
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(moves)/s, "token-moves/s")
			}
		})
	}
}

// BenchmarkSoupOnlyEager is BenchmarkSoupOnly pinned to the eager
// staged-exchange store (walks.StoreEager) instead of the default lazy
// trajectory evaluator: the differential row that keeps the PR 3 fast
// path measured now that StoreAuto resolves uncapped soups to StoreLazy.
// It skips the n=262144 scale point — the eager double-buffered staging
// needs ~3 GB there, which is the point of the lazy store.
func BenchmarkSoupOnlyEager(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Rerandomize,
				AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
			})
			p := walks.DefaultParams(n)
			p.Store = walks.StoreEager
			soup := walks.NewSoup(e, p, 0)
			e.AddHook(soup)
			e.Run(simnet.NopHandler{}, p.WalkLength+16)
			startMoves := soup.Metrics().Moves
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunRound(simnet.NopHandler{})
			}
			b.StopTimer()
			moves := soup.Metrics().Moves - startMoves
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(moves)/s, "token-moves/s")
			}
		})
	}
}

// BenchmarkOverlayRepair measures one engine round of soup plus
// self-healing topology repair under the paper's churn law (C=1,
// δ=0.5): the walk exchange, severing every churned slot's edges, and
// healing the dangling ports through sampled splices. The marginal
// repair cost over SoupOnly is the overlay's budget; like the other
// steady-state engine paths it must stay (near-)allocation-free, which
// the n=4096 row gates in scripts/bench.sh.
func BenchmarkOverlayRepair(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.SelfHealing,
				AdversarySeed: 1, ProtocolSeed: 2, Law: churn.PaperLaw(1, 0.5),
			})
			p := walks.DefaultParams(n)
			soup := walks.NewSoup(e, p, 0)
			e.AddHook(soup)
			ov := overlay.New(e, soup, overlay.Config{})
			e.AddHook(ov)
			e.Run(simnet.NopHandler{}, p.WalkLength+16)
			start := ov.Metrics()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunRound(simnet.NopHandler{})
			}
			b.StopTimer()
			m := ov.Metrics()
			repairs := m.Splices + m.DirectPairs - start.Splices - start.DirectPairs
			b.ReportMetric(float64(repairs)/float64(b.N), "repairs/round")
		})
	}
}

// neighborFanout sends a fixed number of messages per node per round to
// pseudo-random overlay neighbors, either id-addressed through the oracle
// or hop-by-hop through the router. Targeting neighbors keeps routed
// paths short (one forward), so the row isolates the router's per-message
// machinery — header setup, port draw, arena delivery — rather than walk
// length.
type neighborFanout struct {
	fanout int
	routed bool
}

func (neighborFanout) OnJoin(*simnet.Engine, int, simnet.NodeID, int)  {}
func (neighborFanout) OnLeave(*simnet.Engine, int, simnet.NodeID, int) {}
func (h neighborFanout) HandleRound(ctx *simnet.Ctx) {
	nb := ctx.E.Graph().Neighbors(ctx.Slot)
	if len(nb) == 0 {
		return
	}
	for i := 0; i < h.fanout; i++ {
		to := ctx.E.IDAt(int(nb[ctx.Rand.Intn(len(nb))]))
		if h.routed {
			ctx.SendRouted(simnet.Msg{To: to, Kind: 1})
		} else {
			ctx.Send(to, 1, 0, 0, nil)
		}
	}
}

// BenchmarkRoutedRound measures one engine round of neighbor fan-out with
// the overlay router on (mode=routed) against the id-addressed oracle
// fast path (mode=oracle): the per-message cost of hopping the expander
// instead of teleporting. Static topology, no churn, 4 messages per node
// per round; in steady state the routed path must stay allocation-free,
// which the n=4096 row gates in scripts/bench.sh.
func BenchmarkRoutedRound(b *testing.B) {
	for _, n := range sizes() {
		for _, routed := range []bool{true, false} {
			label := "oracle"
			cfg := simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Static,
				AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
			}
			if routed {
				label = "routed"
				cfg.Routing = simnet.RoutingConfig{Mode: simnet.RoutingOverlay, WalkBudget: 64}
			}
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, label), func(b *testing.B) {
				e := simnet.New(cfg)
				h := neighborFanout{fanout: 4, routed: routed}
				e.Run(h, 64)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.RunRound(h)
				}
				b.ReportMetric(float64(4*n), "msgs/round")
			})
		}
	}
}

// BenchmarkFullRound measures one round of the complete stack — engine,
// soup, committees/landmarks/storage protocol — under the paper's churn
// law. The body is FullRound, shared with the root-level
// BenchmarkMicroSimRound.
func BenchmarkFullRound(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { FullRound(b, n) })
	}
}

// matrixSizes returns the sizes BenchmarkRoundMatrix runs at: the
// acceptance size and the paper-scale 2^20 point the delta-encoded walk
// ring and adaptive shard grid exist for. The 2^20 row is minutes of
// warmup, so -short drops to the reference size.
func matrixSizes() []int {
	if testing.Short() {
		return []int{4096}
	}
	return []int{65536, 1 << 20}
}

// BenchmarkRoundMatrix is the multi-core scaling matrix: the canonical
// FullRound body, run by scripts/bench.sh under -cpu 1,2,4 so every row
// appears at GOMAXPROCS ∈ {1,2,4}. GOMAXPROCS here governs both the
// engine's default worker count and the adaptive shard-grid pick, so the
// matrix exercises the full parallel configuration space, not just the
// scheduler. Kept separate from BenchmarkFullRound so the committed
// single-core trajectory rows stay name-compatible with the baselines.
func BenchmarkRoundMatrix(b *testing.B) {
	for _, n := range matrixSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { FullRound(b, n) })
	}
}

// BenchmarkRetrieveHot measures rounds of a Zipf-skewed retrieval
// workload with the hot-key cache off (the committed baseline) and on.
// The body is RetrieveHot; scripts/bench.sh emits both rows so the
// cache's latency win and steady-state cost stay visible in the
// committed trajectory.
func BenchmarkRetrieveHot(b *testing.B) {
	for _, n := range sizes() {
		for _, c := range []bool{false, true} {
			label := "off"
			if c {
				label = "on"
			}
			b.Run(fmt.Sprintf("n=%d/cache=%s", n, label), func(b *testing.B) { RetrieveHot(b, n, c) })
		}
	}
}

// BenchmarkFullRoundTelemetry is BenchmarkFullRound with full tracing
// (sample rate 1) and the round-phase profiler enabled: the telemetry-tax
// row. scripts/bench.sh gates its deltas against the FullRound row — at
// most TELEMETRY_MAX_NS_PCT slower and TELEMETRY_MAX_ALLOC_DELTA extra
// allocations per round.
func BenchmarkFullRoundTelemetry(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { FullRoundTelemetry(b, n) })
	}
}
