package bench

import (
	"testing"

	"dynp2p"
)

// FullRound is the canonical full-stack round benchmark body: one simulated
// round of an n-node network — engine, soup, committees/landmarks/storage —
// under the paper's churn law, with one item stored. It is the single
// source of truth for the "full round" number: BenchmarkFullRound here and
// the root-level BenchmarkMicroSimRound both run it, so the committed
// BENCH_roundloop.json trajectory and the experiment-suite benchmark can
// never drift onto different workloads.
func FullRound(b *testing.B, n int) { fullRound(b, n, false) }

// FullRoundTelemetry is FullRound with the whole observability stack hot:
// every operation traced (sample rate 1) and the round-phase profiler
// running. The differential against FullRound is the telemetry tax, gated
// in scripts/bench.sh: it must cost at most a few percent of round time
// and add zero steady-state allocations.
func FullRoundTelemetry(b *testing.B, n int) { fullRound(b, n, true) }

func fullRound(b *testing.B, n int, observed bool) {
	cfg := dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 1}
	if observed {
		cfg.TraceSampleEvery = 1
		cfg.Profile = true
	}
	nw := dynp2p.New(cfg)
	nw.Run(nw.WarmupRounds())
	nw.Store(0, 1, make([]byte, 64))
	nw.Run(4)
	startMoves := nw.Stats().Soup.Moves
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Run(1)
	}
	b.StopTimer()
	moves := nw.Stats().Soup.Moves - startMoves
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(moves)/s, "token-moves/s")
	}
	b.ReportMetric(float64(nw.Stats().Soup.Moves)/float64(nw.Round()), "token-moves/round")
}
