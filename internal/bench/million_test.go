package bench

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/overlay"
	"dynp2p/internal/simnet"
	"dynp2p/internal/walks"
)

// TestMillionNodeSmoke constructs the paper-scale n=2^20 soup +
// self-healing stack under paper churn and runs three rounds: a fast
// structural check that construction (expander build, adaptive shard
// grid, delta-ring allocation) and the first churn/repair rounds work at
// the size the 200-round EXPERIMENTS.md run certifies. It runs under
// -short by design — it is the scale leg of the CI -short matrix — and
// costs tens of seconds, dominated by the first rounds' walk generation.
func TestMillionNodeSmoke(t *testing.T) {
	const n = 1 << 20
	e := simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.SelfHealing,
		AdversarySeed: 1, ProtocolSeed: 2, Law: churn.PaperLaw(1, 0.5),
	})
	p := walks.DefaultParams(n)
	soup := walks.NewSoup(e, p, 0)
	e.AddHook(soup)
	ov := overlay.New(e, soup, overlay.Config{})
	e.AddHook(ov)
	e.Run(simnet.NopHandler{}, 3)
	if got := soup.Metrics().Generated; got < 3*int64(n)*int64(p.WalksPerRound)/2 {
		t.Fatalf("soup generated %d walks in 3 rounds, want >= 1.5*n*WalksPerRound", got)
	}
	if m := ov.Metrics(); m.PortsSevered == 0 || m.Splices+m.DirectPairs == 0 {
		t.Fatalf("overlay idle at 2^20 under paper churn: %+v", m)
	}
	if err := e.Graph().CheckRegular(); err != nil {
		t.Fatal(err)
	}
}
