// Package expander maintains the dynamic expander topology of the model:
// in every round the live slots must form a d-regular non-bipartite
// expander (paper §2.1), while the adversary is free to change edges
// arbitrarily between rounds.
//
// The package offers several edge dynamics, all driven by the adversary's
// seed (so they are part of the oblivious pre-commitment):
//
//   - Rerandomize: a fresh permutation-model d-regular graph every round —
//     the most dynamic topology the model allows;
//   - Periodic(p): re-randomise every p rounds, static in between;
//   - Static: one random expander for the whole execution (only node
//     occupants change) — the gentlest topology;
//   - RingPlusRandom: a deterministic odd cycle plus random perfect
//     matchings, guaranteeing non-bipartiteness without laziness.
//   - SelfHealing: the oracle builds only the round-0 graph and then
//     never touches an edge again — the live nodes themselves maintain
//     the expander by local, sample-driven repair (internal/overlay).
//     Step is a no-op in this mode; the repair runs as a round hook.
//
// Random d-regular permutation-model graphs are non-bipartite and expanding
// w.h.p.; because a vanishing-probability bipartite draw would break the
// walk analysis, consumers can additionally run lazy random walks (see
// internal/walks), the standard remedy which the paper's regularity
// assumption tolerates (laziness is equivalent to adding d self-loops).
package expander

import (
	"fmt"
	"strings"

	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
)

// EdgeMode selects how the topology evolves between rounds.
type EdgeMode int

// Edge dynamics modes.
const (
	Rerandomize EdgeMode = iota
	Static
	Periodic
	RingPlusRandom
	// SelfHealing disables the oracle after round 0: the topology only
	// changes through the peer-maintained repair of internal/overlay.
	SelfHealing
)

// Modes returns every valid edge mode, in declaration order. Tests and
// CLIs enumerate it so a newly added mode cannot be missed.
func Modes() []EdgeMode {
	return []EdgeMode{Rerandomize, Static, Periodic, RingPlusRandom, SelfHealing}
}

func (m EdgeMode) String() string {
	switch m {
	case Rerandomize:
		return "rerandomize"
	case Static:
		return "static"
	case Periodic:
		return "periodic"
	case RingPlusRandom:
		return "ring+random"
	case SelfHealing:
		return "self-healing"
	default:
		return fmt.Sprintf("edgemode(%d)", int(m))
	}
}

// ParseEdgeMode is the inverse of String: it resolves a mode name
// (case-insensitive, with the obvious punctuation-free aliases) to its
// EdgeMode. JSON scenario specs and CLI flags select topologies with it.
func ParseEdgeMode(s string) (EdgeMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rerandomize":
		return Rerandomize, nil
	case "static":
		return Static, nil
	case "periodic":
		return Periodic, nil
	case "ring+random", "ringplusrandom", "ring-random":
		return RingPlusRandom, nil
	case "self-healing", "selfhealing":
		return SelfHealing, nil
	default:
		return 0, fmt.Errorf("expander: unknown edge mode %q (want one of %v)", s, Modes())
	}
}

// Config parameterises a dynamic expander.
type Config struct {
	N      int      // stable network size (slots)
	Degree int      // regular degree d (even)
	Mode   EdgeMode // edge dynamics
	Period int      // for Periodic: rounds between re-randomisations (>= 1)
}

// Dynamic is the evolving topology. It is deterministic in (Config, seed).
type Dynamic struct {
	cfg Config
	g   *graph.Graph
	r   *rng.Stream
}

// New creates the round-0 topology.
func New(cfg Config, seed uint64) *Dynamic {
	if cfg.N <= 2 {
		panic("expander: need at least 3 slots")
	}
	if cfg.Degree < 2 || cfg.Degree%2 != 0 {
		panic("expander: degree must be even and >= 2")
	}
	if cfg.Mode == Periodic && cfg.Period < 1 {
		panic("expander: Periodic mode needs Period >= 1")
	}
	d := &Dynamic{
		cfg: cfg,
		g:   graph.New(cfg.N, cfg.Degree),
		r:   rng.Derive(seed, 0xed6e),
	}
	d.fill()
	return d
}

func (d *Dynamic) fill() {
	if d.cfg.Mode == RingPlusRandom {
		d.g.FillRingPlusRandom(d.r)
	} else {
		d.g.FillRandomRegular(d.r)
	}
}

// Graph returns the current topology. The graph is owned by Dynamic; it is
// valid until the next Step call.
func (d *Dynamic) Graph() *graph.Graph { return d.g }

// Config returns the configuration.
func (d *Dynamic) Config() Config { return d.cfg }

// Step advances the topology to the given round (call once per round,
// with strictly increasing round numbers starting at 1).
func (d *Dynamic) Step(round int) {
	switch d.cfg.Mode {
	case Rerandomize, RingPlusRandom:
		d.fill()
	case Periodic:
		if round%d.cfg.Period == 0 {
			d.g.FillRandomRegular(d.r)
		}
	case Static, SelfHealing:
		// The oracle never touches edges again. Under SelfHealing the
		// graph still evolves — through overlay repair, not here.
	default:
		panic("expander: unknown edge mode")
	}
}

// SetMode switches the edge dynamics mid-run (scenario phases compare
// oracle-maintained and self-maintained topologies inside one timeline).
// The current graph is kept as-is: an oracle mode resumes rewriting it on
// its own schedule from the next Step, and SelfHealing freezes it for the
// overlay to take over. The oracle's RNG stream is shared across modes,
// so a run with mode switches remains deterministic in the seed.
func (d *Dynamic) SetMode(mode EdgeMode, period int) {
	if period >= 1 {
		d.cfg.Period = period
	}
	if mode == Periodic && d.cfg.Period < 1 {
		panic("expander: Periodic mode needs Period >= 1")
	}
	d.cfg.Mode = mode
}
