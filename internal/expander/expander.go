// Package expander maintains the dynamic expander topology of the model:
// in every round the live slots must form a d-regular non-bipartite
// expander (paper §2.1), while the adversary is free to change edges
// arbitrarily between rounds.
//
// The package offers several edge dynamics, all driven by the adversary's
// seed (so they are part of the oblivious pre-commitment):
//
//   - Rerandomize: a fresh permutation-model d-regular graph every round —
//     the most dynamic topology the model allows;
//   - Periodic(p): re-randomise every p rounds, static in between;
//   - Static: one random expander for the whole execution (only node
//     occupants change) — the gentlest topology;
//   - RingPlusRandom: a deterministic odd cycle plus random perfect
//     matchings, guaranteeing non-bipartiteness without laziness.
//
// Random d-regular permutation-model graphs are non-bipartite and expanding
// w.h.p.; because a vanishing-probability bipartite draw would break the
// walk analysis, consumers can additionally run lazy random walks (see
// internal/walks), the standard remedy which the paper's regularity
// assumption tolerates (laziness is equivalent to adding d self-loops).
package expander

import (
	"fmt"

	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
)

// EdgeMode selects how the topology evolves between rounds.
type EdgeMode int

// Edge dynamics modes.
const (
	Rerandomize EdgeMode = iota
	Static
	Periodic
	RingPlusRandom
)

func (m EdgeMode) String() string {
	switch m {
	case Rerandomize:
		return "rerandomize"
	case Static:
		return "static"
	case Periodic:
		return "periodic"
	case RingPlusRandom:
		return "ring+random"
	default:
		return fmt.Sprintf("edgemode(%d)", int(m))
	}
}

// Config parameterises a dynamic expander.
type Config struct {
	N      int      // stable network size (slots)
	Degree int      // regular degree d (even)
	Mode   EdgeMode // edge dynamics
	Period int      // for Periodic: rounds between re-randomisations (>= 1)
}

// Dynamic is the evolving topology. It is deterministic in (Config, seed).
type Dynamic struct {
	cfg Config
	g   *graph.Graph
	r   *rng.Stream
}

// New creates the round-0 topology.
func New(cfg Config, seed uint64) *Dynamic {
	if cfg.N <= 2 {
		panic("expander: need at least 3 slots")
	}
	if cfg.Degree < 2 || cfg.Degree%2 != 0 {
		panic("expander: degree must be even and >= 2")
	}
	if cfg.Mode == Periodic && cfg.Period < 1 {
		panic("expander: Periodic mode needs Period >= 1")
	}
	d := &Dynamic{
		cfg: cfg,
		g:   graph.New(cfg.N, cfg.Degree),
		r:   rng.Derive(seed, 0xed6e),
	}
	d.fill()
	return d
}

func (d *Dynamic) fill() {
	if d.cfg.Mode == RingPlusRandom {
		d.g.FillRingPlusRandom(d.r)
	} else {
		d.g.FillRandomRegular(d.r)
	}
}

// Graph returns the current topology. The graph is owned by Dynamic; it is
// valid until the next Step call.
func (d *Dynamic) Graph() *graph.Graph { return d.g }

// Config returns the configuration.
func (d *Dynamic) Config() Config { return d.cfg }

// Step advances the topology to the given round (call once per round,
// with strictly increasing round numbers starting at 1).
func (d *Dynamic) Step(round int) {
	switch d.cfg.Mode {
	case Rerandomize, RingPlusRandom:
		d.fill()
	case Periodic:
		if round%d.cfg.Period == 0 {
			d.g.FillRandomRegular(d.r)
		}
	case Static:
		// Edges never change.
	default:
		panic("expander: unknown edge mode")
	}
}
