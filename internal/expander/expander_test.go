package expander

import (
	"testing"

	"dynp2p/internal/rng"
)

func TestEveryRoundIsRegular(t *testing.T) {
	for _, mode := range []EdgeMode{Rerandomize, Static, Periodic, RingPlusRandom} {
		cfg := Config{N: 200, Degree: 8, Mode: mode, Period: 3}
		d := New(cfg, 11)
		for round := 1; round <= 20; round++ {
			d.Step(round)
			if err := d.Graph().CheckRegular(); err != nil {
				t.Fatalf("%v round %d: %v", mode, round, err)
			}
		}
	}
}

func TestStaticNeverChanges(t *testing.T) {
	d := New(Config{N: 100, Degree: 6, Mode: Static}, 3)
	snapshot := append([]int32(nil), d.Graph().Neighbors(0)...)
	for round := 1; round <= 10; round++ {
		d.Step(round)
		for i, w := range d.Graph().Neighbors(0) {
			if snapshot[i] != w {
				t.Fatal("static topology changed")
			}
		}
	}
}

func TestRerandomizeChanges(t *testing.T) {
	d := New(Config{N: 300, Degree: 6, Mode: Rerandomize}, 4)
	before := append([]int32(nil), d.Graph().Neighbors(0)...)
	d.Step(1)
	same := true
	for i, w := range d.Graph().Neighbors(0) {
		if before[i] != w {
			same = false
		}
	}
	if same {
		t.Fatal("rerandomize did not change topology (astronomically unlikely)")
	}
}

func TestPeriodicChangesOnlyOnPeriod(t *testing.T) {
	d := New(Config{N: 300, Degree: 6, Mode: Periodic, Period: 5}, 5)
	snap := func() []int32 { return append([]int32(nil), d.Graph().Neighbors(1)...) }
	before := snap()
	for round := 1; round <= 4; round++ {
		d.Step(round)
		after := snap()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("periodic topology changed at round %d (period 5)", round)
			}
		}
	}
	d.Step(5)
	after := snap()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("periodic topology did not change at the period boundary")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{N: 150, Degree: 4, Mode: Rerandomize}, 9)
	b := New(Config{N: 150, Degree: 4, Mode: Rerandomize}, 9)
	for round := 1; round <= 5; round++ {
		a.Step(round)
		b.Step(round)
		for v := 0; v < 150; v++ {
			na, nb := a.Graph().Neighbors(v), b.Graph().Neighbors(v)
			for i := range na {
				if na[i] != nb[i] {
					t.Fatal("same seed produced different topologies")
				}
			}
		}
	}
}

func TestExpansionMaintained(t *testing.T) {
	d := New(Config{N: 1024, Degree: 8, Mode: Rerandomize}, 13)
	probe := rng.New(1)
	for round := 1; round <= 5; round++ {
		d.Step(round)
		lambda := d.Graph().SpectralGapEstimate(probe, 40)
		if lambda > 0.9 {
			t.Fatalf("round %d: lambda estimate %v — not an expander", round, lambda)
		}
		if !d.Graph().IsConnected() {
			t.Fatalf("round %d: topology disconnected", round)
		}
	}
}

func TestRingPlusRandomNonBipartite(t *testing.T) {
	d := New(Config{N: 201, Degree: 6, Mode: RingPlusRandom}, 17)
	for round := 1; round <= 5; round++ {
		d.Step(round)
		if d.Graph().IsBipartite() {
			t.Fatalf("round %d: ring+random topology is bipartite", round)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("tiny n", func() { New(Config{N: 2, Degree: 2, Mode: Static}, 1) })
	mustPanic("odd degree", func() { New(Config{N: 10, Degree: 3, Mode: Static}, 1) })
	mustPanic("bad period", func() { New(Config{N: 10, Degree: 2, Mode: Periodic}, 1) })
}

func TestModeStrings(t *testing.T) {
	for _, m := range append(Modes(), EdgeMode(42)) {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

// TestParseEdgeModeRoundTrip is the exhaustive String ⇄ ParseEdgeMode
// round trip over every mode Modes() declares: a newly added mode that
// misses either direction fails here.
func TestParseEdgeModeRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Modes() {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mode string %q", s)
		}
		seen[s] = true
		got, err := ParseEdgeMode(s)
		if err != nil {
			t.Fatalf("ParseEdgeMode(%q): %v", s, err)
		}
		if got != m {
			t.Fatalf("ParseEdgeMode(%q) = %v, want %v", s, got, m)
		}
	}
	if m, err := ParseEdgeMode("  Self-Healing "); err != nil || m != SelfHealing {
		t.Fatalf("case/space-insensitive parse failed: %v, %v", m, err)
	}
	if _, err := ParseEdgeMode("mesh"); err == nil {
		t.Fatal("unknown mode did not error")
	}
	if _, err := ParseEdgeMode(EdgeMode(42).String()); err == nil {
		t.Fatal("invalid-mode String() should not parse back")
	}
}

// TestPeriodicStepBoundaries pins the Periodic schedule at its edges:
// nothing changes on the first round of a period, the change lands
// exactly on the period round, and the round after a change is quiet
// again (the "post-churn" round a fresh occupant first steps through).
// Period=1 degenerates to Rerandomize.
func TestPeriodicStepBoundaries(t *testing.T) {
	d := New(Config{N: 300, Degree: 6, Mode: Periodic, Period: 4}, 21)
	snap := func() []int32 { return append([]int32(nil), d.Graph().Neighbors(2)...) }
	same := func(a, b []int32) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	prev := snap()
	for round := 1; round <= 12; round++ {
		d.Step(round)
		cur := snap()
		if onBoundary := round%4 == 0; onBoundary == same(prev, cur) {
			t.Fatalf("round %d (period 4): boundary=%v but changed=%v", round, onBoundary, !same(prev, cur))
		}
		prev = cur
	}

	every := New(Config{N: 300, Degree: 6, Mode: Periodic, Period: 1}, 22)
	prev = append([]int32(nil), every.Graph().Neighbors(2)...)
	for round := 1; round <= 3; round++ {
		every.Step(round)
		cur := append([]int32(nil), every.Graph().Neighbors(2)...)
		if same(prev, cur) {
			t.Fatalf("period 1 round %d: topology did not change", round)
		}
		prev = cur
	}
}

// TestSelfHealingStepIsInert: under SelfHealing the oracle must never
// touch an edge after round 0 — the overlay owns them.
func TestSelfHealingStepIsInert(t *testing.T) {
	d := New(Config{N: 100, Degree: 6, Mode: SelfHealing}, 23)
	snapshot := append([]int32(nil), d.Graph().Neighbors(0)...)
	for round := 1; round <= 10; round++ {
		d.Step(round)
		for i, w := range d.Graph().Neighbors(0) {
			if snapshot[i] != w {
				t.Fatal("oracle rewired an edge in self-healing mode")
			}
		}
	}
	if err := d.Graph().CheckRegular(); err != nil {
		t.Fatal(err)
	}
}

// TestSetModeSwitches: a Dynamic switched from Static to Rerandomize
// resumes rewiring, and back to SelfHealing freezes again.
func TestSetModeSwitches(t *testing.T) {
	d := New(Config{N: 200, Degree: 6, Mode: Static}, 24)
	snap := func() []int32 { return append([]int32(nil), d.Graph().Neighbors(0)...) }
	before := snap()
	d.Step(1)
	after := snap()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("static mode rewired")
		}
	}
	d.SetMode(Rerandomize, 0)
	d.Step(2)
	changed := false
	for i, w := range snap() {
		if before[i] != w {
			changed = true
		}
	}
	if !changed {
		t.Fatal("rerandomize after SetMode did not rewire")
	}
	frozen := snap()
	d.SetMode(SelfHealing, 0)
	d.Step(3)
	for i, w := range snap() {
		if frozen[i] != w {
			t.Fatal("self-healing mode rewired")
		}
	}
}
