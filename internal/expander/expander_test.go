package expander

import (
	"testing"

	"dynp2p/internal/rng"
)

func TestEveryRoundIsRegular(t *testing.T) {
	for _, mode := range []EdgeMode{Rerandomize, Static, Periodic, RingPlusRandom} {
		cfg := Config{N: 200, Degree: 8, Mode: mode, Period: 3}
		d := New(cfg, 11)
		for round := 1; round <= 20; round++ {
			d.Step(round)
			if err := d.Graph().CheckRegular(); err != nil {
				t.Fatalf("%v round %d: %v", mode, round, err)
			}
		}
	}
}

func TestStaticNeverChanges(t *testing.T) {
	d := New(Config{N: 100, Degree: 6, Mode: Static}, 3)
	snapshot := append([]int32(nil), d.Graph().Neighbors(0)...)
	for round := 1; round <= 10; round++ {
		d.Step(round)
		for i, w := range d.Graph().Neighbors(0) {
			if snapshot[i] != w {
				t.Fatal("static topology changed")
			}
		}
	}
}

func TestRerandomizeChanges(t *testing.T) {
	d := New(Config{N: 300, Degree: 6, Mode: Rerandomize}, 4)
	before := append([]int32(nil), d.Graph().Neighbors(0)...)
	d.Step(1)
	same := true
	for i, w := range d.Graph().Neighbors(0) {
		if before[i] != w {
			same = false
		}
	}
	if same {
		t.Fatal("rerandomize did not change topology (astronomically unlikely)")
	}
}

func TestPeriodicChangesOnlyOnPeriod(t *testing.T) {
	d := New(Config{N: 300, Degree: 6, Mode: Periodic, Period: 5}, 5)
	snap := func() []int32 { return append([]int32(nil), d.Graph().Neighbors(1)...) }
	before := snap()
	for round := 1; round <= 4; round++ {
		d.Step(round)
		after := snap()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("periodic topology changed at round %d (period 5)", round)
			}
		}
	}
	d.Step(5)
	after := snap()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("periodic topology did not change at the period boundary")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{N: 150, Degree: 4, Mode: Rerandomize}, 9)
	b := New(Config{N: 150, Degree: 4, Mode: Rerandomize}, 9)
	for round := 1; round <= 5; round++ {
		a.Step(round)
		b.Step(round)
		for v := 0; v < 150; v++ {
			na, nb := a.Graph().Neighbors(v), b.Graph().Neighbors(v)
			for i := range na {
				if na[i] != nb[i] {
					t.Fatal("same seed produced different topologies")
				}
			}
		}
	}
}

func TestExpansionMaintained(t *testing.T) {
	d := New(Config{N: 1024, Degree: 8, Mode: Rerandomize}, 13)
	probe := rng.New(1)
	for round := 1; round <= 5; round++ {
		d.Step(round)
		lambda := d.Graph().SpectralGapEstimate(probe, 40)
		if lambda > 0.9 {
			t.Fatalf("round %d: lambda estimate %v — not an expander", round, lambda)
		}
		if !d.Graph().IsConnected() {
			t.Fatalf("round %d: topology disconnected", round)
		}
	}
}

func TestRingPlusRandomNonBipartite(t *testing.T) {
	d := New(Config{N: 201, Degree: 6, Mode: RingPlusRandom}, 17)
	for round := 1; round <= 5; round++ {
		d.Step(round)
		if d.Graph().IsBipartite() {
			t.Fatalf("round %d: ring+random topology is bipartite", round)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("tiny n", func() { New(Config{N: 2, Degree: 2, Mode: Static}, 1) })
	mustPanic("odd degree", func() { New(Config{N: 10, Degree: 3, Mode: Static}, 1) })
	mustPanic("bad period", func() { New(Config{N: 10, Degree: 2, Mode: Periodic}, 1) })
}

func TestModeStrings(t *testing.T) {
	for _, m := range []EdgeMode{Rerandomize, Static, Periodic, RingPlusRandom, EdgeMode(42)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}
