package expt

import (
	"math"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/simnet"
	"dynp2p/internal/stats"
	"dynp2p/internal/walks"
)

// soupStack builds an engine+soup pair (no protocol) for walk experiments.
func soupStack(n int, law churn.Law, p walks.Params, seed uint64) (*simnet.Engine, *walks.Soup) {
	e := simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: seed, ProtocolSeed: seed + 1,
		Strategy: churn.Uniform, Law: law,
	})
	s := walks.NewSoup(e, p, 0)
	e.AddHook(s)
	return e, s
}

// E01SoupMixing reproduces Theorem 1 (Soup Theorem): under churn up to
// c·n/log^{1+δ} n per round, surviving walks end near-uniformly, so a
// large Core of nodes receives near-uniform samples.
//
// Measured: total-variation distance of walk endpoints from uniform
// (destination marginal and per-tracer-source), the fraction of
// destinations whose empirical hit probability lies in the theorem's
// [1/17n, 3/2n] band, and walk survival.
func E01SoupMixing(scale Scale) *Table {
	t := &Table{
		ID:    "E01",
		Title: "Soup Theorem: endpoint uniformity and survival (Thm 1)",
		Claim: "walk endpoints are near-uniform over a Core of n-o(n) nodes; " +
			"pair probabilities in [1/17n, 3/2n]; most walks survive",
		Header: []string{"n", "churn/rnd", "TV(dest)", "TV(tracer)", "band-frac", "survival", "theory"},
	}
	ns := []int{256, 512, 1024}
	if scale == Full {
		ns = append(ns, 2048, 4096)
	}
	const nTracers = 8
	const tracerBatch = 150
	for _, n := range ns {
		law := churn.PaperLaw(1, 0.5)
		p := walks.DefaultParams(n)
		e, s := soupStack(n, law, p, 0xE01)
		warm := 2 * p.WalkLength
		window := 3 * p.WalkLength
		e.Run(simnet.NopHandler{}, warm)

		// Tracer sources: fixed slots; their ids at injection time.
		tracerIDs := make(map[simnet.NodeID]int, nTracers)
		destCounts := make([]int, n)
		tracerCounts := make([][]int, nTracers)
		for i := range tracerCounts {
			tracerCounts[i] = make([]int, n)
		}
		for r := 0; r < window; r++ {
			for i := 0; i < nTracers; i++ {
				slot := (i*n/nTracers + 7) % n
				id := e.IDAt(slot)
				tracerIDs[id] = i
				s.Inject(e, slot, tracerBatch, e.Round())
			}
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < n; slot++ {
				for _, smp := range s.Samples(slot) {
					destCounts[slot]++
					if ti, ok := tracerIDs[smp.Src]; ok {
						tracerCounts[ti][slot]++
					}
				}
			}
		}
		tvDest := stats.TVDistanceFromUniform(destCounts)
		var tvTracer float64
		var bandFrac float64
		for i := range tracerCounts {
			tvTracer += stats.TVDistanceFromUniform(tracerCounts[i])
			total := 0
			for _, c := range tracerCounts[i] {
				total += c
			}
			bandFrac += stats.FractionInBand(tracerCounts[i], total,
				1/(17*float64(n)), 1.5/float64(n))
		}
		tvTracer /= nTracers
		bandFrac /= nTracers
		m := s.Metrics()
		resolved := m.Completed + m.Died + m.Overdue
		survival := float64(m.Completed) / float64(resolved)
		// A walk survives T rounds of churn with probability about
		// (1 - churn/n)^T = exp(-T*churn/n); with the paper's law that is
		// exp(-Theta(1/log^{delta/2} n)) -> 1, but only slowly.
		theory := math.Exp(-float64(p.WalkLength) * float64(law.PerRound(n, 0)) / float64(n))
		t.AddRow(d(n), d(law.PerRound(n, 0)), f4(tvDest), f3(tvTracer), pct(bandFrac),
			pct(survival), pct(theory))
	}
	t.AddNote("TV(dest) should stay small and not grow with n (near-uniform endpoints).")
	t.AddNote("band-frac is the Core estimate: fraction of destinations inside [1/17n, 3/2n].")
	t.AddNote("survival tracks exp(-T*churn/n): the paper's 1-o(1) bound kicks in only as log n grows.")
	return t
}

// E02WalkCompletion reproduces Lemma 1: with the forwarding cap at the
// paper's 2h·log n, every walk still completes its T steps within
// τ = O(log n) rounds; tighter caps defer and eventually drop walks.
func E02WalkCompletion(scale Scale) *Table {
	t := &Table{
		ID:    "E02",
		Title: "walk completion under the forwarding cap (Lemma 1)",
		Claim: "with cap >= 2x generation rate, all walks complete T steps in " +
			"tau rounds w.h.p.; delay concentrates at exactly T",
		Header: []string{"cap/gen", "mean-delay", "p99-delay", "T", "overdue", "deferred/rnd"},
	}
	n := 512
	if scale == Full {
		n = 1024
	}
	base := walks.DefaultParams(n)
	gen := base.WalksPerRound
	for _, mult := range []float64{0, 4, 2, 1, 0.5} {
		p := base
		if mult > 0 {
			p.ForwardCap = int(math.Ceil(mult * float64(gen) * float64(p.WalkLength)))
			// Steady-state tokens per node is gen*T; the cap is stated
			// relative to that (the paper's 2h log n vs h log n walks).
		}
		p.Deadline = 4 * p.WalkLength
		e, s := soupStack(n, churn.PaperLaw(1, 0.5), p, 0xE02)
		warm := 2 * p.WalkLength
		window := 3 * p.WalkLength
		e.Run(simnet.NopHandler{}, warm)
		var delays stats.Counter
		for r := 0; r < window; r++ {
			e.RunRound(simnet.NopHandler{})
			round := e.Round() - 1
			for slot := 0; slot < n; slot++ {
				for _, smp := range s.Samples(slot) {
					delays.Add(round - int(smp.Birth) + 1)
				}
			}
		}
		m := s.Metrics()
		label := "inf"
		if mult > 0 {
			label = f2(mult)
		}
		deferredPerRound := float64(m.Deferred) / float64(warm+window)
		t.AddRow(label, f2(delays.Mean()), d(delays.Quantile(0.99)), d(p.WalkLength),
			d64(m.Overdue), f2(deferredPerRound))
	}
	t.AddNote("cap/gen is the forwarding cap relative to steady-state tokens per node (gen*T).")
	t.AddNote("at cap >= 2x (the paper's 2h log n), p99 delay == T and overdue == 0.")
	return t
}

// E03WalkSurvival reproduces Lemma 2: the fraction of walks killed by
// churn scales with T·churn/n, so most sources' walks survive the mixing
// time.
func E03WalkSurvival(scale Scale) *Table {
	t := &Table{
		ID:    "E03",
		Title: "walk survival vs churn rate (Lemma 2)",
		Claim: "|S| >= n - 4n/log^{(k-1)/2} n sources have walk-death probability " +
			"<= 1/log^{(k-1)/2} n; losses scale linearly in churn",
		Header: []string{"churn C", "churn/rnd", "died-frac", "T*churn/n (theory)", "survival"},
	}
	n := 512
	if scale == Full {
		n = 2048
	}
	p := walks.DefaultParams(n)
	for _, c := range []float64{0.5, 1, 2, 4} {
		law := churn.PaperLaw(c, 0.5)
		e, s := soupStack(n, law, p, 0xE03)
		e.Run(simnet.NopHandler{}, 2*p.WalkLength+3*p.WalkLength)
		m := s.Metrics()
		resolved := m.Completed + m.Died + m.Overdue
		died := float64(m.Died) / float64(resolved)
		theory := float64(p.WalkLength) * float64(law.PerRound(n, 0)) / float64(n)
		t.AddRow(f2(c), d(law.PerRound(n, 0)), f4(died), f4(theory), pct(1-died))
	}
	t.AddNote("died-frac grows linearly in churn and tracks 1-exp(-T*churn/n); the paper's " +
		"o(1) bound is the asymptotic limit of this curve as log n grows.")
	return t
}

// E04ReceiptBounds reproduces Lemmas 5+6: in steady state every (Core)
// node receives Θ(log n) walk samples per round — enough to elect
// committees — and the counts concentrate.
func E04ReceiptBounds(scale Scale) *Table {
	t := &Table{
		ID:    "E04",
		Title: "per-round sample receipts concentrate (Lemmas 5, 6)",
		Claim: "every Core node receives >= alpha*log(n)/36 walks per round w.h.p.; " +
			"receipts concentrate around the generation rate",
		Header: []string{"n", "gen", "expected", "mean", "p05", "frac>=1"},
	}
	ns := []int{256, 512, 1024}
	if scale == Full {
		ns = append(ns, 2048)
	}
	for _, n := range ns {
		p := walks.DefaultParams(n)
		e, s := soupStack(n, churn.PaperLaw(1, 0.5), p, 0xE04)
		e.Run(simnet.NopHandler{}, 2*p.WalkLength)
		window := 2 * p.WalkLength
		var all []float64
		atLeast := 0
		total := 0
		for r := 0; r < window; r++ {
			e.RunRound(simnet.NopHandler{})
			justRun := e.Round() - 1
			for slot := 0; slot < n; slot++ {
				if e.ReplacedInRound(slot, justRun) {
					continue // fresh nodes are outside the Core
				}
				c := float64(len(s.Samples(slot)))
				all = append(all, c)
				total++
				if c >= 1 {
					atLeast++
				}
			}
		}
		sm := stats.Summarize(all)
		m := s.Metrics()
		resolved := m.Completed + m.Died + m.Overdue
		survival := float64(m.Completed) / float64(resolved)
		expected := float64(p.WalksPerRound) * survival
		t.AddRow(d(n), d(p.WalksPerRound), f2(expected), f2(sm.Mean), f2(sm.P05),
			pct(float64(atLeast)/float64(total)))
	}
	t.AddNote("expected = generation rate x walk survival; receipts concentrate around it (Lemma 5/6 shape).")
	t.AddNote("frac>=1 is the share of Core nodes sampled every single round — committee election feasibility.")
	return t
}
