package expt

import (
	"fmt"
	"math"

	"dynp2p"
	"dynp2p/internal/rng"
	"dynp2p/internal/stats"
)

// itemData derives deterministic item content from a key.
func itemData(key uint64, n int) []byte {
	b := make([]byte, n)
	rng.New(key).Fill(b)
	return b
}

// mustStore issues a store from the oldest (Core) node, retrying if the
// issuer is churned out before the committee forms. Pending operations die
// with their issuer — the model's failure semantics — so experiments that
// need the item stored emulate a persistent user re-trying from a
// long-lived peer. Returns false only if every attempt failed.
func mustStore(nw *dynp2p.Network, key uint64, data []byte) bool {
	for attempt := 0; attempt < 6; attempt++ {
		nw.Store(nw.OldestSlot(), key, data)
		nw.Run(4)
		if nw.CopyCount(key) > 0 {
			return true
		}
		nw.Run(6) // the issuer may still be waiting for walk samples
		if nw.CopyCount(key) > 0 {
			return true
		}
	}
	return false
}

// E05CommitteeLifetime reproduces Theorem 2 / Corollary 2: a committee
// stays "good" across epochs, with failure probability per epoch so small
// that lifetimes dominate a geometric with p = n^-Ω(1). At laptop n the
// constants are finite, so the table reports survival across a fixed
// horizon and goodness (live members / committee size) per churn level.
func E05CommitteeLifetime(scale Scale) *Table {
	t := &Table{
		ID:    "E05",
		Title: "committee maintenance under churn (Thm 2, Cor 2)",
		Claim: "the committee re-elects itself every epoch and survives for a long " +
			"horizon; goodness stays near 1; higher churn lowers goodness smoothly",
		Header: []string{"churn C", "seeds", "survived", "mean-goodness", "min-members", "handovers", "fallback%"},
	}
	n := 512
	epochs := 12
	seeds := 3
	if scale == Full {
		n = 1024
		epochs = 30
		seeds = 5
	}
	for _, c := range []float64{0.5, 1, 2} {
		survived := 0
		var goodness []float64
		minMembers := math.MaxInt
		var handovers, fallbacks int64
		for seed := 0; seed < seeds; seed++ {
			nw := dynp2p.New(dynp2p.Config{
				N: n, ChurnRate: c, ChurnDelta: 1.0, Seed: uint64(0xE05 + seed*97),
			})
			nw.Run(nw.WarmupRounds())
			mustStore(nw, 7, itemData(7, 64))
			alive := true
			for ep := 0; ep < epochs; ep++ {
				nw.Run(nw.Tunables().Protocol.Period)
				members := nw.CommitteeSize(7)
				if members == 0 {
					alive = false
					break
				}
				if members < minMembers {
					minMembers = members
				}
				goodness = append(goodness, float64(members)/float64(nw.Tunables().Protocol.CommitteeSize))
			}
			if alive {
				survived++
			}
			st := nw.Stats()
			handovers += st.Proto.Handovers
			fallbacks += st.Proto.FallbackHandovers
		}
		if minMembers == math.MaxInt {
			minMembers = 0
		}
		fallbackPct := 0.0
		if handovers > 0 {
			fallbackPct = float64(fallbacks) / float64(handovers)
		}
		t.AddRow(f2(c), d(seeds), fmt.Sprintf("%d/%d", survived, seeds),
			f3(stats.Mean(goodness)), d(minMembers), d64(handovers), pct(fallbackPct))
	}
	t.AddNote("survived counts committees still alive after the full horizon of %d epochs.", epochs)
	t.AddNote("fallback%% is the share of handovers performed by a non-primary candidate (footnote-†† path).")
	return t
}

// E06LandmarkSize reproduces Lemma 8: the landmark set size scales as
// √n ≤ |M_I| ≤ O(n^{1/2+δ} log n), with landmarks spread near-uniformly.
func E06LandmarkSize(scale Scale) *Table {
	t := &Table{
		ID:     "E06",
		Title:  "landmark-set size scaling (Lemma 8)",
		Claim:  "sqrt(n) <= |M_I| <= O(n^{1/2+delta} log n); fitted exponent ~ 0.5",
		Header: []string{"n", "landmarks", "sqrt(n)", "upper bnd", "ratio/sqrt"},
	}
	ns := []int{256, 512, 1024}
	if scale == Full {
		ns = append(ns, 2048, 4096)
	}
	var xs, ys []float64
	for _, n := range ns {
		nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 0xE06})
		nw.Run(nw.WarmupRounds())
		mustStore(nw, 9, itemData(9, 32))
		nw.Run(nw.Tunables().Protocol.TreeDepth)
		// Average over several checkpoints within a wave period.
		period := nw.Tunables().Protocol.WaveEvery
		var acc float64
		const checks = 4
		for i := 0; i < checks; i++ {
			nw.Run(period / 2)
			acc += float64(nw.LandmarkCount(9))
		}
		lm := acc / checks
		sq := math.Sqrt(float64(n))
		// Lemma 8's upper bound with delta = 0.5: n^{1/2+delta} log n.
		upper := math.Pow(float64(n), 1.0) * math.Log(float64(n))
		t.AddRow(d(n), f2(lm), f2(sq), f2(upper), f2(lm/sq))
		xs = append(xs, float64(n))
		ys = append(ys, lm)
	}
	p, r2 := stats.PowerLawExponent(xs, ys)
	t.AddNote("fitted |M_I| ~ n^%.2f (r²=%.3f); Lemma 8 allows [0.5, 0.5+delta]. Tree depth is "+
		"integral, so short sweeps fit above 1/2 between depth steps — the primary check is the "+
		"ratio/sqrt column staying O(log n).", p, r2)
	return t
}
