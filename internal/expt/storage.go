package expt

import (
	"math"

	"dynp2p"
	"dynp2p/internal/stats"
)

// E07StorageAvailability reproduces Theorem 3: an item stored by a Core
// node stays available — Θ(log n) copies plus a live landmark set — for a
// long horizon under churn up to O(n/log^{1+δ} n) per round.
func E07StorageAvailability(scale Scale) *Table {
	t := &Table{
		ID:    "E07",
		Title: "storage availability over time (Thm 3, Def 1)",
		Claim: "items stay available for a long horizon with only Theta(log n) " +
			"copies each; availability degrades gracefully with churn",
		Header: []string{"churn C", "items", "avail", "alive-end", "mean-copies", "h*ln n", "min-copies"},
	}
	n := 512
	items := 4
	periods := 10
	if scale == Full {
		n = 1024
		items = 8
		periods = 25
	}
	for _, c := range []float64{0.5, 1, 2} {
		nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: c, ChurnDelta: 1.0, Seed: 0xE07})
		nw.Run(nw.WarmupRounds())
		for i := 0; i < items; i++ {
			mustStore(nw, uint64(100+i), itemData(uint64(100+i), 48))
		}
		nw.Run(4)
		period := nw.Tunables().Protocol.Period
		var copies []float64
		minCopies := math.MaxInt
		checkpoints, available := 0, 0
		for ep := 0; ep < periods; ep++ {
			nw.Run(period)
			for i := 0; i < items; i++ {
				key := uint64(100 + i)
				cc := nw.CopyCount(key)
				lm := nw.LandmarkCount(key)
				checkpoints++
				if cc > 0 && lm > 0 {
					available++
				}
				if cc > 0 {
					copies = append(copies, float64(cc))
					if cc < minCopies {
						minCopies = cc
					}
				}
			}
		}
		aliveEnd := 0
		for i := 0; i < items; i++ {
			if nw.CopyCount(uint64(100+i)) > 0 {
				aliveEnd++
			}
		}
		if minCopies == math.MaxInt {
			minCopies = 0
		}
		hLogN := nw.Tunables().Protocol.CommitteeSize
		t.AddRow(f2(c), d(items), pct(float64(available)/float64(checkpoints)),
			d(aliveEnd), f2(stats.Mean(copies)), d(hLogN), d(minCopies))
	}
	t.AddNote("avail = fraction of (item, epoch) checkpoints with >=1 copy and >=1 landmark (Definition 1).")
	t.AddNote("mean-copies stays near the committee size h*ln n: the Theta(log n) copy bound.")
	return t
}

// E08RetrievalLatency reproduces Theorem 4: retrieval succeeds for almost
// all searchers in O(log n) rounds. The table sweeps n and reports the
// latency/ln n ratio, which must stay flat if the O(log n) claim holds.
func E08RetrievalLatency(scale Scale) *Table {
	t := &Table{
		ID:     "E08",
		Title:  "retrieval success and latency scaling (Thm 4)",
		Claim:  "searches from n-o(n) nodes succeed in O(log n) rounds",
		Header: []string{"n", "searches", "success", "success*", "p50-lat", "p95-lat", "p50/ln n"},
	}
	ns := []int{256, 512, 1024}
	searches := 12
	if scale == Full {
		ns = append(ns, 2048)
		searches = 24
	}
	var xs, ys []float64
	for _, n := range ns {
		nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 0xE08})
		nw.Run(nw.WarmupRounds())
		data := itemData(77, 64)
		mustStore(nw, 77, data)
		nw.Run(nw.Tunables().Protocol.Period)
		// Issue searches in waves from scattered slots.
		var lat []float64
		success := 0
		issued := 0
		completed := 0 // searches whose searcher survived to an outcome
		ttl := nw.Tunables().Protocol.SearchTTL
		for wave := 0; wave < 3; wave++ {
			for i := 0; i < searches/3; i++ {
				slot := (wave*1009 + i*131 + 11) % n
				nw.Retrieve(slot, 77, data)
				issued++
			}
			nw.Run(ttl + 4)
			for _, r := range nw.Results() {
				completed++
				if r.Success {
					success++
					lat = append(lat, float64(r.Found-r.Start))
				}
			}
		}
		p50, p95 := 0.0, 0.0
		if len(lat) > 0 {
			sm := stats.Summarize(lat)
			p50, p95 = sm.Median, sm.P95
		}
		survSuccess := 0.0
		if completed > 0 {
			survSuccess = float64(success) / float64(completed)
		}
		ln := math.Log(float64(n))
		t.AddRow(d(n), d(issued), pct(float64(success)/float64(issued)),
			pct(survSuccess), f2(p50), f2(p95), f2(p50/ln))
		xs = append(xs, float64(n))
		ys = append(ys, p50+1)
	}
	p, r2 := stats.PowerLawExponent(xs, ys)
	t.AddNote("fitted latency ~ n^%.2f (r²=%.2f); O(log n) predicts an exponent near 0.", p, r2)
	t.AddNote("p50/ln n flat across n is the O(log n) signature.")
	t.AddNote("success counts all issued searches; success* conditions on the searcher " +
		"surviving to an outcome (the paper's guarantee is for the n-o(n) nodes that remain).")
	return t
}
