// Package expt implements the reproduction experiments: one experiment per
// theorem/lemma/claim of the paper (the paper is purely analytical, so
// these tables play the role of its "figures"; see DESIGN.md §4 for the
// index and EXPERIMENTS.md for paper-vs-measured commentary).
//
// Every experiment is a pure function of its Scale and a fixed base seed,
// so tables regenerate identically. Quick scale finishes in seconds per
// experiment (CI-friendly); Full scale extends the sweeps for the numbers
// quoted in EXPERIMENTS.md.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment size.
type Scale int

// Scales.
const (
	// Quick runs a reduced sweep suitable for benchmarks and CI.
	Quick Scale = iota
	// Full runs the sweep quoted in EXPERIMENTS.md (minutes).
	Full
)

// Table is the output of one experiment.
type Table struct {
	ID     string // e.g. "E01"
	Title  string
	Claim  string // the paper statement whose shape the rows must show
	Header []string
	Rows   [][]string
	Notes  []string // observations computed from the data (fits, ratios)
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a computed observation.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// f2 formats a float with 2 decimals; f3/f4 likewise.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// All runs every experiment at the given scale in order.
func All(scale Scale) []*Table {
	return []*Table{
		E01SoupMixing(scale),
		E02WalkCompletion(scale),
		E03WalkSurvival(scale),
		E04ReceiptBounds(scale),
		E05CommitteeLifetime(scale),
		E06LandmarkSize(scale),
		E07StorageAvailability(scale),
		E08RetrievalLatency(scale),
		E09MessageComplexity(scale),
		E10ErasureCoding(scale),
		E11ChurnStress(scale),
		E12BaselineComparison(scale),
		E13Ablations(scale),
	}
}

// ByID returns the experiment function for an id like "E01", or nil.
func ByID(id string) func(Scale) *Table {
	switch strings.ToUpper(id) {
	case "E01":
		return E01SoupMixing
	case "E02":
		return E02WalkCompletion
	case "E03":
		return E03WalkSurvival
	case "E04":
		return E04ReceiptBounds
	case "E05":
		return E05CommitteeLifetime
	case "E06":
		return E06LandmarkSize
	case "E07":
		return E07StorageAvailability
	case "E08":
		return E08RetrievalLatency
	case "E09":
		return E09MessageComplexity
	case "E10":
		return E10ErasureCoding
	case "E11":
		return E11ChurnStress
	case "E12":
		return E12BaselineComparison
	case "E13":
		return E13Ablations
	default:
		return nil
	}
}
