package expt

import (
	"strconv"
	"strings"
	"testing"
)

// parsePct converts a "97.5%" cell back to a fraction.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q: %v", cell, err)
	}
	return v / 100
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", cell, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "EX", Title: "demo", Claim: "c", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("note %d", 7)
	s := tb.String()
	for _, want := range []string{"EX", "demo", "a", "bb", "note 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E01", "e05", "E13"} {
		if ByID(id) == nil {
			t.Fatalf("ByID(%q) = nil", id)
		}
	}
	if ByID("E99") != nil {
		t.Fatal("ByID should reject unknown ids")
	}
}

// The individual experiment checks below run at Quick scale and assert the
// *claim shape*, not exact numbers — these are the automated versions of
// the EXPERIMENTS.md verdicts.

func TestE01SoupShape(t *testing.T) {
	tb := E01SoupMixing(Quick)
	if len(tb.Rows) < 3 {
		t.Fatal("expected a sweep over n")
	}
	for _, row := range tb.Rows {
		tv := parseF(t, row[2])
		if tv > 0.25 {
			t.Fatalf("destination TV %v too far from uniform (row %v)", tv, row)
		}
		surv := parsePct(t, row[5])
		theory := parsePct(t, row[6])
		if surv < theory-0.15 || surv > theory+0.15 {
			t.Fatalf("walk survival %v far from theory %v (row %v)", surv, theory, row)
		}
		band := parsePct(t, row[4])
		if band < 0.5 {
			t.Fatalf("band fraction %v too low (row %v)", band, row)
		}
	}
}

func TestE02CompletionShape(t *testing.T) {
	tb := E02WalkCompletion(Quick)
	// First row is the uncapped run: delay must equal T exactly.
	first := tb.Rows[0]
	if first[0] != "inf" {
		t.Fatalf("first row should be uncapped, got %v", first)
	}
	if parseF(t, first[1]) != parseF(t, first[3]) {
		t.Fatalf("uncapped mean delay %v != T %v", first[1], first[3])
	}
	// The tightest cap must defer tokens.
	last := tb.Rows[len(tb.Rows)-1]
	if parseF(t, last[5]) == 0 {
		t.Fatalf("tightest cap deferred nothing: %v", last)
	}
}

func TestE03SurvivalMonotone(t *testing.T) {
	tb := E03WalkSurvival(Quick)
	prev := -1.0
	for _, row := range tb.Rows {
		died := parseF(t, row[2])
		if died < prev {
			t.Fatalf("death rate not monotone in churn: %v", tb.Rows)
		}
		prev = died
	}
}

func TestE04ReceiptsShape(t *testing.T) {
	tb := E04ReceiptBounds(Quick)
	for _, row := range tb.Rows {
		expected := parseF(t, row[2])
		mean := parseF(t, row[3])
		if mean < expected*0.6 || mean > expected*1.6 {
			t.Fatalf("mean receipts %v far from expected %v", mean, expected)
		}
		if frac := parsePct(t, row[5]); frac < 0.8 {
			t.Fatalf("receipt bound fraction %v too low", frac)
		}
	}
}

func TestE06LandmarkScaling(t *testing.T) {
	tb := E06LandmarkSize(Quick)
	for _, row := range tb.Rows {
		ratio := parseF(t, row[4])
		if ratio < 0.5 || ratio > 30 {
			t.Fatalf("landmark/sqrt(n) ratio %v outside plausible band (row %v)", ratio, row)
		}
	}
}

func TestE08RetrievalShape(t *testing.T) {
	tb := E08RetrievalLatency(Quick)
	for _, row := range tb.Rows {
		if rate := parsePct(t, row[2]); rate < 0.7 {
			t.Fatalf("retrieval success %v too low (row %v)", rate, row)
		}
	}
}

func TestE10ErasureSavings(t *testing.T) {
	tb := E10ErasureCoding(Quick)
	if len(tb.Rows) < 2 {
		t.Fatal("need replication and IDA rows")
	}
	repl := parseF(t, tb.Rows[0][2])
	idaOverhead := parseF(t, tb.Rows[1][2])
	if idaOverhead >= repl/2 {
		t.Fatalf("IDA overhead %v not clearly below replication %v", idaOverhead, repl)
	}
}
