package expt

import (
	"dynp2p"
	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/flood"
	"dynp2p/internal/simnet"
	"dynp2p/internal/stats"
)

// E09MessageComplexity reproduces the scalability claim (§1, §4): the
// paper's protocol needs only polylog(n) bits per node per round, while
// the naïve flooding solution costs Θ(n) messages per operation.
func E09MessageComplexity(scale Scale) *Table {
	t := &Table{
		ID:    "E09",
		Title: "per-node traffic: protocol vs flooding (§1 scalability claim)",
		Claim: "protocol traffic per node per round is polylog(n); flooding costs " +
			"Theta(n) messages per operation",
		Header: []string{"n", "mean bits/node/rnd", "max bits/node/rnd", "flood msgs/store", "flood/n"},
	}
	ns := []int{256, 512, 1024}
	if scale == Full {
		ns = append(ns, 2048)
	}
	var xs, meanBits []float64
	for _, n := range ns {
		// Protocol workload: one stored item + periodic searches.
		nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 0xE09})
		nw.Run(nw.WarmupRounds())
		data := itemData(3, 64)
		mustStore(nw, 3, data)
		nw.Run(nw.Tunables().Protocol.Period)
		for i := 0; i < 4; i++ {
			nw.Retrieve((i*257+5)%n, 3, data)
		}
		nw.Run(2 * nw.Tunables().Protocol.Period)
		em := nw.Stats().Engine
		rounds := em.Rounds
		mean := float64(em.BitsSent) / float64(n) / float64(rounds)

		// Flooding workload: one store on the same engine scale.
		fe := simnet.New(simnet.Config{
			N: n, Degree: 8, EdgeMode: expander.Rerandomize,
			AdversarySeed: 0xF109, ProtocolSeed: 0xF10A,
			Strategy: churn.Uniform, Law: churn.PaperLaw(1, 0.5),
		})
		fh := flood.NewHandler(n)
		fe.RunRound(fh)
		base := fe.Metrics().MsgsSent
		fh.RequestStore(fe, 0, 3, data)
		fe.Run(fh, 30)
		floodMsgs := fe.Metrics().MsgsSent - base

		t.AddRow(d(n), f2(mean), d64(em.MaxNodeBitsRound),
			d64(floodMsgs), f2(float64(floodMsgs)/float64(n)))
		xs = append(xs, float64(n))
		meanBits = append(meanBits, mean)
	}
	p, r2 := stats.PowerLawExponent(xs, meanBits)
	t.AddNote("fitted protocol bits/node/round ~ n^%.2f (r²=%.2f); polylog predicts an exponent near 0.", p, r2)
	t.AddNote("flood msgs/store grows linearly in n (flood/n roughly constant) — the scalability wall.")
	return t
}

// E10ErasureCoding reproduces §4.4: IDA cuts total stored bytes from
// Θ(log n)·|I| to (L/K)·|I| while the committee keeps the item alive by
// reconstructing and re-dispersing at each handover.
func E10ErasureCoding(scale Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "replication vs IDA erasure coding (§4.4)",
		Claim: "IDA stores L/K * |I| total bytes instead of h*log(n) * |I|; " +
			"items survive handovers via reconstruct-and-redisperse",
		Header: []string{"mode", "stored-bytes", "vs item", "retrieval", "recoded", "lost"},
	}
	n := 512
	periods := 6
	if scale == Full {
		n = 1024
		periods = 12
	}
	itemLen := 512
	data := itemData(11, itemLen)
	type modeCfg struct {
		name string
		k    int
	}
	committee := dynp2p.New(dynp2p.Config{N: n, Seed: 1}).Tunables().Protocol.CommitteeSize
	// K must leave headroom for piece loss between handovers: the paper's
	// K = (h-2)log n works in the asymptotic regime where only 2·log n of
	// the h·log n members churn per epoch; at laptop n roughly half the
	// members can churn between epochs, so K <= L/3 is the sustainable
	// analogue (the L/K overhead stays a constant, as §4.4 requires).
	modes := []modeCfg{
		{"replication", 0},
		{"IDA K=L/4", committee / 4},
		{"IDA K=L/3", committee / 3},
	}
	for _, mc := range modes {
		// C = 0.5 keeps committees healthy (E05): §4.4's claim is the
		// constant-factor storage overhead, which needs the committee
		// machinery underneath it to be in its working regime.
		nw := dynp2p.New(dynp2p.Config{
			N: n, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 0xE10, ErasureK: mc.k,
		})
		nw.Run(nw.WarmupRounds())
		mustStore(nw, 11, data)
		// Measure stored bytes via copy count and per-copy size.
		perCopy := itemLen
		if mc.k > 0 {
			perCopy = (itemLen + mc.k - 1) / mc.k
		}
		storedBytes := nw.CopyCount(11) * perCopy
		nw.Run(periods * nw.Tunables().Protocol.Period)
		// Several retrieval attempts from scattered nodes (a single
		// searcher can itself be churned mid-search).
		okStr := "fail"
		for attempt := 0; attempt < 3 && okStr == "fail"; attempt++ {
			nw.Retrieve((n/2+attempt*67)%n, 11, data)
			nw.Run(nw.Tunables().Protocol.SearchTTL + 5)
			for _, r := range nw.Results() {
				if r.Key == 11 && r.Success {
					okStr = "ok"
				}
			}
		}
		st := nw.Stats().Proto
		t.AddRow(mc.name, d(storedBytes), f2(float64(storedBytes)/float64(itemLen)),
			okStr, d64(st.IDARecoded), d64(st.IDALost))
	}
	t.AddNote("'vs item' is the total storage blow-up: h*ln n for replication, ~L/K for IDA.")
	return t
}
