package expt

import (
	"math"

	"dynp2p"
	"dynp2p/internal/churn"
	"dynp2p/internal/dht"
	"dynp2p/internal/expander"
	"dynp2p/internal/flood"
	"dynp2p/internal/protocol"
	"dynp2p/internal/simnet"
	"dynp2p/internal/walks"
)

// retrievalRate stores one item and issues searches, returning the success
// fraction.
func retrievalRate(nw *dynp2p.Network, key uint64, searches int) float64 {
	data := itemData(key, 48)
	mustStore(nw, key, data)
	nw.Run(nw.Tunables().Protocol.Period + 4)
	n := nw.N()
	for i := 0; i < searches; i++ {
		nw.Retrieve((i*211+13)%n, key, data)
	}
	nw.Run(nw.Tunables().Protocol.SearchTTL + 6)
	ok := 0
	got := 0
	for _, r := range nw.Results() {
		got++
		if r.Success {
			ok++
		}
	}
	if got == 0 {
		return 0
	}
	return float64(ok) / float64(got)
}

// E11ChurnStress probes the paper's §5 conjecture: random-walk approaches
// have a fundamental limit near churn Ω(n/log n), because at that rate a
// constant fraction of nodes is replaced within one mixing time. The table
// sweeps churn as a fraction of n/ln n and locates the knee.
func E11ChurnStress(scale Scale) *Table {
	t := &Table{
		ID:    "E11",
		Title: "breakdown near churn n/log n (§5 conjecture)",
		Claim: "success is high while churn << n/log n (e.g. at the paper's " +
			"n/log^{1+delta} n) and collapses as churn approaches n/log n",
		Header: []string{"churn/(n/ln n)", "churn/rnd", "%replaced/rnd", "walk-survival", "retrieval"},
	}
	n := 1024
	searches := 8
	if scale == Full {
		n = 2048
		searches = 16
	}
	ln := math.Log(float64(n))
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	if scale == Full {
		fracs = append(fracs, 1.5)
	}
	for _, frac := range fracs {
		perRound := int(frac * float64(n) / ln)
		// With delta -> 0 the facade's law C·n/ln^{1+delta} n approaches
		// frac·(n/ln n), the sweep variable of the conjecture.
		nw := dynp2p.New(dynp2p.Config{
			N: n, ChurnRate: frac, ChurnDelta: 0.0001, Seed: 0xE11,
		})
		nw.Run(nw.WarmupRounds())
		rate := retrievalRate(nw, 5, searches)
		sm := nw.Stats().Soup
		resolved := sm.Completed + sm.Died + sm.Overdue
		survival := 0.0
		if resolved > 0 {
			survival = float64(sm.Completed) / float64(resolved)
		}
		t.AddRow(f2(frac), d(perRound), pct(float64(perRound)/float64(n)),
			pct(survival), pct(rate))
	}
	t.AddNote("the paper's tolerated rate n/log^{1+delta} n sits at fraction 1/ln^delta(n) " +
		"of n/ln n — the low end of this sweep, where retrieval stays high.")
	return t
}

// E12BaselineComparison reproduces the §1.3 separation: structured DHTs
// and flooding against the paper's protocol under identical churn.
func E12BaselineComparison(scale Scale) *Table {
	t := &Table{
		ID:    "E12",
		Title: "dynp2p vs Chord-like DHT vs flooding under churn (§1.3)",
		Claim: "the DHT's lookups degrade sharply under heavy churn and flooding " +
			"pays Theta(n) messages; the protocol keeps succeeding at polylog cost",
		Header: []string{"churn/rnd", "system", "success", "msgs/search", "ring-health"},
	}
	n := 512
	searches := 8
	if scale == Full {
		n = 1024
		searches = 16
	}
	levels := []int{1, n / 100, n / 25}
	for _, perRound := range levels {
		law := churn.FixedLaw{Count: perRound}

		// --- dynp2p ---
		{
			c := float64(perRound) * math.Log(float64(n)) / float64(n)
			nw := dynp2p.New(dynp2p.Config{N: n, ChurnRate: c, ChurnDelta: 0.0001, Seed: 0xE12})
			nw.Run(nw.WarmupRounds())
			data := itemData(21, 48)
			mustStore(nw, 21, data)
			nw.Run(nw.Tunables().Protocol.Period + 4)
			// Count messages over the search phase only, so msgs/search
			// is the marginal retrieval cost, not store+upkeep.
			before := nw.Stats().Engine.MsgsSent
			for i := 0; i < searches; i++ {
				nw.Retrieve((i*211+13)%n, 21, data)
			}
			nw.Run(nw.Tunables().Protocol.SearchTTL + 6)
			ok, got := 0, 0
			for _, r := range nw.Results() {
				got++
				if r.Success {
					ok++
				}
			}
			rate := 0.0
			if got > 0 {
				rate = float64(ok) / float64(got)
			}
			msgs := float64(nw.Stats().Engine.MsgsSent-before) / float64(searches)
			t.AddRow(d(perRound), "dynp2p", pct(rate), f2(msgs), "-")
		}

		// --- DHT ---
		{
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Rerandomize,
				AdversarySeed: 0xD12, ProtocolSeed: 0xD13,
				Strategy: churn.Uniform, Law: law,
			})
			h := dht.NewHandler(n)
			e.RunRound(h)
			h.Bootstrap(e)
			data := itemData(21, 48)
			h.RequestStore(e, 0, 21, data)
			e.Run(h, 40)
			before := e.Metrics().MsgsSent
			for i := 0; i < searches; i++ {
				h.RequestGet(e, (i*211+13)%n, 21, 80)
			}
			deadline := e.Round() + 90
			ok, got := 0, 0
			for e.Round() < deadline && got < searches {
				e.RunRound(h)
				for _, r := range h.DrainResults(e.Round()) {
					got++
					if r.Success {
						ok++
					}
				}
			}
			msgs := float64(e.Metrics().MsgsSent-before) / float64(searches)
			rate := 0.0
			if got > 0 {
				rate = float64(ok) / float64(got)
			}
			t.AddRow(d(perRound), "chord-dht", pct(rate), f2(msgs), f3(h.RingHealth(e)))
		}

		// --- flooding ---
		{
			e := simnet.New(simnet.Config{
				N: n, Degree: 8, EdgeMode: expander.Rerandomize,
				AdversarySeed: 0xF12, ProtocolSeed: 0xF13,
				Strategy: churn.Uniform, Law: law,
			})
			h := flood.NewHandler(n)
			e.RunRound(h)
			h.RequestStore(e, 0, 21, itemData(21, 48))
			e.Run(h, 40)
			before := e.Metrics().MsgsSent
			for i := 0; i < searches; i++ {
				h.RequestSearch(e, (i*211+13)%n, 21, 40)
			}
			deadline := e.Round() + 50
			ok, got := 0, 0
			for e.Round() < deadline && got < searches {
				e.RunRound(h)
				for _, r := range h.DrainResults(e.Round()) {
					got++
					if r.Success {
						ok++
					}
				}
			}
			msgs := float64(e.Metrics().MsgsSent-before) / float64(searches)
			rate := 0.0
			if got > 0 {
				rate = float64(ok) / float64(got)
			}
			t.AddRow(d(perRound), "flooding", pct(rate), f2(msgs), "-")
		}
	}
	t.AddNote("msgs/search for flooding includes the query flood: Theta(n·d) messages each.")
	t.AddNote("ring-health is the fraction of DHT nodes whose successor pointer is globally correct.")
	t.AddNote("dynp2p's search cost is Theta(n^{1/2+o(1)}) messages (sqrt-n landmarks x log factors), " +
		"so flooding can be cheaper at small n; the separation favours dynp2p as n grows, and only " +
		"dynp2p keeps items alive indefinitely (flooded copies decay — E07/E09).")
	t.AddNote("dynp2p's inquiry volume falls with churn because landmark populations are thinner.")
	return t
}

// E13Ablations sweeps the design knobs the paper fixes by analysis —
// walks per round (α), committee size (h), maintenance period, and tree
// depth — one factor at a time.
func E13Ablations(scale Scale) *Table {
	t := &Table{
		ID:    "E13",
		Title: "ablations of the paper's parameter choices",
		Claim: "defaults sit on a plateau: halving walk rate or committee size " +
			"hurts reliability; doubling costs more without gains",
		Header: []string{"variant", "success", "p50-lat", "copies", "bits/node/rnd"},
	}
	n := 512
	searches := 8
	if scale == Full {
		n = 1024
		searches = 16
	}
	type variant struct {
		name string
		mod  func(*dynp2p.Config, *tweaks)
	}
	variants := []variant{
		{"defaults", func(*dynp2p.Config, *tweaks) {}},
		{"walks x0.5", func(_ *dynp2p.Config, tw *tweaks) { tw.walksMul = 0.5 }},
		{"walks x2", func(_ *dynp2p.Config, tw *tweaks) { tw.walksMul = 2 }},
		{"committee x0.5", func(_ *dynp2p.Config, tw *tweaks) { tw.committeeMul = 0.5 }},
		{"committee x2", func(_ *dynp2p.Config, tw *tweaks) { tw.committeeMul = 2 }},
		{"period x2", func(_ *dynp2p.Config, tw *tweaks) { tw.periodMul = 2 }},
		{"tree depth -1", func(_ *dynp2p.Config, tw *tweaks) { tw.depthDelta = -1 }},
		{"tree depth +1", func(_ *dynp2p.Config, tw *tweaks) { tw.depthDelta = +1 }},
	}
	for _, v := range variants {
		cfg := dynp2p.Config{N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 0xE13}
		tw := tweaks{walksMul: 1, committeeMul: 1, periodMul: 1}
		v.mod(&cfg, &tw)
		nw := buildTweaked(cfg, tw)
		nw.Run(nw.WarmupRounds())
		data := itemData(31, 48)
		mustStore(nw, 31, data)
		nw.Run(nw.Tunables().Protocol.Period + 4)
		for i := 0; i < searches; i++ {
			nw.Retrieve((i*211+13)%n, 31, data)
		}
		nw.Run(nw.Tunables().Protocol.SearchTTL + 6)
		ok, got := 0, 0
		var lats []float64
		for _, r := range nw.Results() {
			got++
			if r.Success {
				ok++
				lats = append(lats, float64(r.Found-r.Start))
			}
		}
		rate := 0.0
		if got > 0 {
			rate = float64(ok) / float64(got)
		}
		p50 := 0.0
		if len(lats) > 0 {
			p50 = median(lats)
		}
		em := nw.Stats().Engine
		bits := float64(em.BitsSent) / float64(n) / float64(em.Rounds)
		t.AddRow(v.name, pct(rate), f2(p50), d(nw.CopyCount(31)), f2(bits))
	}
	t.AddNote("walks multiplier scales alpha (samples per round); committee multiplier scales h.")
	return t
}

// tweaks scales the derived protocol parameters for the ablations.
type tweaks struct {
	walksMul     float64
	committeeMul float64
	periodMul    float64
	depthDelta   int
}

// buildTweaked assembles a network with adjusted parameters.
func buildTweaked(cfg dynp2p.Config, tw tweaks) *dynp2p.Network {
	return dynp2p.NewCustom(cfg, func(wp *walks.Params, pp *protocol.Params) {
		if v := int(float64(wp.WalksPerRound) * tw.walksMul); v >= 1 {
			wp.WalksPerRound = v
		} else {
			wp.WalksPerRound = 1
		}
		if v := int(float64(pp.CommitteeSize) * tw.committeeMul); v >= 4 {
			pp.CommitteeSize = v
		} else {
			pp.CommitteeSize = 4
		}
		pp.SampleBuffer = 4 * pp.CommitteeSize
		if v := int(float64(pp.Period) * tw.periodMul); v > pp.SampleWindow+8 {
			pp.Period = v
		}
		if v := pp.TreeDepth + tw.depthDelta; v >= 1 {
			pp.TreeDepth = v
		}
	})
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
