// Package bitset implements a dense fixed-capacity bit set.
//
// The simulator uses bit sets for cheap membership bookkeeping over node
// slots and node ids: Core membership, landmark occupancy, visited marks in
// graph algorithms. Only what the simulator needs is implemented; the zero
// value is an empty set of capacity zero.
package bitset

import "math/bits"

// Set is a dense bit set over [0, Len()).
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of capacity n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, Len()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the bits beyond Len() in the last word.
func (s *Set) trim() {
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// And intersects s with t in place. Panics if capacities differ.
func (s *Set) And(t *Set) {
	if s.n != t.n {
		panic("bitset: size mismatch")
	}
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Or unions t into s in place. Panics if capacities differ.
func (s *Set) Or(t *Set) {
	if s.n != t.n {
		panic("bitset: size mismatch")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndNot removes t's members from s in place. Panics if capacities differ.
func (s *Set) AndNot(t *Set) {
	if s.n != t.n {
		panic("bitset: size mismatch")
	}
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with t's contents. Panics if capacities differ.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: size mismatch")
	}
	copy(s.words, t.words)
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Members appends all set bit indices to dst (which may be nil) and
// returns it.
func (s *Set) Members(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
