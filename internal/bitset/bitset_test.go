package bitset

import (
	"testing"
	"testing/quick"

	"dynp2p/internal/rng"
)

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountMatchesReference(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) + 1
		r := rng.New(seed)
		s := New(n)
		ref := make(map[int]bool)
		for k := 0; k < n; k++ {
			i := r.Intn(n)
			if r.Bool() {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFillAndReset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("Fill(%d): count = %d", n, s.Count())
		}
		s.Reset()
		if s.Count() != 0 {
			t.Fatalf("Reset(%d): count = %d", n, s.Count())
		}
	}
}

func TestBooleanOps(t *testing.T) {
	n := 150
	a, b := New(n), New(n)
	for i := 0; i < n; i += 2 {
		a.Set(i)
	}
	for i := 0; i < n; i += 3 {
		b.Set(i)
	}
	inter := a.Clone()
	inter.And(b)
	for i := 0; i < n; i++ {
		want := i%2 == 0 && i%3 == 0
		if inter.Test(i) != want {
			t.Fatalf("And wrong at %d", i)
		}
	}
	uni := a.Clone()
	uni.Or(b)
	for i := 0; i < n; i++ {
		want := i%2 == 0 || i%3 == 0
		if uni.Test(i) != want {
			t.Fatalf("Or wrong at %d", i)
		}
	}
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < n; i++ {
		want := i%2 == 0 && i%3 != 0
		if diff.Test(i) != want {
			t.Fatalf("AndNot wrong at %d", i)
		}
	}
}

func TestForEachAndMembers(t *testing.T) {
	s := New(300)
	want := []int{0, 5, 63, 64, 199, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
	m := s.Members(nil)
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Members: got %v want %v", m, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	s.Set(3)
	s.Set(64)
	s.Set(190)
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 190}, {190, 190}, {191, -1}, {-5, 3}, {500, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(10)
	b.Set(20)
	b.CopyFrom(a)
	if !b.Test(10) || b.Test(20) {
		t.Fatal("CopyFrom did not overwrite")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched sizes did not panic")
		}
	}()
	New(10).And(New(20))
}

func TestFillTrimsTail(t *testing.T) {
	s := New(70)
	s.Fill()
	// Bits beyond 70 must not be counted.
	if s.Count() != 70 {
		t.Fatalf("count after Fill = %d, want 70", s.Count())
	}
	if s.NextSet(70) != -1 {
		t.Fatal("NextSet found a bit beyond Len")
	}
}
