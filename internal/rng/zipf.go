package rng

import "math"

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s,
// the standard model for skewed key popularity in storage workloads
// (a few hot items, a long tail). s = 0 degenerates to uniform.
//
// The sampler precomputes the CDF once and draws by binary search, so Next
// is O(log n) with no floating-point accumulation at sample time; a Zipf
// over the same (n, s) always maps the same uniform variate to the same
// rank, which keeps workloads deterministic in the driving Stream.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s >= 0. Panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	if s < 0 {
		panic("rng: NewZipf with s < 0")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding leaving the last bucket short
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws a rank in [0, n) using r.
func (z *Zipf) Next(r *Stream) int {
	u := r.Float64()
	// Binary search for the first rank whose CDF exceeds u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
