package rng

// This file provides stateless deterministic mixing primitives. They exist
// for decision points that must be a pure function of *what* is being
// decided rather than *when* the decision is reached — e.g. the simnet
// fault model must decide each message's fate identically no matter how
// messages are sharded across workers, so it hashes the message identity
// instead of consuming a sequential stream.

// Remix applies one SplitMix64 finalisation step to x. Iterating Remix
// yields a cheap stateless sequence of statistically independent values:
// x, Remix(x), Remix(Remix(x)), ...
func Remix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash mixes vals into seed and returns 64 uniform bits. The result is a
// pure function of (seed, vals); distinct tuples yield independent values.
func Hash(seed uint64, vals ...uint64) uint64 {
	h := Remix(seed ^ 0x632be59bd9b4e019)
	for _, v := range vals {
		h = Remix(h ^ v*0x9e3779b97f4a7c15)
	}
	return h
}

// Unit maps 64 random bits to a uniform float64 in [0, 1), using the same
// top-53-bit construction as Stream.Float64.
func Unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
