// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a core requirement of the reproduction (see DESIGN.md
// §5): a whole simulation must be a pure function of two seeds — one for the
// oblivious adversary and one for the protocol — even though node handlers
// run in parallel. To that end every logical actor (a node, the adversary,
// an experiment) draws from its own Stream derived from (seed, id) with
// SplitMix64, so the schedule of goroutines can never change the numbers an
// actor sees.
//
// The core generator is xoshiro256**, which is small, fast, and has
// excellent statistical quality; SplitMix64 is the recommended seeding
// function for it. Both are public-domain algorithms (Blackman & Vigna).
package rng

import (
	"math"
	"math/bits"
)

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used only for seeding and stream derivation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic random number stream. The zero value is not
// valid; use New or Derive. Stream is not safe for concurrent use; give
// each goroutine its own Stream.
type Stream struct {
	s0, s1, s2, s3 uint64
	// cachedNorm holds a spare normal variate from the Box-Muller pair.
	cachedNorm    float64
	hasCachedNorm bool
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	r := &Stream{}
	r.Reseed(seed)
	return r
}

// Derive returns an independent Stream identified by (seed, id). Distinct
// ids yield statistically independent streams; the same pair always yields
// the same stream. This is the mechanism that makes parallel simulation
// deterministic.
func Derive(seed, id uint64) *Stream {
	r := &Stream{}
	r.ReseedDerived(seed, id)
	return r
}

// ReseedDerived reinitialises r in place to the exact stream Derive(seed,
// id) would return, without allocating. The simulation engine uses it to
// recycle a slot's Stream object when churn installs a new occupant, so
// heavy-churn rounds stay allocation-free.
func (r *Stream) ReseedDerived(seed, id uint64) {
	// Mix id into the seed with one splitmix step so that (seed, id) and
	// (seed, id+1) land far apart in seed space.
	st := seed
	_ = splitMix64(&st)
	st ^= 0x9e3779b97f4a7c15 * (id + 0x632be59bd9b4e019)
	r.Reseed(st)
}

// Reseed reinitialises the stream from seed.
func (r *Stream) Reseed(seed uint64) {
	st := seed
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	r.s2 = splitMix64(&st)
	r.s3 = splitMix64(&st)
	// xoshiro must not be seeded with all zeros; splitmix cannot produce
	// four zero outputs from any seed, but keep a guard for clarity.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	r.hasCachedNorm = false
}

// Split derives a child stream from the current stream state. The parent
// advances; the child is independent of the parent's future output.
func (r *Stream) Split() *Stream {
	return Derive(r.Uint64(), r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns 32 uniformly random bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative int64.
func (r *Stream) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire: sample 128-bit product, reject the biased low region.
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo < n {
			// threshold = -n mod n
			thresh := (-n) % n
			if lo < thresh {
				continue
			}
		}
		return hi
	}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). n must be > 0.
func (r *Stream) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
// (Used by the network-size estimation primitive from §4 of the paper.)
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Stream) NormFloat64() float64 {
	if r.hasCachedNorm {
		r.hasCachedNorm = false
		return r.cachedNorm
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		rad := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		r.cachedNorm = rad * math.Sin(theta)
		r.hasCachedNorm = true
		return rad * math.Cos(theta)
	}
}

// Perm returns a random permutation of [0, n) as a fresh slice.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// Perm32 returns a random permutation of [0, n) as int32s.
func (r *Stream) Perm32(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Stream) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK reservoir-samples k distinct values from [0, n). If k >= n it
// returns a permutation of [0, n). The result order is random.
func (r *Stream) SampleK(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	r.ShuffleInts(res)
	return res
}

// Fill fills b with random bytes.
func (r *Stream) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
