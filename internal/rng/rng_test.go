package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/64 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Streams derived with adjacent ids must not be shifted copies of
	// each other.
	a := Derive(7, 100)
	b := Derive(7, 101)
	var av, bv [128]uint64
	for i := range av {
		av[i] = a.Uint64()
		bv[i] = b.Uint64()
	}
	for shift := 0; shift < 8; shift++ {
		matches := 0
		for i := 0; i+shift < len(av); i++ {
			if av[i+shift] == bv[i] {
				matches++
			}
		}
		if matches > 2 {
			t.Fatalf("derived streams look like shifted copies (shift=%d, matches=%d)", shift, matches)
		}
	}
}

func TestDeriveReproducible(t *testing.T) {
	a := Derive(99, 5)
	b := Derive(99, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive is not reproducible")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			v := r.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-ish sanity check on a small modulus.
	r := New(11)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has count %d, want about %.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(6)
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want about 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(7)
	var sum, sumSq float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm32(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate value %d in Perm32", v)
		}
		seen[v] = true
	}
}

func TestSampleKProperties(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%64 + 1
		k := int(kRaw) % 80
		r := New(seed)
		s := r.SampleK(n, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniform(t *testing.T) {
	// Every element of [0,n) should appear in a k-sample with probability
	// k/n; verify the empirical inclusion frequencies.
	r := New(17)
	const n, k, trials = 20, 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d sampled %d times, want about %.0f", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestFillDeterministic(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	New(23).Fill(a)
	New(23).Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Fill not deterministic")
		}
	}
	// And not all zero.
	zero := true
	for _, v := range a {
		if v != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("Fill produced all zeros")
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child and parent must produce different sequences.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split child mirrors parent %d/64 times", same)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(37)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, len(s))
	for _, v := range s {
		if seen[v] {
			t.Fatal("Shuffle lost an element")
		}
		seen[v] = true
	}
}

func BenchmarkMicroUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkMicroIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(12345)
	}
	_ = sink
}
