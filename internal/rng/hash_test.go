package rng

import (
	"math"
	"testing"
)

func TestHashDeterministicAndDistinct(t *testing.T) {
	a := Hash(7, 1, 2, 3)
	if a != Hash(7, 1, 2, 3) {
		t.Fatal("Hash not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for _, h := range []uint64{
		Hash(7, 1, 2, 4), Hash(7, 1, 3, 2), Hash(8, 1, 2, 3), Hash(7, 1, 2),
	} {
		if seen[h] {
			t.Fatalf("collision between distinct inputs: %x", h)
		}
		seen[h] = true
	}
}

func TestHashUnitUniformity(t *testing.T) {
	// Units derived from consecutive hash inputs should look uniform.
	const n = 20000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		u := Unit(Hash(42, uint64(i)))
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of range: %v", u)
		}
		sum += u
		buckets[int(u*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("hash units not uniform: mean %v", mean)
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d count %d far from expected %d", i, b, n/10)
		}
	}
}

func TestRemixSequenceDecorrelated(t *testing.T) {
	x := uint64(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		x = Remix(x)
		if seen[x] {
			t.Fatal("Remix cycled within 1000 steps")
		}
		seen[x] = true
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := New(3)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	// Empirical frequencies should track the analytic probabilities.
	for _, rank := range []int{0, 1, 9, 50} {
		want := z.Prob(rank)
		got := float64(counts[rank]) / n
		if math.Abs(got-want) > 0.01+want/5 {
			t.Errorf("rank %d: got freq %.4f want ~%.4f", rank, got, want)
		}
	}
	// Rank 0 must dominate rank 99 heavily at s=1.
	if counts[0] < 20*counts[99] {
		t.Errorf("insufficient skew: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfUniformAtZeroExponent(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("s=0 rank %d prob %v, want 0.1", i, z.Prob(i))
		}
	}
}
