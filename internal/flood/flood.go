// Package flood implements the naïve baseline the paper dismisses in §4:
// store an item by flooding it to every node, and search by flooding a
// query. It is correct and fast on a static expander (diameter O(log n)),
// but it costs Θ(n) messages per operation and Θ(n·|I|) total storage —
// the scalability wall that motivates the committee/landmark design.
// Experiments E9 and E12 quantify the comparison.
//
// Under churn a flooded item also *decays*: the flood is one-shot, so
// replacement nodes never receive old items, and copy counts erode at the
// churn rate — flooding buys no persistence without continuous re-flooding.
package flood

import (
	"sync"

	"dynp2p/internal/simnet"
)

// Message kinds.
const (
	// KindStore carries an item copy to be stored and re-flooded.
	KindStore uint8 = 0x50
	// KindQuery floods a search; Aux2 = searcher id.
	KindQuery uint8 = 0x51
	// KindReply answers a query directly to the searcher.
	KindReply uint8 = 0x52
)

// Result records a completed flood search.
type Result struct {
	Searcher simnet.NodeID
	Key      uint64
	Start    int
	Done     int
	Success  bool
}

// Handler is the flooding baseline protocol.
type Handler struct {
	states []state

	mu      sync.Mutex
	results []Result
	open    map[uint64]openSearch // key^searcher -> search bookkeeping
}

type openSearch struct {
	searcher simnet.NodeID
	key      uint64
	start    int
	deadline int
}

type state struct {
	items     map[uint64][]byte
	seenQuery map[uint64]bool // key^searcher marks
	fwdItems  []uint64        // items to forward to neighbours this round
	fwdQuery  []fq
}

type fq struct {
	key      uint64
	searcher simnet.NodeID
}

// NewHandler creates the baseline handler for an engine of n slots.
func NewHandler(n int) *Handler {
	return &Handler{states: make([]state, n), open: make(map[uint64]openSearch)}
}

// OnJoin implements simnet.Handler.
func (h *Handler) OnJoin(e *simnet.Engine, slot int, id simnet.NodeID, round int) {
	h.states[slot] = state{
		items:     make(map[uint64][]byte),
		seenQuery: make(map[uint64]bool),
	}
}

// OnLeave implements simnet.Handler.
func (h *Handler) OnLeave(e *simnet.Engine, slot int, id simnet.NodeID, round int) {}

// RequestStore floods (key, data) from the node at slot. Call between
// rounds.
func (h *Handler) RequestStore(e *simnet.Engine, slot int, key uint64, data []byte) {
	st := &h.states[slot]
	st.items[key] = append([]byte(nil), data...)
	st.fwdItems = append(st.fwdItems, key)
}

// RequestSearch floods a query for key from the node at slot. Call between
// rounds. ttl bounds the rounds until the search is recorded as failed.
func (h *Handler) RequestSearch(e *simnet.Engine, slot int, key uint64, ttl int) {
	st := &h.states[slot]
	id := e.IDAt(slot)
	mark := key ^ uint64(id)
	st.seenQuery[mark] = true
	st.fwdQuery = append(st.fwdQuery, fq{key: key, searcher: id})
	h.mu.Lock()
	h.open[mark] = openSearch{searcher: id, key: key, start: e.Round(), deadline: e.Round() + ttl}
	h.mu.Unlock()
	// Local hit resolves immediately.
	if _, ok := st.items[key]; ok {
		h.finish(mark, e.Round(), true)
	}
}

func (h *Handler) finish(mark uint64, round int, success bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	o, ok := h.open[mark]
	if !ok {
		return
	}
	delete(h.open, mark)
	h.results = append(h.results, Result{
		Searcher: o.searcher, Key: o.key, Start: o.start, Done: round, Success: success,
	})
}

// DrainResults returns finished searches, expiring overdue ones first.
// Call between rounds.
func (h *Handler) DrainResults(round int) []Result {
	h.mu.Lock()
	for mark, o := range h.open {
		if round >= o.deadline {
			delete(h.open, mark)
			h.results = append(h.results, Result{
				Searcher: o.searcher, Key: o.key, Start: o.start, Done: -1, Success: false,
			})
		}
	}
	r := h.results
	h.results = nil
	h.mu.Unlock()
	return r
}

// CopyCount returns the number of nodes holding key.
func (h *Handler) CopyCount(key uint64) int {
	c := 0
	for i := range h.states {
		if _, ok := h.states[i].items[key]; ok {
			c++
		}
	}
	return c
}

// HandleRound implements simnet.Handler.
func (h *Handler) HandleRound(ctx *simnet.Ctx) {
	st := &h.states[ctx.Slot]

	for i := range ctx.Inbox {
		m := &ctx.Inbox[i]
		switch m.Kind {
		case KindStore:
			if _, ok := st.items[m.Item]; !ok {
				st.items[m.Item] = append([]byte(nil), m.Blob...)
				st.fwdItems = append(st.fwdItems, m.Item)
			}
		case KindQuery:
			mark := m.Item ^ uint64(m.Aux2)
			if st.seenQuery[mark] {
				break
			}
			st.seenQuery[mark] = true
			if _, ok := st.items[m.Item]; ok {
				ctx.SendMsg(simnet.Msg{
					To: simnet.NodeID(m.Aux2), Kind: KindReply, Item: m.Item,
					Blob: st.items[m.Item],
				})
			}
			st.fwdQuery = append(st.fwdQuery, fq{key: m.Item, searcher: simnet.NodeID(m.Aux2)})
		case KindReply:
			h.finish(m.Item^uint64(ctx.ID), ctx.Round, true)
		}
	}

	// Forward pending floods to all current neighbours.
	if len(st.fwdItems) > 0 || len(st.fwdQuery) > 0 {
		var neighbors []simnet.NodeID
		neighbors = ctx.NeighborIDs(neighbors)
		for _, key := range st.fwdItems {
			for _, nb := range neighbors {
				ctx.SendMsg(simnet.Msg{To: nb, Kind: KindStore, Item: key, Blob: st.items[key]})
			}
		}
		for _, q := range st.fwdQuery {
			for _, nb := range neighbors {
				ctx.SendMsg(simnet.Msg{To: nb, Kind: KindQuery, Item: q.key, Aux2: uint64(q.searcher)})
			}
		}
		st.fwdItems = st.fwdItems[:0]
		st.fwdQuery = st.fwdQuery[:0]
	}
}
