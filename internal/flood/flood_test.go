package flood

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/simnet"
)

func newEngine(n int, law churn.Law) *simnet.Engine {
	return simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: 1, ProtocolSeed: 2,
		Strategy: churn.Uniform, Law: law,
	})
}

func TestFloodStoreReachesEveryone(t *testing.T) {
	e := newEngine(256, churn.ZeroLaw{})
	h := NewHandler(256)
	e.RunRound(h)
	h.RequestStore(e, 0, 42, []byte("payload"))
	// Expander diameter is O(log n); 15 rounds is ample for n=256.
	e.Run(h, 15)
	if c := h.CopyCount(42); c != 256 {
		t.Fatalf("flooded item reached %d/256 nodes", c)
	}
}

func TestFloodSearchSucceedsAndIsFast(t *testing.T) {
	e := newEngine(256, churn.ZeroLaw{})
	h := NewHandler(256)
	e.RunRound(h)
	h.RequestStore(e, 0, 7, []byte("x"))
	e.Run(h, 15)
	h.RequestSearch(e, 100, 7, 30)
	var res []Result
	for i := 0; i < 30 && len(res) == 0; i++ {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("flood search failed: %+v", res)
	}
	// Everyone has the item, so the local hit resolves instantly.
	if res[0].Done-res[0].Start > 2 {
		t.Fatalf("search took %d rounds, expected immediate", res[0].Done-res[0].Start)
	}
}

func TestFloodSearchWithoutLocalCopy(t *testing.T) {
	// Store only partially flooded (interrupted), then search from a node
	// without the item: query flood must find a holder.
	e := newEngine(256, churn.ZeroLaw{})
	h := NewHandler(256)
	e.RunRound(h)
	h.RequestStore(e, 0, 9, []byte("y"))
	e.Run(h, 2) // partial spread
	have := h.CopyCount(9)
	if have == 0 || have == 256 {
		t.Fatalf("expected partial spread, have %d copies", have)
	}
	// Find a node without the item.
	slot := -1
	for s := 0; s < 256; s++ {
		if _, ok := h.states[s].items[9]; !ok {
			slot = s
			break
		}
	}
	h.RequestSearch(e, slot, 9, 40)
	var res []Result
	for i := 0; i < 40 && len(res) == 0; i++ {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	if len(res) != 1 || !res[0].Success {
		t.Fatalf("query flood failed: %+v", res)
	}
}

func TestFloodSearchMissingItemExpires(t *testing.T) {
	e := newEngine(128, churn.ZeroLaw{})
	h := NewHandler(128)
	e.RunRound(h)
	h.RequestSearch(e, 5, 999, 10)
	var res []Result
	for i := 0; i < 15 && len(res) == 0; i++ {
		e.RunRound(h)
		res = append(res, h.DrainResults(e.Round())...)
	}
	if len(res) != 1 || res[0].Success {
		t.Fatalf("missing-item search should expire as failure: %+v", res)
	}
}

func TestFloodCopiesDecayUnderChurn(t *testing.T) {
	// One-shot flooding has no persistence: churn erodes the copies.
	e := newEngine(256, churn.FixedLaw{Count: 13})
	h := NewHandler(256)
	e.RunRound(h)
	h.RequestStore(e, 0, 3, []byte("z"))
	e.Run(h, 40) // let the flood saturate first
	full := h.CopyCount(3)
	e.Run(h, 120)
	later := h.CopyCount(3)
	if later >= full/2 {
		t.Fatalf("copies did not decay: %d -> %d", full, later)
	}
}

func TestFloodMessageCostIsLinear(t *testing.T) {
	// The scalability wall: one store costs Ω(n) messages.
	e := newEngine(512, churn.ZeroLaw{})
	h := NewHandler(512)
	e.RunRound(h)
	base := e.Metrics().MsgsSent
	h.RequestStore(e, 0, 1, []byte("w"))
	e.Run(h, 15)
	sent := e.Metrics().MsgsSent - base
	if sent < int64(512) {
		t.Fatalf("flood sent only %d messages; expected at least n", sent)
	}
}
