// Package ida implements Rabin's Information Dispersal Algorithm (IDA),
// the erasure-coding technique the paper's §4.4 layers under the storage
// protocol: a data item I is split into L pieces of |I|/K bytes each such
// that any K pieces reconstruct I exactly. The storage blow-up is the ratio
// L/K, a constant, instead of the Θ(log n) factor of plain replication.
//
// The dispersal matrix is an L×K Cauchy matrix over GF(2^8); every K×K
// submatrix of a Cauchy matrix is invertible, so any K distinct pieces
// suffice. Piece i carries its row index so the decoder can rebuild the
// right submatrix.
package ida

import (
	"errors"
	"fmt"

	"dynp2p/internal/gf256"
)

// Piece is one dispersed fragment of an item.
type Piece struct {
	Index int    // row of the dispersal matrix, in [0, L)
	Data  []byte // ceil(len(item)/K) bytes
}

// Coder encodes and decodes items for fixed parameters (K, L).
// A Coder is immutable after New and safe for concurrent use.
type Coder struct {
	k, l   int
	matrix *gf256.Matrix // L×K Cauchy dispersal matrix
}

// New returns a Coder that splits items into l pieces of which any k
// reconstruct. Requires 1 <= k <= l and k+l <= 256 (field-size limit of
// the Cauchy construction).
func New(k, l int) (*Coder, error) {
	if k < 1 || l < k {
		return nil, fmt.Errorf("ida: invalid parameters k=%d l=%d", k, l)
	}
	if k+l > 256 {
		return nil, fmt.Errorf("ida: k+l = %d exceeds 256", k+l)
	}
	return &Coder{k: k, l: l, matrix: gf256.Cauchy(l, k)}, nil
}

// K returns the reconstruction threshold.
func (c *Coder) K() int { return c.k }

// L returns the total number of pieces produced.
func (c *Coder) L() int { return c.l }

// Overhead returns the storage blow-up ratio L/K.
func (c *Coder) Overhead() float64 { return float64(c.l) / float64(c.k) }

// PieceLen returns the byte length of each piece for an item of itemLen
// bytes.
func (c *Coder) PieceLen(itemLen int) int {
	return (itemLen + c.k - 1) / c.k
}

// Encode splits item into L pieces. The item may be empty (pieces carry
// zero-length data). The input is not retained.
func (c *Coder) Encode(item []byte) []Piece {
	plen := c.PieceLen(len(item))
	// Arrange the item into K stripes of plen bytes (zero-padded).
	stripes := make([][]byte, c.k)
	for j := 0; j < c.k; j++ {
		s := make([]byte, plen)
		lo := j * plen
		if lo < len(item) {
			hi := lo + plen
			if hi > len(item) {
				hi = len(item)
			}
			copy(s, item[lo:hi])
		}
		stripes[j] = s
	}
	pieces := make([]Piece, c.l)
	for i := 0; i < c.l; i++ {
		row := c.matrix.Row(i)
		data := make([]byte, plen)
		for j := 0; j < c.k; j++ {
			gf256.MulAddSlice(data, stripes[j], row[j])
		}
		pieces[i] = Piece{Index: i, Data: data}
	}
	return pieces
}

// Errors returned by Decode.
var (
	ErrNotEnoughPieces = errors.New("ida: fewer than K distinct pieces")
	ErrBadPiece        = errors.New("ida: piece index out of range or length mismatch")
)

// Decode reconstructs the original item of length itemLen from any K or
// more distinct pieces. Extra pieces beyond K are ignored. Duplicated
// indices count once.
func (c *Coder) Decode(pieces []Piece, itemLen int) ([]byte, error) {
	plen := c.PieceLen(itemLen)
	// Select the first K distinct, well-formed pieces.
	chosen := make([]Piece, 0, c.k)
	seen := make(map[int]bool, c.k)
	for _, p := range pieces {
		if p.Index < 0 || p.Index >= c.l || len(p.Data) != plen {
			return nil, fmt.Errorf("%w: index=%d len=%d want len=%d",
				ErrBadPiece, p.Index, len(p.Data), plen)
		}
		if seen[p.Index] {
			continue
		}
		seen[p.Index] = true
		chosen = append(chosen, p)
		if len(chosen) == c.k {
			break
		}
	}
	if len(chosen) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughPieces, len(chosen), c.k)
	}
	rows := make([]int, c.k)
	for i, p := range chosen {
		rows[i] = p.Index
	}
	sub := c.matrix.SubMatrixRows(rows)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for a Cauchy matrix; guard anyway.
		return nil, fmt.Errorf("ida: dispersal submatrix singular: %v", err)
	}
	// stripes = inv * chosenData (matrix of K stripes).
	item := make([]byte, c.k*plen)
	for j := 0; j < c.k; j++ {
		stripe := item[j*plen : (j+1)*plen]
		row := inv.Row(j)
		for i := 0; i < c.k; i++ {
			gf256.MulAddSlice(stripe, chosen[i].Data, row[i])
		}
	}
	return item[:itemLen], nil
}

// TotalStoredBytes returns the total bytes stored across all L pieces for
// an item of itemLen bytes — used by experiment E10 to compare against
// replication's copies*itemLen.
func (c *Coder) TotalStoredBytes(itemLen int) int {
	return c.l * c.PieceLen(itemLen)
}
