package ida

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dynp2p/internal/rng"
)

func TestRoundTripAllSubsets(t *testing.T) {
	// Every K-subset of pieces must reconstruct exactly.
	const k, l = 3, 6
	c, err := New(k, l)
	if err != nil {
		t.Fatal(err)
	}
	item := []byte("the quick brown fox jumps over the lazy dog")
	pieces := c.Encode(item)
	if len(pieces) != l {
		t.Fatalf("got %d pieces, want %d", len(pieces), l)
	}
	var idx [k]int
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sel := make([]Piece, k)
			for i, j := range idx {
				sel[i] = pieces[j]
			}
			got, err := c.Decode(sel, len(item))
			if err != nil {
				t.Fatalf("decode subset %v: %v", idx, err)
			}
			if !bytes.Equal(got, item) {
				t.Fatalf("subset %v reconstructed wrong data", idx)
			}
			return
		}
		for i := start; i < l; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed uint64, kRaw, extraRaw, lenRaw uint8) bool {
		k := int(kRaw)%10 + 1
		l := k + int(extraRaw)%10
		itemLen := int(lenRaw)
		c, err := New(k, l)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		item := make([]byte, itemLen)
		r.Fill(item)
		pieces := c.Encode(item)
		// Shuffle and take a random K-subset.
		r.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
		got, err := c.Decode(pieces[:k], itemLen)
		if err != nil {
			return false
		}
		return bytes.Equal(got, item)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWithExtraAndDuplicatePieces(t *testing.T) {
	c, _ := New(4, 8)
	item := []byte("hello, dispersal world")
	pieces := c.Encode(item)
	// Duplicates of one index plus all pieces: should still work.
	input := append([]Piece{pieces[2], pieces[2], pieces[2]}, pieces...)
	got, err := c.Decode(input, len(item))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, item) {
		t.Fatal("decode with duplicates returned wrong data")
	}
}

func TestDecodeTooFewPieces(t *testing.T) {
	c, _ := New(5, 9)
	item := make([]byte, 100)
	pieces := c.Encode(item)
	// 4 distinct pieces (one duplicated to 5 entries) must fail.
	input := []Piece{pieces[0], pieces[1], pieces[2], pieces[3], pieces[3]}
	if _, err := c.Decode(input, len(item)); !errors.Is(err, ErrNotEnoughPieces) {
		t.Fatalf("want ErrNotEnoughPieces, got %v", err)
	}
}

func TestDecodeBadPiece(t *testing.T) {
	c, _ := New(3, 5)
	item := make([]byte, 30)
	pieces := c.Encode(item)
	bad := pieces[0]
	bad.Index = 99
	if _, err := c.Decode([]Piece{bad, pieces[1], pieces[2]}, len(item)); !errors.Is(err, ErrBadPiece) {
		t.Fatalf("want ErrBadPiece for bad index, got %v", err)
	}
	short := pieces[0]
	short.Data = short.Data[:len(short.Data)-1]
	if _, err := c.Decode([]Piece{short, pieces[1], pieces[2]}, len(item)); !errors.Is(err, ErrBadPiece) {
		t.Fatalf("want ErrBadPiece for short piece, got %v", err)
	}
}

func TestEmptyItem(t *testing.T) {
	c, _ := New(3, 6)
	pieces := c.Encode(nil)
	got, err := c.Decode(pieces[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decode of empty item returned %d bytes", len(got))
	}
}

func TestItemLenNotMultipleOfK(t *testing.T) {
	c, _ := New(4, 7)
	for _, n := range []int{1, 2, 3, 5, 17, 101} {
		item := make([]byte, n)
		rng.New(uint64(n)).Fill(item)
		pieces := c.Encode(item)
		got, err := c.Decode(pieces[3:7], n)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !bytes.Equal(got, item) {
			t.Fatalf("len %d: wrong reconstruction", n)
		}
	}
}

func TestParameterValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(5, 4); err == nil {
		t.Fatal("l<k accepted")
	}
	if _, err := New(130, 130); err == nil {
		t.Fatal("k+l>256 accepted")
	}
	if _, err := New(1, 1); err != nil {
		t.Fatalf("k=l=1 rejected: %v", err)
	}
}

func TestOverheadAndSizes(t *testing.T) {
	c, _ := New(5, 15)
	if c.K() != 5 || c.L() != 15 {
		t.Fatal("accessors wrong")
	}
	if c.Overhead() != 3.0 {
		t.Fatalf("overhead = %v, want 3", c.Overhead())
	}
	if c.PieceLen(100) != 20 {
		t.Fatalf("PieceLen(100) = %d, want 20", c.PieceLen(100))
	}
	if c.PieceLen(101) != 21 {
		t.Fatalf("PieceLen(101) = %d, want 21", c.PieceLen(101))
	}
	if c.TotalStoredBytes(100) != 300 {
		t.Fatalf("TotalStoredBytes(100) = %d, want 300", c.TotalStoredBytes(100))
	}
}

func TestPieceLossTolerance(t *testing.T) {
	// Simulate churn destroying pieces: with l-k pieces lost, decode still
	// succeeds; with one more lost, it fails.
	c, _ := New(6, 14)
	item := make([]byte, 512)
	rng.New(9).Fill(item)
	pieces := c.Encode(item)
	surviving := pieces[:6] // exactly K survivors
	got, err := c.Decode(surviving, len(item))
	if err != nil || !bytes.Equal(got, item) {
		t.Fatalf("decode with exactly K survivors failed: %v", err)
	}
	if _, err := c.Decode(pieces[:5], len(item)); err == nil {
		t.Fatal("decode with K-1 survivors should fail")
	}
}

func BenchmarkMicroIDAEncode(b *testing.B) {
	c, _ := New(10, 20)
	item := make([]byte, 64*1024)
	rng.New(1).Fill(item)
	b.SetBytes(int64(len(item)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Encode(item)
	}
}

func BenchmarkMicroIDADecode(b *testing.B) {
	c, _ := New(10, 20)
	item := make([]byte, 64*1024)
	rng.New(1).Fill(item)
	pieces := c.Encode(item)
	sel := pieces[5:15]
	b.SetBytes(int64(len(item)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(sel, len(item)); err != nil {
			b.Fatal(err)
		}
	}
}
