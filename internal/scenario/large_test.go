package scenario

import (
	"flag"
	"testing"
)

// M4-style large-scale emulation knobs (cf. the Kademlia lab harness that
// makes ≥1000-node runs with configurable packet drop a one-flag affair):
//
//	go test ./internal/scenario -run LargeScale \
//	    -scenario.nodes 2000 -scenario.drop 0.15 -scenario.seed 3
var (
	largeNodes = flag.Int("scenario.nodes", 1000, "network size for the large-scale scenario test")
	largeDrop  = flag.Float64("scenario.drop", 0.10, "message drop probability for the large-scale scenario test")
	largeSeed  = flag.Uint64("scenario.seed", 7, "seed for the large-scale scenario test")
)

// TestLargeScaleLossyRetrieval runs the lossy builtin at >= 1000 nodes and
// asserts that storage and search stay serviceable under the configured
// message drop rate: completed retrievals succeed >= 90% of the time.
func TestLargeScaleLossyRetrieval(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale scenario test skipped in -short mode")
	}
	spec, err := Builtin("lossy", *largeNodes, *largeSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec.Phases {
		spec.Phases[i].Fault.Drop = *largeDrop
	}

	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Total
	t.Logf("n=%d drop=%.2f seed=%d: issued=%d completed=%d ok=%d fail=%d lost=%d (success %.1f%%), complete p50=%d p95=%d",
		*largeNodes, *largeDrop, *largeSeed,
		tot.Issued, tot.Completed, tot.Succeeded, tot.Failed, tot.Lost,
		100*tot.SuccessRate(), tot.CompleteP50, tot.CompleteP95)

	if tot.Completed < 50 {
		t.Fatalf("too few completed retrievals to judge SLOs: %d", tot.Completed)
	}
	if rate := tot.SuccessRate(); rate < 0.90 {
		t.Fatalf("success rate %.3f below the 0.90 SLO at %.0f%% drop", rate, 100**largeDrop)
	}

	// The fault model must actually have been exercised at the requested
	// intensity (within 2 percentage points of the configured drop rate).
	eng := rep.Stats.Engine
	if eng.MsgsSent == 0 {
		t.Fatal("no traffic")
	}
	observed := float64(eng.MsgsFaultDropped) / float64(eng.MsgsSent)
	if diff := observed - *largeDrop; diff < -0.02 || diff > 0.02 {
		t.Fatalf("observed drop rate %.3f far from configured %.3f", observed, *largeDrop)
	}
}
