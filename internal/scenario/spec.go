// Package scenario is the declarative experiment engine for the dynamic
// P2P simulator: it turns "run an experiment" into data instead of code.
//
// A Spec (a plain Go struct, JSON-loadable) describes a timeline of
// phases. Each phase sets three independent knobs:
//
//   - a churn law and rate (steady paper-law churn, fixed counts,
//     bursts, ramps, or quiet) — compiled into a single pre-committed
//     churn.Schedule so the adversary stays oblivious;
//   - an open-loop workload (store/retrieve arrivals per round, Poisson
//     distributed, with Zipf-distributed key popularity); and
//   - a fault model (probabilistic message drop and bounded delivery
//     delay, drawn from the adversary's seed so runs stay deterministic).
//
// The Runner executes a Spec on a dynp2p.Network, tracks per-request SLOs
// (success rate, locate/complete latency quantiles), optionally emits a
// per-round JSONL trace, and produces a final Report table. A library of
// named builtin scenarios (see builtin.go) covers the standard shapes:
// steady-state, flash-crowd retrieval, churn bursts, lossy networks,
// oldest-first attrition, and erasure-coded storage over lossy links.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"dynp2p"
	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/protocol"
	"dynp2p/internal/walks"
)

// Spec is a complete declarative description of one experiment run.
// Everything the run does is a pure function of the Spec, so specs can be
// stored, diffed, and replayed byte-for-byte.
type Spec struct {
	// Name labels the run in traces and reports.
	Name string `json:"name"`
	// N is the stable network size (>= 8).
	N int `json:"n"`
	// Degree is the expander degree (even; default 8).
	Degree int `json:"degree,omitempty"`
	// Seed drives the whole run: adversary (churn + faults), protocol,
	// and workload draw from independent streams derived from it.
	Seed uint64 `json:"seed"`
	// Strategy picks which slots churn replaces:
	// uniform | oldest | youngest | sweep (default uniform).
	Strategy string `json:"strategy,omitempty"`
	// ErasureK > 0 enables IDA erasure coding with threshold K.
	ErasureK int `json:"erasureK,omitempty"`
	// Keys is the size of the key universe the workload stores and
	// retrieves from (default 16).
	Keys int `json:"keys,omitempty"`
	// ItemLen is the payload size in bytes (default 128).
	ItemLen int `json:"itemLen,omitempty"`
	// ZipfS is the key-popularity exponent for retrievals: rank i is
	// retrieved with probability ∝ 1/(i+1)^s. Default 0.9 (classic
	// web-cache skew); use a tiny positive value for ~uniform popularity.
	ZipfS float64 `json:"zipfS,omitempty"`
	// Topology selects the run's edge dynamics (default: the oracle
	// re-randomizing every round) and spectral telemetry cadence.
	Topology Topology `json:"topology,omitempty"`
	// Cache enables hot-key caching (DESIGN.md §10) for the whole run.
	// Phases may override it mid-run (Phase.Cache); the zero value
	// disables caching.
	Cache CacheSpec `json:"cache,omitempty"`
	// Routing selects how protocol messages travel (DESIGN.md §11): the
	// zero value is the oracle (one-round teleports); mode "overlay"
	// walks every message edge-by-edge over the expander with congestion
	// accounting. Phases may override it mid-run (Phase.Routing).
	Routing RoutingSpec `json:"routing,omitempty"`
	// Phases is the timeline; phases run in order after a soup warm-up.
	Phases []Phase `json:"phases"`
}

// Topology is the spec's topology block: which edge dynamics maintain
// the expander, at what degree, and how often to measure its spectral
// gap. Historically both mode and degree were hardwired; specs and
// builtins now select them.
type Topology struct {
	// Edges names the edge dynamics:
	// rerandomize | static | periodic | ring+random | self-healing.
	// Empty means rerandomize. Phases may override it mid-run (Phase.Edges).
	Edges string `json:"edges,omitempty"`
	// Degree is the expander degree (even); overrides Spec.Degree when
	// both are set.
	Degree int `json:"degree,omitempty"`
	// Period is the re-randomisation period for periodic mode.
	Period int `json:"period,omitempty"`
	// SpectralEvery estimates the second eigenvalue λ every k rounds
	// (0 = off); measured values appear in traces and phase reports.
	SpectralEvery int `json:"spectralEvery,omitempty"`
}

// Phase is one segment of the timeline.
type Phase struct {
	Name   string   `json:"name"`
	Rounds int      `json:"rounds"`
	Churn  Churn    `json:"churn,omitempty"`
	Load   Workload `json:"load,omitempty"`
	Fault  Fault    `json:"fault,omitempty"`
	// Edges, when set, switches the topology's edge dynamics at the
	// start of this phase (same names as Topology.Edges). Empty keeps
	// whatever mode is in force — switches persist across later phases.
	Edges string `json:"edges,omitempty"`
	// Cache, when non-nil, reconfigures the hot-key cache at the start
	// of this phase (capacity 0 switches caching off). Like Edges, the
	// override persists until a later phase overrides it again.
	Cache *CacheSpec `json:"cache,omitempty"`
	// Routing, when non-nil, reconfigures message routing at the start
	// of this phase (mode "oracle" switches the overlay off, dropping
	// and accounting in-flight walkers). Like Edges and Cache, the
	// override persists until a later phase overrides it again.
	Routing *RoutingSpec `json:"routing,omitempty"`
}

// CacheSpec configures the hot-key cache (DESIGN.md §10): per-node
// Capacity in items (0 = caching off), TTL in rounds (0 = 2× the
// landmark TTL), and the walk-seeded replication probability SeedRate
// (0 = 0.5).
type CacheSpec struct {
	Capacity int     `json:"capacity,omitempty"`
	TTL      int     `json:"ttl,omitempty"`
	SeedRate float64 `json:"seedRate,omitempty"`
}

// config compiles the cache block for the facade.
func (c CacheSpec) config() dynp2p.CacheConfig {
	return dynp2p.CacheConfig{Capacity: c.Capacity, TTL: c.TTL, SeedRate: c.SeedRate}
}

// check validates a cache block (shared by the spec and phase levels).
func (c CacheSpec) check() error {
	switch {
	case c.Capacity < 0:
		return fmt.Errorf("cache capacity must be >= 0 (got %d)", c.Capacity)
	case c.TTL < 0:
		return fmt.Errorf("cache ttl must be >= 0 (got %d)", c.TTL)
	case c.SeedRate < 0 || c.SeedRate > 1:
		return fmt.Errorf("cache seedRate must be in [0, 1] (got %g)", c.SeedRate)
	}
	return nil
}

// RoutingSpec configures overlay message routing (DESIGN.md §11): Mode
// is "oracle" (default) or "overlay"; WalkBudget is the per-message
// forward budget (0 = auto, 4n/(d+1)); LinkCapacity bounds forwards out
// of one node per round (0 = unlimited); QueueLimit bounds parked
// walkers per node (0 = default 64).
type RoutingSpec struct {
	Mode         string `json:"mode,omitempty"`
	WalkBudget   int    `json:"walkBudget,omitempty"`
	LinkCapacity int    `json:"linkCapacity,omitempty"`
	QueueLimit   int    `json:"queueLimit,omitempty"`
}

// config compiles the routing block for the facade.
func (r RoutingSpec) config() dynp2p.RoutingConfig {
	mode, _ := dynp2p.ParseRoutingMode(r.Mode) // validated by check()
	return dynp2p.RoutingConfig{
		Mode: mode, WalkBudget: r.WalkBudget,
		LinkCapacity: r.LinkCapacity, QueueLimit: r.QueueLimit,
	}
}

// check validates a routing block (shared by the spec and phase levels).
func (r RoutingSpec) check() error {
	if _, err := dynp2p.ParseRoutingMode(r.Mode); err != nil {
		return fmt.Errorf("routing mode %q (want oracle|overlay)", r.Mode)
	}
	switch {
	case r.WalkBudget < 0:
		return fmt.Errorf("routing walkBudget must be >= 0 (got %d)", r.WalkBudget)
	case r.LinkCapacity < 0:
		return fmt.Errorf("routing linkCapacity must be >= 0 (got %d)", r.LinkCapacity)
	case r.QueueLimit < 0:
		return fmt.Errorf("routing queueLimit must be >= 0 (got %d)", r.QueueLimit)
	}
	return nil
}

// Churn configures the churn law for one phase. Exactly one shape is
// active, chosen by precedence: Burst* > RampTo/RampFrom > Fixed > Rate >
// quiet. The zero value means no churn.
type Churn struct {
	// Rate is C in the paper's law C·n/log^{1+δ} n per round.
	Rate float64 `json:"rate,omitempty"`
	// Delta is δ in the paper's law (default 0.5).
	Delta float64 `json:"delta,omitempty"`
	// Fixed replaces exactly this many nodes per round.
	Fixed int `json:"fixed,omitempty"`
	// RampFrom/RampTo linearly ramp a fixed per-round count across the
	// phase (either may be 0; active when RampTo differs from RampFrom).
	RampFrom int `json:"rampFrom,omitempty"`
	RampTo   int `json:"rampTo,omitempty"`
	// BurstPeriod/BurstWidth/BurstCount replace BurstCount nodes per
	// round for the first BurstWidth rounds of every BurstPeriod rounds.
	BurstPeriod int `json:"burstPeriod,omitempty"`
	BurstWidth  int `json:"burstWidth,omitempty"`
	BurstCount  int `json:"burstCount,omitempty"`
}

// law compiles the phase churn config into a churn.Law. phaseRounds is
// the phase duration (used to span ramps).
func (c Churn) law(phaseRounds int) churn.Law {
	switch {
	case c.BurstPeriod > 0 && c.BurstWidth > 0 && c.BurstCount > 0:
		return churn.BurstLaw{Period: c.BurstPeriod, Width: c.BurstWidth, Count: c.BurstCount}
	case c.RampFrom != c.RampTo:
		return churn.RampLaw{
			From:   churn.FixedLaw{Count: c.RampFrom},
			To:     churn.FixedLaw{Count: c.RampTo},
			Rounds: phaseRounds,
		}
	case c.Fixed > 0:
		return churn.FixedLaw{Count: c.Fixed}
	case c.Rate > 0:
		d := c.Delta
		if d == 0 {
			d = 0.5
		}
		return churn.PaperLaw(c.Rate, d)
	default:
		return churn.ZeroLaw{}
	}
}

// Workload is an open-loop arrival process: each round the runner issues
// Poisson(StoreRate) store requests and Poisson(RetrieveRate) retrievals.
// Store requests walk through the key universe in order (each key is
// stored once); retrievals pick among already-stored keys by Zipf rank.
type Workload struct {
	StoreRate    float64 `json:"storeRate,omitempty"`
	RetrieveRate float64 `json:"retrieveRate,omitempty"`
}

// Fault configures the phase's message fault model (see simnet.FaultModel).
// The zero value means reliable links.
type Fault struct {
	// Drop is the independent per-message loss probability in [0, 1).
	Drop float64 `json:"drop,omitempty"`
	// DelayProb delays a surviving message with this probability ...
	DelayProb float64 `json:"delayProb,omitempty"`
	// MaxDelay ... by a uniform 1..MaxDelay extra rounds.
	MaxDelay int `json:"maxDelay,omitempty"`
}

// model compiles the fault config; nil means reliable links.
func (f Fault) model() dynp2p.FaultModel {
	fc := dynp2p.FaultConfig{DropProb: f.Drop, DelayProb: f.DelayProb, MaxDelay: f.MaxDelay}
	if fc.Zero() {
		return nil
	}
	return fc
}

// normalize fills defaults in place.
func (s *Spec) normalize() {
	if s.Topology.Degree != 0 {
		s.Degree = s.Topology.Degree
	}
	if s.Degree == 0 {
		s.Degree = 8
	}
	if s.Strategy == "" {
		s.Strategy = "uniform"
	}
	if s.Keys == 0 {
		s.Keys = 16
	}
	if s.ItemLen == 0 {
		s.ItemLen = 128
	}
	if s.ZipfS == 0 {
		s.ZipfS = 0.9
	}
}

// Validate checks the spec and returns a descriptive error on the first
// problem found.
func (s *Spec) Validate() error {
	switch {
	case s.N < 8:
		return fmt.Errorf("scenario %q: n must be >= 8 (got %d)", s.Name, s.N)
	case s.Degree%2 != 0 || s.Degree <= 0:
		return fmt.Errorf("scenario %q: degree must be positive and even (got %d)", s.Name, s.Degree)
	case len(s.Phases) == 0:
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	case s.Keys < 1:
		return fmt.Errorf("scenario %q: keys must be >= 1 (got %d)", s.Name, s.Keys)
	case s.ItemLen < 1:
		return fmt.Errorf("scenario %q: itemLen must be >= 1 (got %d)", s.Name, s.ItemLen)
	case s.ZipfS < 0:
		return fmt.Errorf("scenario %q: zipfS must be >= 0 (got %g)", s.Name, s.ZipfS)
	case s.ErasureK < 0:
		return fmt.Errorf("scenario %q: erasureK must be >= 0 (got %d)", s.Name, s.ErasureK)
	}
	if _, err := s.strategy(); err != nil {
		return err
	}
	if _, err := s.edgeMode(); err != nil {
		return err
	}
	if s.Topology.Period < 0 {
		return fmt.Errorf("scenario %q: topology period must be >= 0 (got %d)", s.Name, s.Topology.Period)
	}
	if s.Topology.SpectralEvery < 0 {
		return fmt.Errorf("scenario %q: spectralEvery must be >= 0 (got %d)", s.Name, s.Topology.SpectralEvery)
	}
	if err := s.Cache.check(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Routing.check(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	for i, p := range s.Phases {
		if p.Cache != nil {
			if err := p.Cache.check(); err != nil {
				return fmt.Errorf("scenario %q phase %d (%s): %w", s.Name, i, p.Name, err)
			}
		}
		if p.Routing != nil {
			if err := p.Routing.check(); err != nil {
				return fmt.Errorf("scenario %q phase %d (%s): %w", s.Name, i, p.Name, err)
			}
		}
		if p.Edges != "" {
			m, err := expander.ParseEdgeMode(p.Edges)
			if err != nil {
				return fmt.Errorf("scenario %q phase %d (%s): %w", s.Name, i, p.Name, err)
			}
			if m == expander.Periodic && s.Topology.Period < 1 {
				return fmt.Errorf("scenario %q phase %d (%s): periodic topology needs topology.period >= 1", s.Name, i, p.Name)
			}
		}
		switch {
		case p.Rounds <= 0:
			return fmt.Errorf("scenario %q phase %d (%s): rounds must be > 0", s.Name, i, p.Name)
		case p.Load.StoreRate < 0 || p.Load.RetrieveRate < 0:
			return fmt.Errorf("scenario %q phase %d (%s): negative workload rate", s.Name, i, p.Name)
		case p.Fault.Drop < 0 || p.Fault.Drop >= 1:
			return fmt.Errorf("scenario %q phase %d (%s): drop must be in [0, 1)", s.Name, i, p.Name)
		case p.Fault.DelayProb < 0 || p.Fault.DelayProb > 1 || p.Fault.MaxDelay < 0:
			return fmt.Errorf("scenario %q phase %d (%s): invalid delay config", s.Name, i, p.Name)
		case p.Churn.Rate < 0 || p.Churn.Fixed < 0 || p.Churn.RampFrom < 0 || p.Churn.RampTo < 0 || p.Churn.BurstCount < 0:
			return fmt.Errorf("scenario %q phase %d (%s): negative churn config", s.Name, i, p.Name)
		case p.Churn.Delta < 0:
			return fmt.Errorf("scenario %q phase %d (%s): churn delta must be >= 0", s.Name, i, p.Name)
		case p.Churn.BurstPeriod > 0 && p.Churn.BurstWidth > p.Churn.BurstPeriod:
			return fmt.Errorf("scenario %q phase %d (%s): burstWidth %d exceeds burstPeriod %d (the burst would never pause)",
				s.Name, i, p.Name, p.Churn.BurstWidth, p.Churn.BurstPeriod)
		}
	}
	return nil
}

// edgeMode parses the topology block's Edges field (empty = the oracle
// default, rerandomize).
func (s *Spec) edgeMode() (expander.EdgeMode, error) {
	if s.Topology.Edges == "" {
		return expander.Rerandomize, nil
	}
	m, err := expander.ParseEdgeMode(s.Topology.Edges)
	if err != nil {
		return 0, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if m == expander.Periodic && s.Topology.Period < 1 {
		return 0, fmt.Errorf("scenario %q: periodic topology needs period >= 1", s.Name)
	}
	return m, nil
}

// strategy parses the Strategy field.
func (s *Spec) strategy() (dynp2p.Strategy, error) {
	switch strings.ToLower(s.Strategy) {
	case "", "uniform":
		return dynp2p.Uniform, nil
	case "oldest":
		return dynp2p.OldestFirst, nil
	case "youngest":
		return dynp2p.YoungestFirst, nil
	case "sweep":
		return dynp2p.SweepBurst, nil
	default:
		return 0, fmt.Errorf("scenario %q: unknown strategy %q (want uniform|oldest|youngest|sweep)", s.Name, s.Strategy)
	}
}

// WarmupRounds returns the soup warm-up prepended to the timeline: one
// walk length plus slack, matching dynp2p.Network.WarmupRounds.
func (s *Spec) WarmupRounds() int {
	return walks.DefaultParams(s.N).WalkLength + 3
}

// TotalRounds returns warm-up plus the sum of phase durations plus the
// final drain (one search TTL of workload-free rounds that lets in-flight
// retrievals finish or expire).
func (s *Spec) TotalRounds() int {
	t := s.WarmupRounds() + s.DrainRounds()
	for _, p := range s.Phases {
		t += p.Rounds
	}
	return t
}

// DrainRounds returns the length of the workload-free tail of the run:
// the derived search TTL plus slack, so every retrieval issued in the
// last phase round either completes or expires before the run ends.
func (s *Spec) DrainRounds() int {
	wp := walks.DefaultParams(s.N)
	return protocol.DefaultParams(s.N, wp.WalkLength).SearchTTL + 4
}

// schedule compiles the per-phase churn configs into one pre-committed
// churn.Schedule covering warm-up (phase 0's law), every phase, and the
// quiet drain tail.
func (s *Spec) schedule() churn.Schedule {
	segs := make([]churn.Segment, 0, len(s.Phases)+1)
	warm := s.WarmupRounds()
	segs = append(segs, churn.Segment{Rounds: warm, Law: s.Phases[0].Churn.law(warm)})
	for _, p := range s.Phases {
		segs = append(segs, churn.Segment{Rounds: p.Rounds, Law: p.Churn.law(p.Rounds)})
	}
	// After the last segment the Schedule is quiet, which is exactly the
	// drain semantics.
	return churn.Schedule{Segments: segs}
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields so typos in
// hand-written specs fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and parses a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: reading spec: %w", err)
	}
	return ParseSpec(data)
}

// MarshalIndent renders the spec as formatted JSON (for -dump and tests).
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
