package scenario

import (
	"fmt"
	"sort"

	"dynp2p/internal/churn"
	"dynp2p/internal/walks"
)

// Builder constructs a named scenario spec for a network size and seed.
// Phase durations scale with the derived walk length T = Θ(log n), the
// natural time unit of the protocol (Period = 2T, SearchTTL = 6T).
type Builder func(n int, seed uint64) Spec

type builtin struct {
	name  string
	desc  string
	build Builder
}

var builtins = []builtin{
	{
		name: "steady",
		desc: "steady-state: paper-law churn, moderate mixed workload",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			return Spec{
				Name: "steady", N: n, Seed: seed,
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5, RetrieveRate: 0.2}},
					{Name: "serve", Rounds: 8 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 1}},
				},
			}
		},
	},
	{
		name: "flash-crowd",
		desc: "retrieval rate spikes 10x on Zipf-hot keys, then cools down",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			return Spec{
				Name: "flash-crowd", N: n, Seed: seed, ZipfS: 1.1,
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5}},
					{Name: "quiet", Rounds: 2 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 0.3}},
					{Name: "crowd", Rounds: 4 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 3}},
					{Name: "cooldown", Rounds: 2 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 0.3}},
				},
			}
		},
	},
	{
		name: "flash-crowd-cached",
		desc: "flash-crowd with hot-key caching: walk-seeded replicas absorb the spike",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			// Same timeline and churn as flash-crowd, but a steeper Zipf
			// (the crowd hammers a handful of keys) and full seeding.
			// Capacity matches the key universe so the measured win is
			// the caching mechanism itself; the EXPERIMENTS.md sweep
			// (-cachecap) charts what capacity contention costs.
			return Spec{
				Name: "flash-crowd-cached", N: n, Seed: seed, ZipfS: 3.0,
				Keys:  8,
				Cache: CacheSpec{Capacity: 8, SeedRate: 1},
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5}},
					{Name: "quiet", Rounds: 2 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 0.3}},
					{Name: "crowd", Rounds: 6 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 3}},
					{Name: "cooldown", Rounds: 2 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 0.3}},
				},
			}
		},
	},
	{
		name: "churn-burst",
		desc: "calm network hit by periodic replacement bursts, then recovery",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			return Spec{
				Name: "churn-burst", N: n, Seed: seed,
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5, RetrieveRate: 0.2}},
					{Name: "calm", Rounds: 2 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 1}},
					{Name: "burst", Rounds: 4 * T,
						Churn: Churn{BurstPeriod: T, BurstWidth: max(1, T/4), BurstCount: max(2, n/16)},
						Load:  Workload{RetrieveRate: 1}},
					{Name: "recover", Rounds: 3 * T,
						Load: Workload{RetrieveRate: 1}},
				},
			}
		},
	},
	{
		name: "lossy",
		desc: "10% message drop plus bounded delays on every link",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			lossy := Fault{Drop: 0.10, DelayProb: 0.2, MaxDelay: 2}
			return Spec{
				Name: "lossy", N: n, Seed: seed,
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5}, Fault: lossy},
					{Name: "serve", Rounds: 6 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{RetrieveRate: 1.5}, Fault: lossy},
				},
			}
		},
	},
	{
		name: "attrition",
		desc: "oldest-first adversary ramps up until long-lived state collapses",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			return Spec{
				Name: "attrition", N: n, Seed: seed, Strategy: "oldest",
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.25},
						Load: Workload{StoreRate: 0.5, RetrieveRate: 0.2}},
					// Ramp the oldest-first rate from a survivable C≈0.2
					// to a lethal C≈0.6: early grind succeeds, then
					// committees stop outliving their handover period.
					{Name: "grind", Rounds: 8 * T,
						Churn: Churn{RampFrom: paperCount(n, 0.2), RampTo: paperCount(n, 0.6)},
						Load:  Workload{RetrieveRate: 1}},
				},
			}
		},
	},
	{
		name: "topology-storm",
		desc: "churn bursts against static, oracle, and self-healing topologies",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			burst := Churn{BurstPeriod: T, BurstWidth: max(1, T/4), BurstCount: max(2, n/12)}
			calm := Churn{Rate: 0.5}
			serve := Workload{RetrieveRate: 1}
			return Spec{
				Name: "topology-storm", N: n, Seed: seed,
				// Spectral telemetry every round: the whole point of the
				// scenario is charting λ as each topology takes the same
				// punishment.
				Topology: Topology{Edges: "static", SpectralEvery: 1},
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: calm,
						Load: Workload{StoreRate: 0.5, RetrieveRate: 0.2}},
					{Name: "static-storm", Rounds: 3 * T, Churn: burst, Load: serve},
					{Name: "oracle-calm", Rounds: 2 * T, Edges: "rerandomize", Churn: calm, Load: serve},
					{Name: "oracle-storm", Rounds: 3 * T, Edges: "rerandomize", Churn: burst, Load: serve},
					{Name: "heal-calm", Rounds: 2 * T, Edges: "self-healing", Churn: calm, Load: serve},
					{Name: "heal-storm", Rounds: 3 * T, Edges: "self-healing", Churn: burst, Load: serve},
				},
			}
		},
	},
	{
		name: "hot-path-congestion",
		desc: "overlay-routed Zipf flash crowd; hot-key caching shortens walks and sheds link load",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			crowd := Workload{RetrieveRate: 25}
			// Every protocol message hops the expander edge-by-edge, so the
			// Zipf crowd's converging walks pile load onto the links around
			// the hot committees. The two crowd phases differ only in
			// caching: walk-seeded replicas let searches terminate early at
			// a holder, which shows up directly as lower hop quantiles,
			// fewer budget drops, and a smaller max link load. Capacity is
			// left unlimited on purpose — a finite cap clamps the max-link
			// gauge to the cap in any saturated round, which would erase
			// exactly the cold-vs-cached contrast this scenario charts.
			return Spec{
				Name: "hot-path-congestion", N: n, Seed: seed, ZipfS: 3.0,
				Keys:    8,
				Routing: RoutingSpec{Mode: "overlay"},
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.5},
						Load: Workload{StoreRate: 0.5}},
					{Name: "crowd-cold", Rounds: 4 * T, Churn: Churn{Rate: 0.5},
						Load: crowd},
					{Name: "crowd-cached", Rounds: 4 * T, Churn: Churn{Rate: 0.5},
						Cache: &CacheSpec{Capacity: 8, SeedRate: 1},
						Load:  crowd},
				},
			}
		},
	},
	{
		name: "erasure-lossy",
		desc: "IDA erasure-coded storage (K=4) over a lossy network",
		build: func(n int, seed uint64) Spec {
			T := unit(n)
			lossy := Fault{Drop: 0.08, DelayProb: 0.15, MaxDelay: 2}
			return Spec{
				Name: "erasure-lossy", N: n, Seed: seed, ErasureK: 4,
				Phases: []Phase{
					{Name: "seed", Rounds: 3 * T, Churn: Churn{Rate: 0.25},
						Load: Workload{StoreRate: 0.5}, Fault: lossy},
					{Name: "serve", Rounds: 6 * T, Churn: Churn{Rate: 0.25},
						Load: Workload{RetrieveRate: 1.5}, Fault: lossy},
				},
			}
		},
	},
}

// unit returns the scenario time unit for size n: the walk length T.
func unit(n int) int { return walks.DefaultParams(n).WalkLength }

// paperCount converts a paper-law rate C into the per-round replacement
// count ⌊C·n/ln^{1.5} n⌋ (δ = 0.5), for laws that take fixed counts.
func paperCount(n int, c float64) int {
	return churn.RateLaw{C: c, K: 1.5}.PerRound(n, 0)
}

// Names returns the builtin scenario names, sorted.
func Names() []string {
	names := make([]string, len(builtins))
	for i, b := range builtins {
		names[i] = b.name
	}
	sort.Strings(names)
	return names
}

// Describe returns name/description pairs in Names() order.
func Describe() [][2]string {
	out := make([][2]string, 0, len(builtins))
	for _, name := range Names() {
		for _, b := range builtins {
			if b.name == name {
				out = append(out, [2]string{b.name, b.desc})
			}
		}
	}
	return out
}

// Builtin builds the named scenario for size n and seed. The name must be
// one of Names().
func Builtin(name string, n int, seed uint64) (Spec, error) {
	for _, b := range builtins {
		if b.name == name {
			s := b.build(n, seed)
			s.normalize()
			if err := s.Validate(); err != nil {
				return Spec{}, fmt.Errorf("builtin %q: %w", name, err)
			}
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, Names())
}
