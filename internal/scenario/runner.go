package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dynp2p"
	"dynp2p/internal/expander"
	"dynp2p/internal/rng"
	"dynp2p/internal/telemetry"
)

// Options configures a Run beyond the Spec itself.
type Options struct {
	// Trace, when non-nil, receives one JSON object per simulated round
	// (JSONL). Trace output is deterministic in the Spec.
	Trace io.Writer
	// OpTrace, when non-nil, receives one JSON object per traced
	// operation lifecycle event (start/hop/done JSONL) from the
	// telemetry tracer. Deterministic in the Spec.
	OpTrace io.Writer
	// Metrics, when non-nil, receives a Prometheus text snapshot of the
	// full telemetry registry after the run.
	Metrics io.Writer
	// PhaseProf, when non-nil, enables the engine's round-phase profiler
	// and receives its per-round JSONL stream. Wall-clock timing: NOT
	// deterministic, diagnostics only.
	PhaseProf io.Writer
}

// TraceRecord is one line of the per-round JSONL trace. Every counter
// field is a per-round delta, not a cumulative total: Churned, Msgs,
// FaultDrop, Delayed, Repairs, and the Ops*/HopEvents trio are all
// computed as differences of cumulative engine/telemetry counters across
// the round, while Stores/Retrieves/Done/OK/Lost count this round's
// events directly. Lambda is a point sample, present only on rounds the
// spectral telemetry measured one.
type TraceRecord struct {
	Round     int    `json:"round"`
	Phase     string `json:"phase"`
	Churned   int    `json:"churned"`
	Stores    int    `json:"stores"`    // store requests issued this round
	Retrieves int    `json:"retrieves"` // retrievals issued this round
	Done      int    `json:"done"`      // retrievals completed this round
	OK        int    `json:"ok"`        // ... of which succeeded
	Lost      int    `json:"lost"`      // searchers churned out this round
	Msgs      int64  `json:"msgs"`      // messages sent this round
	FaultDrop int64  `json:"faultDrop"` // fault-model drops this round
	Delayed   int64  `json:"delayed"`   // fault-model delays this round
	// Repairs counts overlay port-pair repairs this round (self-healing
	// topologies only); Lambda is the spectral-gap estimate, present only
	// on rounds where the topology block's cadence measured one.
	Repairs int64    `json:"repairs,omitempty"`
	Lambda  *float64 `json:"lambda,omitempty"`
	// Lifecycle-tracer activity this round: sampled operations started
	// and resolved, and hop (message-delivery) events recorded.
	OpsStarted int64 `json:"opsStarted,omitempty"`
	OpsDone    int64 `json:"opsDone,omitempty"`
	HopEvents  int64 `json:"hopEvents,omitempty"`
	// Hot-key cache activity this round: retrievals resolved from a
	// cached copy, and replica-side serves of cached bytes. Always zero
	// when caching is off.
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheServed int64 `json:"cacheServed,omitempty"`
	// Overlay-routing activity this round (always zero under the
	// oracle): per-edge forwards, walkers parked at congested nodes, and
	// routed messages dropped (budget, queue overflow, churn, or dead
	// target).
	RoutedFwd    int64 `json:"routedFwd,omitempty"`
	RoutedQueued int64 `json:"routedQueued,omitempty"`
	RoutedDrops  int64 `json:"routedDrops,omitempty"`
}

// routeDrops sums a route snapshot's four drop counters.
func routeDrops(m dynp2p.RouteMetrics) int64 {
	return m.DroppedBudget + m.DroppedQueueFull + m.DroppedChurn + m.DroppedDead
}

// request tracks one in-flight retrieval issued by the runner.
type request struct {
	phase  int // issuing phase index
	issued int // issuing round
}

// reqKey identifies an active retrieval: the protocol allows one active
// search per (node, key).
type reqKey struct {
	id  dynp2p.NodeID
	key uint64
}

// segMeta records a finished timeline segment and its engine-metric deltas.
type segMeta struct {
	name    string
	rounds  int
	phase   int // index into Spec.Phases, or -1 for warm-up/drain
	repl    int64
	fdrop   int64
	fdelay  int64
	repairs int64
	lamMax  float64 // largest λ measured during the segment (0 = none)
	// Overlay-routing deltas for the segment: hop-count quantiles over
	// messages delivered in it, drops, and the largest per-node forward
	// count in any of its rounds. routed is false under the oracle.
	routed  bool
	hopsP50 int64
	hopsP99 int64
	rdrops  int64
	maxLink int64
}

type runner struct {
	spec Spec
	nw   *dynp2p.Network
	// wr drives the workload: arrival counts, issuer choice, key
	// popularity. Independent of the adversary and protocol streams.
	wr    *rng.Stream
	zipf  *rng.Zipf
	trace io.Writer

	payload map[uint64][]byte // key -> stored bytes, for verification
	stored  []uint64          // keys stored so far, in store order
	nextKey int

	outstanding map[reqKey]request

	accums []sloAccum // one per spec phase
	total  sloAccum

	prev      dynp2p.Stats // snapshot for per-round deltas
	prevTrace [5]int64     // ops started / done / hop events / cache hits / cache serves
	segs      []segMeta
}

// Run executes the spec and returns its report. The run is deterministic
// in the Spec: same spec, same report and trace, byte for byte.
func Run(spec Spec, opt Options) (*Report, error) {
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	strat, err := spec.strategy()
	if err != nil {
		return nil, err
	}
	edges, err := spec.edgeMode()
	if err != nil {
		return nil, err
	}
	nw := dynp2p.New(dynp2p.Config{
		N: spec.N, Degree: spec.Degree, Seed: spec.Seed,
		ChurnLaw: spec.schedule(), Strategy: strat,
		ErasureK: spec.ErasureK,
		Fault:    spec.Phases[0].Fault.model(),
		Cache:    spec.Cache.config(),
		Routing:  spec.Routing.config(),
		Edges:    edges, EdgePeriod: spec.Topology.Period,
		SpectralEvery: spec.Topology.SpectralEvery,
		// Scenario runs trace every operation: the report's hop-count and
		// rounds-to-resolve distributions come from the lifecycle tracer.
		TraceSampleEvery: 1,
		Profile:          opt.PhaseProf != nil,
	})
	if opt.OpTrace != nil {
		nw.Tracer().StreamTo(opt.OpTrace)
	}
	if opt.PhaseProf != nil {
		nw.Profiler().StreamTo(opt.PhaseProf)
	}
	r := &runner{
		spec:        spec,
		nw:          nw,
		wr:          rng.Derive(spec.Seed, 0x3ce7a410),
		zipf:        rng.NewZipf(spec.Keys, spec.ZipfS),
		trace:       opt.Trace,
		payload:     make(map[uint64][]byte, spec.Keys),
		outstanding: make(map[reqKey]request),
		accums:      make([]sloAccum, len(spec.Phases)),
	}

	// Warm-up: let the walk soup mix under phase 0's churn and faults,
	// no workload yet.
	r.runSegment(-1, "warmup", spec.WarmupRounds(), Workload{})
	for i := range spec.Phases {
		p := &spec.Phases[i]
		nw.SetFault(p.Fault.model())
		if p.Edges != "" {
			// Validated by spec.Validate; a phase-level switch persists
			// until another phase overrides it.
			m, err := expander.ParseEdgeMode(p.Edges)
			if err != nil {
				return nil, fmt.Errorf("scenario %q phase %d: %w", spec.Name, i, err)
			}
			nw.SetEdgeMode(m, spec.Topology.Period)
		}
		if p.Cache != nil {
			// Like Edges: a phase-level cache override persists until a
			// later phase overrides it again.
			nw.SetCache(p.Cache.config())
		}
		if p.Routing != nil {
			// Like Edges and Cache: a phase-level routing override
			// persists until a later phase overrides it again.
			nw.SetRouting(p.Routing.config())
		}
		r.runSegment(i, p.Name, p.Rounds, p.Load)
	}
	// Drain: workload stops, the last phase's faults persist, churn goes
	// quiet (the schedule has ended); in-flight retrievals finish or
	// expire within one search TTL.
	r.runSegment(-1, "drain", spec.DrainRounds(), Workload{})

	// Anything still outstanding never reported (its issuer survived but
	// e.g. never assembled a search committee): count as lost.
	for k, req := range r.outstanding {
		r.accums[req.phase].slo.Lost++
		r.total.slo.Lost++
		delete(r.outstanding, k)
	}

	if opt.OpTrace != nil {
		if err := nw.Tracer().Flush(); err != nil {
			return nil, fmt.Errorf("scenario %q: op trace: %w", spec.Name, err)
		}
	}
	if opt.PhaseProf != nil {
		if err := nw.Profiler().Flush(); err != nil {
			return nil, fmt.Errorf("scenario %q: phase profile: %w", spec.Name, err)
		}
	}
	if opt.Metrics != nil {
		if err := telemetry.WritePrometheus(opt.Metrics, nw.Telemetry().Snapshot()); err != nil {
			return nil, fmt.Errorf("scenario %q: metrics snapshot: %w", spec.Name, err)
		}
	}
	return r.report(), nil
}

// runSegment simulates rounds with the given workload, attributing issued
// requests to spec phase pi (-1 = none).
func (r *runner) runSegment(pi int, name string, rounds int, load Workload) {
	start := r.nw.Stats()
	routed := r.nw.Routing().Mode == dynp2p.RoutingOverlay
	reg := r.nw.Telemetry()
	var hopsStart telemetry.HistValue
	if routed {
		// Per-phase hop quantiles come from the per-search true overlay
		// path length (not the per-message hop histogram, whose tail is
		// dominated by background committee traffic in every phase).
		hopsStart = reg.HistogramValue("dynp2p_search_path_hops")
		// The max-link gauge is a running SetMax; resetting it at segment
		// start makes the segment's reading a true per-phase maximum.
		reg.Gauge("dynp2p_route_max_link_load", "largest per-slot forward count in any single round").Set(0)
	}
	var lamMax float64
	for i := 0; i < rounds; i++ {
		stores := r.issueStores(pi, load.StoreRate)
		retrieves := r.issueRetrieves(pi, load.RetrieveRate)
		r.nw.Run(1)
		if ovm := r.nw.Overlay().Metrics(); ovm.LambdaRound == r.nw.Round()-1 && ovm.Lambda > lamMax {
			lamMax = ovm.Lambda
		}
		done, ok := r.drainResults()
		lost := r.reapLost()
		if r.trace != nil {
			r.writeTrace(name, stores, retrieves, done, ok, lost)
		}
	}
	end := r.nw.Stats()
	seg := segMeta{
		name: name, rounds: rounds, phase: pi,
		repl:   end.Engine.Replacements - start.Engine.Replacements,
		fdrop:  end.Engine.MsgsFaultDropped - start.Engine.MsgsFaultDropped,
		fdelay: end.Engine.MsgsDelayed - start.Engine.MsgsDelayed,
		repairs: end.Overlay.Splices + end.Overlay.DirectPairs -
			start.Overlay.Splices - start.Overlay.DirectPairs,
		lamMax: lamMax,
	}
	if routed {
		seg.routed = true
		hops := histDelta(reg.HistogramValue("dynp2p_search_path_hops"), hopsStart)
		seg.hopsP50 = hops.Quantile(0.50)
		seg.hopsP99 = hops.Quantile(0.99)
		seg.rdrops = routeDrops(end.Route) - routeDrops(start.Route)
		seg.maxLink = reg.Gauge("dynp2p_route_max_link_load", "largest per-slot forward count in any single round").Value()
	}
	r.segs = append(r.segs, seg)
}

// histDelta returns the bucket-wise difference a - b: the histogram of
// observations recorded between the two snapshots.
func histDelta(a, b telemetry.HistValue) telemetry.HistValue {
	for i := range a.Buckets {
		a.Buckets[i] -= b.Buckets[i]
	}
	a.Count -= b.Count
	a.Sum -= b.Sum
	return a
}

// issueStores issues Poisson(rate) store requests. Each stores the next
// unstored key of the universe; once every key is stored further arrivals
// are counted as skipped. Stores are issued from old nodes (best of four
// random slots by join round): the paper's Theorem 3 guarantees storage
// for nodes that have been in the network a while, not for newcomers.
func (r *runner) issueStores(pi int, rate float64) int {
	n := r.poisson(rate)
	issued := 0
	for i := 0; i < n; i++ {
		if pi < 0 {
			continue
		}
		if r.nextKey >= r.spec.Keys {
			r.accums[pi].slo.StoresSkipped++
			r.total.slo.StoresSkipped++
			continue
		}
		key := keyFor(r.nextKey)
		data := r.itemData(key)
		r.nextKey++
		r.payload[key] = data
		r.stored = append(r.stored, key)
		r.nw.Store(r.pickOldSlot(), key, data)
		r.accums[pi].slo.StoresIssued++
		r.total.slo.StoresIssued++
		issued++
	}
	return issued
}

// issueRetrieves issues Poisson(rate) retrievals. Keys are drawn by Zipf
// popularity rank over the stored set; issuers are uniform random slots
// (retrieval is an any-node operation). An arrival that finds nothing
// stored yet, or whose candidate issuers are all busy retrieving the same
// key, is counted as skipped.
func (r *runner) issueRetrieves(pi int, rate float64) int {
	n := r.poisson(rate)
	issued := 0
	for i := 0; i < n; i++ {
		if pi < 0 {
			continue
		}
		if len(r.stored) == 0 {
			r.accums[pi].slo.Skipped++
			r.total.slo.Skipped++
			continue
		}
		key := r.stored[r.zipf.Next(r.wr)%len(r.stored)]
		placed := false
		for try := 0; try < 8; try++ {
			slot := r.wr.Intn(r.spec.N)
			k := reqKey{id: r.nw.IDAt(slot), key: key}
			if _, busy := r.outstanding[k]; busy {
				continue
			}
			r.outstanding[k] = request{phase: pi, issued: r.nw.Round()}
			r.nw.Retrieve(slot, key, r.payload[key])
			placed = true
			break
		}
		if placed {
			r.accums[pi].slo.Issued++
			r.total.slo.Issued++
			issued++
		} else {
			r.accums[pi].slo.Skipped++
			r.total.slo.Skipped++
		}
	}
	return issued
}

// drainResults consumes completed retrievals and records their SLOs
// against the phase that issued them.
func (r *runner) drainResults() (done, ok int) {
	for _, res := range r.nw.Results() {
		k := reqKey{id: res.Searcher, key: res.Key}
		req, known := r.outstanding[k]
		if !known {
			continue // not issued by this runner (defensive)
		}
		delete(r.outstanding, k)
		locate, complete := -1, -1
		if res.Found >= 0 {
			locate = res.Found - res.Start
		}
		if res.Done >= 0 {
			complete = res.Done - res.Start
		}
		r.accums[req.phase].record(locate, complete, res.Success, res.Cached)
		r.total.record(locate, complete, res.Success, res.Cached)
		done++
		if res.Success {
			ok++
		}
	}
	return done, ok
}

// reapLost removes outstanding retrievals whose searcher has been churned
// out: departed nodes report nothing, the model's failure mode.
func (r *runner) reapLost() int {
	lost := 0
	for k, req := range r.outstanding {
		if r.nw.IsLive(k.id) {
			continue
		}
		delete(r.outstanding, k)
		r.accums[req.phase].slo.Lost++
		r.total.slo.Lost++
		lost++
	}
	return lost
}

func (r *runner) writeTrace(phase string, stores, retrieves, done, ok, lost int) {
	cur := r.nw.Stats()
	rec := TraceRecord{
		Round:     r.nw.Round() - 1,
		Phase:     phase,
		Churned:   int(cur.Engine.Replacements - r.prev.Engine.Replacements),
		Stores:    stores,
		Retrieves: retrieves,
		Done:      done,
		OK:        ok,
		Lost:      lost,
		Msgs:      cur.Engine.MsgsSent - r.prev.Engine.MsgsSent,
		FaultDrop: cur.Engine.MsgsFaultDropped - r.prev.Engine.MsgsFaultDropped,
		Delayed:   cur.Engine.MsgsDelayed - r.prev.Engine.MsgsDelayed,
		Repairs: cur.Overlay.Splices + cur.Overlay.DirectPairs -
			r.prev.Overlay.Splices - r.prev.Overlay.DirectPairs,
	}
	if cur.Overlay.LambdaRound == rec.Round {
		l := cur.Overlay.Lambda
		rec.Lambda = &l
	}
	reg := r.nw.Telemetry()
	ops := reg.CounterValue("dynp2p_trace_ops_total")
	dones := reg.CounterValue("dynp2p_trace_ops_done_total")
	hops := reg.CounterValue("dynp2p_trace_hop_events_total")
	chits := reg.CounterValue("dynp2p_cache_hits_total")
	cserv := reg.CounterValue("dynp2p_cache_served_total")
	rec.OpsStarted = ops - r.prevTrace[0]
	rec.OpsDone = dones - r.prevTrace[1]
	rec.HopEvents = hops - r.prevTrace[2]
	rec.CacheHits = chits - r.prevTrace[3]
	rec.CacheServed = cserv - r.prevTrace[4]
	r.prevTrace = [5]int64{ops, dones, hops, chits, cserv}
	rec.RoutedFwd = cur.Route.Forwards - r.prev.Route.Forwards
	rec.RoutedQueued = cur.Route.Parked - r.prev.Route.Parked
	rec.RoutedDrops = routeDrops(cur.Route) - routeDrops(r.prev.Route)
	r.prev = cur
	b, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("scenario: trace marshal: %v", err))
	}
	r.trace.Write(append(b, '\n'))
}

func (r *runner) report() *Report {
	rep := &Report{
		Spec:   r.spec,
		Rounds: r.nw.Round(),
		Total:  r.total.finalize(),
		Stats:  r.nw.Stats(),
	}
	reg := r.nw.Telemetry()
	for name, dst := range map[string]**telemetry.HistValue{
		"dynp2p_search_hops":              &rep.SearchHops,
		"dynp2p_search_rounds_to_resolve": &rep.SearchRounds,
		"dynp2p_store_hops":               &rep.StoreHops,
		"dynp2p_store_rounds_to_settle":   &rep.StoreRounds,
		"dynp2p_search_rounds_cached":     &rep.CachedRounds,
		"dynp2p_search_rounds_uncached":   &rep.UncachedRounds,
		"dynp2p_route_hops":               &rep.RouteHops,
		"dynp2p_route_queue_depth":        &rep.RouteQueueDepth,
		"dynp2p_search_path_hops":         &rep.SearchPath,
	} {
		if hv := reg.HistogramValue(name); hv.Count > 0 {
			h := hv
			*dst = &h
		}
	}
	for _, seg := range r.segs {
		pr := PhaseReport{
			Name: seg.name, Rounds: seg.rounds,
			Replacements: seg.repl, FaultDropped: seg.fdrop, Delayed: seg.fdelay,
			Repairs: seg.repairs, LambdaMax: seg.lamMax,
			Routed: seg.routed, RouteHopsP50: seg.hopsP50, RouteHopsP99: seg.hopsP99,
			RouteDrops: seg.rdrops, MaxLinkLoad: seg.maxLink,
		}
		if seg.phase >= 0 {
			pr.SLO = r.accums[seg.phase].finalize()
		}
		rep.Phases = append(rep.Phases, pr)
	}
	return rep
}

// pickOldSlot returns the oldest of four random slots (power-of-choices
// bias toward Core nodes without scanning the whole network).
func (r *runner) pickOldSlot() int {
	e := r.nw.Engine()
	best := r.wr.Intn(r.spec.N)
	bestJoin := e.JoinRound(best)
	for i := 0; i < 3; i++ {
		s := r.wr.Intn(r.spec.N)
		if jr := e.JoinRound(s); jr < bestJoin {
			best, bestJoin = s, jr
		}
	}
	return best
}

// poisson draws a Poisson(lambda) variate (Knuth's method; fine for the
// per-round arrival rates scenarios use).
func (r *runner) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.wr.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// itemData builds the deterministic payload for a key.
func (r *runner) itemData(key uint64) []byte {
	buf := make([]byte, r.spec.ItemLen)
	for j := range buf {
		buf[j] = byte(key + uint64(j)*131)
	}
	return buf
}

// keyFor maps a key index to its item key (offset so keys are visibly
// distinct from slot numbers in traces).
func keyFor(i int) uint64 { return uint64(100 + i) }
