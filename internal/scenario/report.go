package scenario

import (
	"fmt"
	"io"
	"strings"

	"dynp2p"
	"dynp2p/internal/stats"
	"dynp2p/internal/telemetry"
)

// SLO aggregates per-request service-level outcomes for a slice of the
// run (one phase, or the whole run). A retrieval is attributed to the
// phase that issued it, no matter when it completes.
type SLO struct {
	// Store-side counts. A store is "skipped" when the key universe is
	// exhausted (every key already stored).
	StoresIssued  int `json:"storesIssued"`
	StoresSkipped int `json:"storesSkipped,omitempty"`

	// Retrieval-side counts. "Skipped" retrieval arrivals found nothing
	// stored yet (or every candidate issuer busy with the same key);
	// "lost" searchers were churned out before reporting an outcome.
	Issued    int `json:"issued"`
	Skipped   int `json:"skipped,omitempty"`
	Completed int `json:"completed"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Lost      int `json:"lost,omitempty"`

	// Latency quantiles in rounds, over successful retrievals only.
	// Locate is request -> storage-committee roster learned; Complete is
	// request -> item bytes reconstructed and verified.
	LocateP50   int `json:"locateP50"`
	LocateP95   int `json:"locateP95"`
	LocateP99   int `json:"locateP99"`
	CompleteP50 int `json:"completeP50"`
	CompleteP95 int `json:"completeP95"`
	CompleteP99 int `json:"completeP99"`
	CompleteMax int `json:"completeMax"`

	// Hot-key cache outcomes: CacheHits counts retrievals resolved from
	// a cached copy (own-node hit or a replica's serve beating the
	// committee path); CacheServedP50 is the complete-latency P50 over
	// just those. Both zero when caching is off.
	CacheHits      int `json:"cacheHits,omitempty"`
	CacheServedP50 int `json:"cacheServedP50,omitempty"`
}

// SuccessRate returns succeeded / completed (1 when nothing completed, so
// an idle phase does not read as an outage).
func (s SLO) SuccessRate() float64 {
	if s.Completed == 0 {
		return 1
	}
	return float64(s.Succeeded) / float64(s.Completed)
}

// sloAccum is the mutable accumulator behind an SLO.
type sloAccum struct {
	slo      SLO
	locate   stats.Counter
	complete stats.Counter
	cached   stats.Counter // complete latency over cache-resolved retrievals
}

func (a *sloAccum) record(locate, complete int, success, cached bool) {
	a.slo.Completed++
	if !success {
		a.slo.Failed++
		return
	}
	a.slo.Succeeded++
	if locate >= 0 {
		a.locate.Add(locate)
	}
	if complete >= 0 {
		a.complete.Add(complete)
		if cached {
			a.cached.Add(complete)
		}
	}
	if cached {
		a.slo.CacheHits++
	}
}

func (a *sloAccum) finalize() SLO {
	s := a.slo
	s.LocateP50 = a.locate.Quantile(0.50)
	s.LocateP95 = a.locate.Quantile(0.95)
	s.LocateP99 = a.locate.Quantile(0.99)
	s.CompleteP50 = a.complete.Quantile(0.50)
	s.CompleteP95 = a.complete.Quantile(0.95)
	s.CompleteP99 = a.complete.Quantile(0.99)
	s.CompleteMax = a.complete.Max()
	s.CacheServedP50 = a.cached.Quantile(0.50)
	return s
}

// PhaseReport is the outcome of one phase.
type PhaseReport struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
	// Replacements is the number of churn replacements during the phase;
	// FaultDropped/Delayed count the fault model's interventions on
	// messages sent during it.
	Replacements int64 `json:"replacements"`
	FaultDropped int64 `json:"faultDropped"`
	Delayed      int64 `json:"delayed"`
	// Repairs counts self-healing overlay port-pair repairs during the
	// phase; LambdaMax is the largest spectral-gap estimate measured in
	// it (0 when telemetry is off).
	Repairs   int64   `json:"repairs,omitempty"`
	LambdaMax float64 `json:"lambdaMax,omitempty"`
	// Overlay-routing outcomes for the phase (Routed false = oracle):
	// quantiles of true overlay path length per search resolved during
	// it (total hops across every message the search generated), routed
	// drops, and the largest per-node forward count in any of its rounds.
	Routed       bool  `json:"routed,omitempty"`
	RouteHopsP50 int64 `json:"routeHopsP50,omitempty"`
	RouteHopsP99 int64 `json:"routeHopsP99,omitempty"`
	RouteDrops   int64 `json:"routeDrops,omitempty"`
	MaxLinkLoad  int64 `json:"maxLinkLoad,omitempty"`
	SLO          SLO   `json:"slo"`
}

// Report is the final result of a scenario run. It is deterministic in
// the Spec: two runs of the same spec render byte-identical reports.
type Report struct {
	Spec   Spec          `json:"spec"`
	Rounds int           `json:"rounds"` // total rounds simulated (incl. warm-up and drain)
	Phases []PhaseReport `json:"phases"`
	Total  SLO           `json:"total"`
	Stats  dynp2p.Stats  `json:"stats"`
	// Per-operation distributions from the lifecycle tracer (scenario
	// runs trace every store and search): delivered protocol messages
	// per operation, and rounds from issue to resolution/settlement.
	// Nil when no operation of that kind completed.
	SearchHops   *telemetry.HistValue `json:"searchHops,omitempty"`
	SearchRounds *telemetry.HistValue `json:"searchRounds,omitempty"`
	StoreHops    *telemetry.HistValue `json:"storeHops,omitempty"`
	StoreRounds  *telemetry.HistValue `json:"storeRounds,omitempty"`
	// Search rounds-to-resolve split by resolution path, present only
	// when caching produced/skipped hits respectively.
	CachedRounds   *telemetry.HistValue `json:"cachedRounds,omitempty"`
	UncachedRounds *telemetry.HistValue `json:"uncachedRounds,omitempty"`
	// Overlay-routing distributions, present only under routed modes:
	// forwards per delivered message, queue depth at parking events, and
	// true overlay path length accumulated per traced search.
	RouteHops       *telemetry.HistValue `json:"routeHops,omitempty"`
	RouteQueueDepth *telemetry.HistValue `json:"routeQueueDepth,omitempty"`
	SearchPath      *telemetry.HistValue `json:"searchPath,omitempty"`
}

// Fprint renders the report as an aligned text table (the idiom of
// internal/expt tables and cmd/churnsim output).
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== scenario %s: n=%d seed=%d strategy=%s", r.Spec.Name, r.Spec.N, r.Spec.Seed, r.Spec.Strategy)
	if r.Spec.ErasureK > 0 {
		fmt.Fprintf(w, " erasureK=%d", r.Spec.ErasureK)
	}
	fmt.Fprintf(w, " ==\n")
	fmt.Fprintf(w, "%d phases over %d rounds (incl. %d warm-up, %d drain)\n\n",
		len(r.Spec.Phases), r.Rounds, r.Spec.WarmupRounds(), r.Spec.DrainRounds())

	routed := false
	for _, p := range r.Phases {
		if p.Routed {
			routed = true
		}
	}
	header := []string{"phase", "rounds", "churned", "stores", "retr", "ok", "fail", "lost", "succ%", "p50", "p95", "p99", "cHit", "cP50"}
	if routed {
		header = append(header, "hopP50", "hopP99", "rDrop", "maxLink")
	}
	rows := make([][]string, 0, len(r.Phases)+1)
	for _, p := range r.Phases {
		row := phaseRow(p.Name, p.Rounds, p.Replacements, p.SLO)
		if routed {
			row = append(row, routedCells(p.Routed, p.RouteHopsP50, p.RouteHopsP99, p.RouteDrops, p.MaxLinkLoad)...)
		}
		rows = append(rows, row)
	}
	totalRounds := 0
	var totalRepl, totalRDrops, totalMaxLink int64
	for _, p := range r.Phases {
		totalRounds += p.Rounds
		totalRepl += p.Replacements
		totalRDrops += p.RouteDrops
		if p.MaxLinkLoad > totalMaxLink {
			totalMaxLink = p.MaxLinkLoad
		}
	}
	total := phaseRow("TOTAL", totalRounds, totalRepl, r.Total)
	if routed {
		var hp50, hp99 int64
		if r.SearchPath != nil {
			hp50, hp99 = r.SearchPath.Quantile(0.50), r.SearchPath.Quantile(0.99)
		}
		total = append(total, routedCells(true, hp50, hp99, totalRDrops, totalMaxLink)...)
	}
	rows = append(rows, total)
	printAligned(w, header, rows)

	st := r.Stats
	fmt.Fprintf(w, "\ntraffic: %d msgs sent, %d delivered, %d churn-dropped, %d fault-dropped, %d delayed\n",
		st.Engine.MsgsSent, st.Engine.MsgsDelivered, st.Engine.MsgsDropped,
		st.Engine.MsgsFaultDropped, st.Engine.MsgsDelayed)
	if st.Engine.Rounds > 0 {
		fmt.Fprintf(w, "load: %.1f bits/node/round mean, %d bits max per node-round\n",
			float64(st.Engine.BitsSent)/float64(r.Spec.N)/float64(st.Engine.Rounds),
			st.Engine.MaxNodeBitsRound)
	}
	if ov := st.Overlay; ov.PortsSevered > 0 || ov.SpectralRounds > 0 {
		fmt.Fprintf(w, "topology: %d edges severed by churn, %d sample splices, %d direct pairs",
			ov.PortsSevered/2, ov.Splices, ov.DirectPairs)
		if ov.SpectralRounds > 0 {
			fmt.Fprintf(w, "; λ last %.3f, max %.3f (%d rounds measured)",
				ov.Lambda, ov.LambdaMax, ov.SpectralRounds)
		}
		fmt.Fprintln(w)
		// Per-phase spectral maxima, for runs that switch topologies.
		if ov.SpectralRounds > 0 {
			fmt.Fprintf(w, "λmax by phase:")
			for _, p := range r.Phases {
				if p.LambdaMax > 0 {
					fmt.Fprintf(w, " %s=%.3f", p.Name, p.LambdaMax)
				}
			}
			fmt.Fprintln(w)
		}
	}
	soupTotal := st.Soup.Completed + st.Soup.Died + st.Soup.Overdue
	if soupTotal > 0 {
		fmt.Fprintf(w, "soup: %d walks completed of %d finished (%.1f%% survival)\n",
			st.Soup.Completed, soupTotal, 100*float64(st.Soup.Completed)/float64(soupTotal))
	}
	fmt.Fprintf(w, "committees: %d created, %d handovers, %d resignations; churn: %d replacements\n",
		st.Proto.CommitteesCreated, st.Proto.Handovers, st.Proto.Resignations, st.Engine.Replacements)
	if pc := st.Proto; pc.CacheInserts > 0 || pc.CacheHits > 0 {
		rate := 0.0
		if r.Total.Succeeded > 0 {
			rate = 100 * float64(r.Total.CacheHits) / float64(r.Total.Succeeded)
		}
		fmt.Fprintf(w, "cache: %d hits (%.1f%% of successes), %d replica serves, %d seeds, %d inserts, %d evictions, %d expired\n",
			pc.CacheHits, rate, pc.CacheServed, pc.CacheSeeds, pc.CacheInserts, pc.CacheEvictions, pc.CacheExpired)
	}
	if r.Spec.ErasureK > 0 {
		fmt.Fprintf(w, "erasure: %d re-dispersals, %d items lost to piece shortage\n",
			st.Proto.IDARecoded, st.Proto.IDALost)
	}
	if r.SearchHops != nil || r.StoreHops != nil {
		fmt.Fprintf(w, "\nper-operation distributions (lifecycle tracer):\n")
		if r.SearchHops != nil {
			telemetry.FprintHistogram(w, "search hops", *r.SearchHops)
		}
		if r.SearchRounds != nil {
			telemetry.FprintHistogram(w, "search rounds-to-resolve", *r.SearchRounds)
		}
		if r.StoreHops != nil {
			telemetry.FprintHistogram(w, "store hops", *r.StoreHops)
		}
		if r.StoreRounds != nil {
			telemetry.FprintHistogram(w, "store rounds-to-settle", *r.StoreRounds)
		}
		if r.CachedRounds != nil {
			telemetry.FprintHistogram(w, "search rounds (cache-served)", *r.CachedRounds)
		}
		if r.UncachedRounds != nil {
			telemetry.FprintHistogram(w, "search rounds (committee-served)", *r.UncachedRounds)
		}
		if r.RouteHops != nil {
			telemetry.FprintHistogram(w, "route hops per delivery", *r.RouteHops)
		}
		if r.RouteQueueDepth != nil {
			telemetry.FprintHistogram(w, "route queue depth at parking", *r.RouteQueueDepth)
		}
		if r.SearchPath != nil {
			telemetry.FprintHistogram(w, "search overlay path length", *r.SearchPath)
		}
	}
	if routed {
		rt := r.Stats.Route
		drops := rt.DroppedBudget + rt.DroppedQueueFull + rt.DroppedChurn + rt.DroppedDead
		fmt.Fprintf(w, "\nrouting: %d routed sends, %d delivered over %d forwards; %d parked, %d dropped (%d budget, %d queue-full, %d churn, %d dead)\n",
			rt.Sent, rt.Delivered, rt.Forwards, rt.Parked, drops,
			rt.DroppedBudget, rt.DroppedQueueFull, rt.DroppedChurn, rt.DroppedDead)
	}
}

// routedCells renders the routed columns for one table row; a phase that
// ran in oracle mode shows dashes instead of misleading zeros.
func routedCells(routed bool, hp50, hp99, drops, maxLink int64) []string {
	if !routed {
		return []string{"-", "-", "-", "-"}
	}
	return []string{
		fmt.Sprintf("%d", hp50),
		fmt.Sprintf("%d", hp99),
		fmt.Sprintf("%d", drops),
		fmt.Sprintf("%d", maxLink),
	}
}

func phaseRow(name string, rounds int, repl int64, s SLO) []string {
	return []string{
		name,
		fmt.Sprintf("%d", rounds),
		fmt.Sprintf("%d", repl),
		fmt.Sprintf("%d", s.StoresIssued),
		fmt.Sprintf("%d", s.Issued),
		fmt.Sprintf("%d", s.Succeeded),
		fmt.Sprintf("%d", s.Failed),
		fmt.Sprintf("%d", s.Lost),
		fmt.Sprintf("%.1f", 100*s.SuccessRate()),
		fmt.Sprintf("%d", s.CompleteP50),
		fmt.Sprintf("%d", s.CompleteP95),
		fmt.Sprintf("%d", s.CompleteP99),
		fmt.Sprintf("%d", s.CacheHits),
		fmt.Sprintf("%d", s.CacheServedP50),
	}
}

func printAligned(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}
