package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dynp2p/internal/protocol"
	"dynp2p/internal/walks"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		spec, err := Builtin(name, 256, 9)
		if err != nil {
			t.Fatalf("Builtin(%s): %v", name, err)
		}
		data, err := spec.MarshalIndent()
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("reparse %s: %v", name, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("%s: spec changed across JSON round-trip:\n%+v\nvs\n%+v", name, spec, back)
		}
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"name":"x","n":64,"phases":[{"name":"p","rounds":5}],"bogus":1}`,
		"tiny n":            `{"name":"x","n":4,"phases":[{"name":"p","rounds":5}]}`,
		"no phases":         `{"name":"x","n":64,"phases":[]}`,
		"zero rounds":       `{"name":"x","n":64,"phases":[{"name":"p","rounds":0}]}`,
		"drop too high":     `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"fault":{"drop":1.5}}]}`,
		"negative rate":     `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"load":{"storeRate":-1}}]}`,
		"odd degree":        `{"name":"x","n":64,"degree":7,"phases":[{"name":"p","rounds":5}]}`,
		"bad strategy":      `{"name":"x","n":64,"strategy":"chaotic","phases":[{"name":"p","rounds":5}]}`,
		"negative churn":    `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"churn":{"fixed":-2}}]}`,
		"negative delay":    `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"fault":{"delayProb":0.5,"maxDelay":-1}}]}`,
		"negative delta":    `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"churn":{"rate":0.5,"delta":-0.9}}]}`,
		"overwide burst":    `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"churn":{"burstPeriod":4,"burstWidth":10,"burstCount":8}}]}`,
		"bad route mode":    `{"name":"x","n":64,"routing":{"mode":"teleport"},"phases":[{"name":"p","rounds":5}]}`,
		"bad phase mode":    `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"routing":{"mode":"teleport"}}]}`,
		"negative budget":   `{"name":"x","n":64,"routing":{"mode":"overlay","walkBudget":-1},"phases":[{"name":"p","rounds":5}]}`,
		"negative capacity": `{"name":"x","n":64,"routing":{"mode":"overlay","linkCapacity":-2},"phases":[{"name":"p","rounds":5}]}`,
		"malformed json":    `{"name":`,
	}
	for label, in := range cases {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", label, in)
		}
	}
}

func TestParseSpecAppliesDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"name":"x","n":64,"phases":[{"name":"p","rounds":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Degree != 8 || spec.Keys != 16 || spec.ItemLen != 128 || spec.ZipfS != 0.9 || spec.Strategy != "uniform" {
		t.Fatalf("defaults not applied: %+v", spec)
	}
}

// testSpec builds a small three-phase spec with sharply distinguishable
// phase behaviour: quiet, then fixed churn, then lossy links.
func testSpec() Spec {
	return Spec{
		Name: "phases", N: 64, Seed: 5, Keys: 4, ItemLen: 32,
		Phases: []Phase{
			{Name: "quiet", Rounds: 12, Load: Workload{StoreRate: 1}},
			{Name: "churny", Rounds: 10, Churn: Churn{Fixed: 3}, Load: Workload{RetrieveRate: 0.5}},
			{Name: "lossy", Rounds: 10, Fault: Fault{Drop: 0.3}, Load: Workload{RetrieveRate: 0.5}},
		},
	}
}

func TestPhaseTransitions(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Run(testSpec(), Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}

	var recs []TraceRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r TraceRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	if len(recs) != rep.Rounds {
		t.Fatalf("trace has %d lines, report says %d rounds", len(recs), rep.Rounds)
	}

	// The timeline must be warmup, quiet, churny, lossy, drain in order
	// with the spec's durations.
	spec := rep.Spec
	wantPhases := []struct {
		name   string
		rounds int
	}{
		{"warmup", spec.WarmupRounds()},
		{"quiet", 12},
		{"churny", 10},
		{"lossy", 10},
		{"drain", spec.DrainRounds()},
	}
	i := 0
	for _, w := range wantPhases {
		for j := 0; j < w.rounds; j++ {
			if recs[i].Phase != w.name {
				t.Fatalf("round %d: phase %q, want %q", i, recs[i].Phase, w.name)
			}
			if recs[i].Round != i {
				t.Fatalf("trace round numbering broken at %d: %d", i, recs[i].Round)
			}
			i++
		}
	}
	if i != len(recs) {
		t.Fatalf("trace has %d extra rounds", len(recs)-i)
	}

	// Per-phase behaviour: churn only in "churny" (warmup inherits phase
	// 0's law = quiet), faults only from "lossy" on (the drain keeps the
	// last phase's fault model).
	for _, r := range recs {
		switch r.Phase {
		case "churny":
			if r.Churned != 3 {
				t.Fatalf("round %d (churny): churned %d, want 3", r.Round, r.Churned)
			}
		case "warmup", "quiet":
			if r.Churned != 0 {
				t.Fatalf("round %d (%s): churned %d, want 0", r.Round, r.Phase, r.Churned)
			}
			if r.FaultDrop != 0 {
				t.Fatalf("round %d (%s): faultDrop %d before lossy phase", r.Round, r.Phase, r.FaultDrop)
			}
		case "drain":
			if r.Churned != 0 {
				t.Fatalf("round %d (drain): churned %d, want 0", r.Round, r.Churned)
			}
		}
	}
	var lossyDrops int64
	for _, r := range recs {
		if r.Phase == "lossy" || r.Phase == "drain" {
			lossyDrops += r.FaultDrop
		}
	}
	if lossyDrops == 0 {
		t.Fatal("lossy phase dropped no messages at drop=0.3")
	}
	if rep.Stats.Engine.MsgsFaultDropped != lossyDrops {
		t.Fatalf("fault drops outside lossy+drain: engine %d, traced %d",
			rep.Stats.Engine.MsgsFaultDropped, lossyDrops)
	}

	// Request accounting: every issued retrieval is eventually completed
	// or lost; phase SLOs sum to the total.
	tot := rep.Total
	if tot.Issued != tot.Completed+tot.Lost {
		t.Fatalf("accounting: issued %d != completed %d + lost %d", tot.Issued, tot.Completed, tot.Lost)
	}
	if tot.Completed != tot.Succeeded+tot.Failed {
		t.Fatalf("accounting: completed %d != ok %d + fail %d", tot.Completed, tot.Succeeded, tot.Failed)
	}
	var sum SLO
	for _, p := range rep.Phases {
		sum.StoresIssued += p.SLO.StoresIssued
		sum.Issued += p.SLO.Issued
		sum.Completed += p.SLO.Completed
		sum.Succeeded += p.SLO.Succeeded
		sum.Failed += p.SLO.Failed
		sum.Lost += p.SLO.Lost
	}
	if sum.StoresIssued != tot.StoresIssued || sum.Issued != tot.Issued ||
		sum.Completed != tot.Completed || sum.Succeeded != tot.Succeeded ||
		sum.Failed != tot.Failed || sum.Lost != tot.Lost {
		t.Fatalf("phase SLOs don't sum to total:\nphases %+v\ntotal  %+v", sum, tot)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() (*Report, string, string) {
		var trace, out bytes.Buffer
		rep, err := Run(testSpec(), Options{Trace: &trace})
		if err != nil {
			t.Fatal(err)
		}
		rep.Fprint(&out)
		return rep, trace.String(), out.String()
	}
	rep1, trace1, out1 := run()
	rep2, trace2, out2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("reports differ across identical runs:\n%+v\nvs\n%+v", rep1, rep2)
	}
	if trace1 != trace2 {
		t.Fatal("traces differ across identical runs")
	}
	if out1 != out2 {
		t.Fatal("rendered reports differ across identical runs")
	}
}

func TestBuiltinsSmoke(t *testing.T) {
	// Every builtin must run end to end at a small size. This is the CI
	// guard that the whole library stays executable.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Builtin(name, 128, 2)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Rounds != spec.TotalRounds() {
				t.Fatalf("ran %d rounds, spec says %d", rep.Rounds, spec.TotalRounds())
			}
			tot := rep.Total
			if tot.StoresIssued == 0 {
				t.Fatal("no stores issued")
			}
			if tot.Issued == 0 {
				t.Fatal("no retrievals issued")
			}
			if tot.Issued != tot.Completed+tot.Lost {
				t.Fatalf("accounting: issued %d != completed %d + lost %d",
					tot.Issued, tot.Completed, tot.Lost)
			}
			var out bytes.Buffer
			rep.Fprint(&out)
			if !strings.Contains(out.String(), "TOTAL") {
				t.Fatal("report table missing TOTAL row")
			}
		})
	}
}

// TestDrainCoversSearchTTL pins the drain contract: DrainRounds must
// cover the protocol's SearchTTL under every builtin scenario shape, so
// retrievals issued in the very last phase round either complete or
// expire inside the run — they are never miscounted as Lost merely
// because the run ended. The witness is a zero-fault, zero-churn steady
// run: with no churn no searcher can legitimately be lost, so any Lost
// at all means the drain tail is too short (or the end-of-run sweep
// reaped an in-flight request).
func TestDrainCoversSearchTTL(t *testing.T) {
	wp := walks.DefaultParams(128)
	ttl := protocol.DefaultParams(128, wp.WalkLength).SearchTTL
	for _, name := range Names() {
		spec, err := Builtin(name, 128, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.DrainRounds(); got < ttl {
			t.Fatalf("%s: DrainRounds() = %d < SearchTTL %d", name, got, ttl)
		}
	}
	spec := Spec{
		Name: "drain-steady", N: 128, Seed: 9,
		Phases: []Phase{
			{Name: "seed", Rounds: 30, Load: Workload{StoreRate: 0.5, RetrieveRate: 0.3}},
			{Name: "serve", Rounds: 30, Load: Workload{RetrieveRate: 1.5}},
		},
	}
	spec.normalize()
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Total
	if tot.Issued == 0 {
		t.Fatal("no retrievals issued; the run exercised nothing")
	}
	if tot.Lost != 0 {
		t.Fatalf("zero-fault zero-churn steady run reports Lost = %d (of %d issued); "+
			"in-flight retrievals at run end were miscounted", tot.Lost, tot.Issued)
	}
	if tot.Issued != tot.Completed {
		t.Fatalf("accounting: issued %d != completed %d with nothing lost", tot.Issued, tot.Completed)
	}
}

func TestUnknownBuiltin(t *testing.T) {
	if _, err := Builtin("no-such", 128, 1); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestTopologyBlock pins the spec's topology block: parsing, defaults,
// degree override, and validation of edge-mode names at both spec and
// phase level.
func TestTopologyBlock(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "topo", "n": 64, "seed": 1,
		"topology": {"edges": "self-healing", "degree": 6, "spectralEvery": 2},
		"phases": [
			{"name": "a", "rounds": 5},
			{"name": "b", "rounds": 5, "edges": "rerandomize"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Degree != 6 {
		t.Fatalf("topology degree override not applied: degree=%d", spec.Degree)
	}
	if m, err := spec.edgeMode(); err != nil || m.String() != "self-healing" {
		t.Fatalf("edgeMode = %v, %v", m, err)
	}

	bad := map[string]string{
		"bad spec mode":  `{"name":"x","n":64,"topology":{"edges":"mesh"},"phases":[{"name":"p","rounds":5}]}`,
		"bad phase mode": `{"name":"x","n":64,"phases":[{"name":"p","rounds":5,"edges":"mesh"}]}`,
		"periodic 0":     `{"name":"x","n":64,"topology":{"edges":"periodic"},"phases":[{"name":"p","rounds":5}]}`,
		"neg spectral":   `{"name":"x","n":64,"topology":{"spectralEvery":-1},"phases":[{"name":"p","rounds":5}]}`,
	}
	for what, in := range bad {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Fatalf("%s: not rejected", what)
		}
	}
}

// TestTopologySwitchAndLambdaTrace runs a two-phase spec that switches
// from the oracle to self-healing mid-run with per-round spectral
// telemetry: repairs must happen only after the switch, the trace must
// carry lambda values, and the phase reports must carry the per-phase
// spectral maxima.
func TestTopologySwitchAndLambdaTrace(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "switch", "n": 128, "seed": 3,
		"topology": {"spectralEvery": 1},
		"phases": [
			{"name": "oracle", "rounds": 8, "churn": {"fixed": 4},
			 "load": {"storeRate": 0.5, "retrieveRate": 0.5}},
			{"name": "heal", "rounds": 8, "edges": "self-healing", "churn": {"fixed": 4},
			 "load": {"retrieveRate": 0.5}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	rep, err := Run(spec, Options{Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	var oracle, heal *PhaseReport
	for i := range rep.Phases {
		switch rep.Phases[i].Name {
		case "oracle":
			oracle = &rep.Phases[i]
		case "heal":
			heal = &rep.Phases[i]
		}
	}
	if oracle == nil || heal == nil {
		t.Fatal("missing phase reports")
	}
	if oracle.Repairs != 0 {
		t.Fatalf("repairs before the self-healing switch: %d", oracle.Repairs)
	}
	if heal.Repairs == 0 {
		t.Fatal("no repairs after the self-healing switch")
	}
	if oracle.LambdaMax <= 0 || oracle.LambdaMax >= 1 || heal.LambdaMax <= 0 || heal.LambdaMax >= 1 {
		t.Fatalf("implausible per-phase λ maxima: oracle=%v heal=%v", oracle.LambdaMax, heal.LambdaMax)
	}
	// Every traced round carries a lambda (spectralEvery=1); repairs
	// appear only in heal-phase records.
	lambdas, healRepairs := 0, int64(0)
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var rec TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Lambda != nil {
			lambdas++
		}
		if rec.Phase == "oracle" && rec.Repairs != 0 {
			t.Fatalf("trace shows repairs in oracle phase: %+v", rec)
		}
		if rec.Phase == "heal" || rec.Phase == "drain" {
			healRepairs += rec.Repairs
		}
	}
	if lambdas != rep.Rounds {
		t.Fatalf("lambda on %d of %d traced rounds (want all: spectralEvery=1)", lambdas, rep.Rounds)
	}
	if healRepairs == 0 {
		t.Fatal("trace shows no repairs in the self-healing window")
	}
	var out bytes.Buffer
	rep.Fprint(&out)
	if !strings.Contains(out.String(), "λ last") || !strings.Contains(out.String(), "λmax by phase") {
		t.Fatalf("report missing topology lines:\n%s", out.String())
	}
}

// TestPhaseCacheOverridePersists pins the override contract for the
// per-phase cache block: like Edges, a phase-level Cache reconfiguration
// stays in force for every subsequent phase until another phase overrides
// it again. The witness is a phase AFTER the enabling one, with no cache
// field of its own, still producing cache hits.
func TestPhaseCacheOverridePersists(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "cache-persist", "n": 64, "seed": 7, "keys": 4, "zipfS": 3.0,
		"phases": [
			{"name": "seed", "rounds": 12, "load": {"storeRate": 1}},
			{"name": "on", "rounds": 20, "cache": {"capacity": 4, "seedRate": 1},
			 "load": {"retrieveRate": 2}},
			{"name": "after", "rounds": 20, "load": {"retrieveRate": 2}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PhaseReport{}
	for _, p := range rep.Phases {
		byName[p.Name] = p
	}
	if h := byName["seed"].SLO.CacheHits; h != 0 {
		t.Fatalf("cache hits before the cache override: %d", h)
	}
	if h := byName["on"].SLO.CacheHits; h == 0 {
		t.Fatal("no cache hits in the phase that enabled caching")
	}
	if h := byName["after"].SLO.CacheHits; h == 0 {
		t.Fatal("cache override did not persist: no hits in the following phase")
	}
}

// TestRoutedScenario runs a small spec in overlay mode end to end: the
// report must mark phases as routed, carry routed traffic in Stats, show
// zero id-addressed teleports (every engine delivery went through the
// router), and render the routed table columns.
func TestRoutedScenario(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "routed", "n": 64, "seed": 11, "keys": 4,
		"routing": {"mode": "overlay", "walkBudget": 512},
		"phases": [
			{"name": "seed", "rounds": 12, "churn": {"rate": 0.5}, "load": {"storeRate": 1}},
			{"name": "serve", "rounds": 20, "churn": {"rate": 0.5}, "load": {"retrieveRate": 1}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Succeeded == 0 {
		t.Fatal("no successful retrievals over the overlay")
	}
	for _, p := range rep.Phases {
		if !p.Routed {
			t.Fatalf("phase %s not marked routed", p.Name)
		}
	}
	rt := rep.Stats.Route
	if rt.Sent == 0 || rt.Delivered == 0 || rt.Forwards == 0 {
		t.Fatalf("no routed traffic in stats: %+v", rt)
	}
	if got, want := rep.Stats.Engine.MsgsDelivered, rt.Delivered; got != want {
		t.Fatalf("teleported deliveries in overlay mode: engine %d, router %d", got, want)
	}
	var out bytes.Buffer
	rep.Fprint(&out)
	for _, col := range []string{"hopP50", "hopP99", "rDrop", "maxLink", "routing:"} {
		if !strings.Contains(out.String(), col) {
			t.Fatalf("routed report missing %q:\n%s", col, out.String())
		}
	}
}

// TestOracleReportHasNoRoutedColumns: a run that never leaves oracle mode
// must render the exact pre-routing table, so existing report consumers
// see byte-identical output.
func TestOracleReportHasNoRoutedColumns(t *testing.T) {
	rep, err := Run(testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	rep.Fprint(&out)
	for _, col := range []string{"hopP50", "maxLink", "routing:"} {
		if strings.Contains(out.String(), col) {
			t.Fatalf("oracle-only report grew routed column %q:\n%s", col, out.String())
		}
	}
}

// TestPhasePeriodicNeedsPeriod: a phase-level periodic switch without a
// topology period must be rejected just like the spec-level one (it
// would otherwise silently run as period 1).
func TestPhasePeriodicNeedsPeriod(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","n":64,
		"phases":[{"name":"p","rounds":5,"edges":"periodic"}]}`)); err == nil {
		t.Fatal("phase-level periodic without topology.period not rejected")
	}
	if _, err := ParseSpec([]byte(`{"name":"x","n":64,"topology":{"period":3},
		"phases":[{"name":"p","rounds":5,"edges":"periodic"}]}`)); err != nil {
		t.Fatalf("phase-level periodic with period rejected: %v", err)
	}
}
