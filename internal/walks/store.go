package walks

import (
	"math"
	"math/bits"
	"slices"

	"dynp2p/internal/graph"
	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
)

// The columnar store keeps tokens in two packed 64-bit lanes. The first
// lane holds the source id and the token's local slot index within its
// shard (src<<LocalBits | local); the second packs birth (high 32 bits),
// serial (middle 16) and steps remaining (low 16). Stepping a token is
// pack-- and a token completes when the low half hits zero, so the hot
// loop never unpacks the trio. (The original three-column src/birth/meta
// layout was measured first: birth, serial and steps are always read and
// written together, and every extra lane costs a scattered write stream
// in the counting-sort placement, so the columns were fused into the two
// lanes below.)
const (
	stepsBits  = 16
	stepsMask  = 1<<stepsBits - 1
	serialBits = 16
	birthShift = stepsBits + serialBits
	localMask  = 1<<shard.LocalBits - 1

	// maxSrcID bounds node ids the soup can carry: the first lane packs
	// the source id and a slot's local index into one 64-bit word, so ids
	// must fit 64-LocalBits = 38 bits. Ids are dense and monotone, so
	// 2.7·10¹¹ of them outlast any feasible simulation; generation and
	// Inject guard the bound.
	maxSrcID = 1 << (64 - shard.LocalBits)
)

func packToken(birth int32, serial uint16, steps uint16) uint64 {
	return uint64(uint32(birth))<<birthShift | uint64(serial)<<stepsBits | uint64(steps)
}

func birthOf(pack uint64) int32   { return int32(pack >> birthShift) }
func serialOf(pack uint64) uint16 { return uint16(pack >> stepsBits) }
func stepsOf(pack uint64) uint16  { return uint16(pack & stepsMask) }

// tokRec is one token in the store and in exchange staging: 16 bytes, two
// packed lanes. A staged record and a stored record are bit-identical —
// loc's local-index half is the destination slot while in flight and the
// holding slot once stored — so the capped path's counting sort places
// each token with a single 16-byte copy, and the uncapped path can treat
// staged records as the store itself.
type tokRec struct {
	loc  uint64 // src<<LocalBits | local slot index (within the shard)
	pack uint64 // birth<<32 | serial<<16 | steps
}

func (t tokRec) src() simnet.NodeID { return simnet.NodeID(t.loc >> shard.LocalBits) }

func (t tokRec) token() Token {
	return Token{Src: t.src(), Birth: birthOf(t.pack), Serial: serialOf(t.pack), Steps: stepsOf(t.pack)}
}

// stagedSmp is one completed walk in flight to its endpoint.
type stagedSmp struct {
	loc   uint64 // src<<LocalBits | destination-local slot index
	birth int32
	_     int32
}

// grow returns recs resized to n, discarding previous contents. Capacity
// grows geometrically so the steady-state round loop stops allocating
// once the token population peaks.
func grow(recs []tokRec, n int) []tokRec {
	if cap(recs) < n {
		return make([]tokRec, n, max(n, 2*cap(recs)))
	}
	return recs[:n]
}

// groupSlots is the slot-group width of the capped path's two-level
// placement: 128 slots ≈ 0.5 MiB of store window at the paper's default
// walk density, small enough that the placement writes stay
// cache-resident while the partition pass runs a handful of sequential
// append streams.
const (
	groupShift = 7
	groupSlots = 1 << groupShift
)

// soupShard is one shard's slice of the soup: the token store, the
// per-round sample store, and all exchange staging. Every buffer is
// reused across rounds. One worker owns a shard for the duration of a
// scatter or gather pass; the only cross-shard accesses are reads of
// other shards' staging, always on the far side of a shard.Run barrier.
//
// The token store has two representations, chosen once at NewSoup:
//
//   - Capped (ForwardCap > 0): tok/off are the materialized store — slot
//     lo+i holds tokens tok[off[i]:off[i+1]] in canonical bucket order
//     (deferred first, then arrivals by source slot) — rebuilt every
//     round by the gather's counting sort into nextTok/nextOff.
//   - Uncapped (ForwardCap == 0, the paper's default and the hot
//     benchmark path): no token is ever deferred, so no token's fate
//     depends on its bucket position, and the materialization is
//     skipped: the staged exchange buffers themselves are the store
//     (outBuf double-buffers across rounds), consumed next round in
//     canonical source order. This removes a 16-byte placement write and
//     re-read per token per round; per-slot counts (TokensAt, Inject)
//     are derived lazily from the buffers between rounds.
type soupShard struct {
	lo, hi int // slot range [lo, hi) owned by this shard

	// Capped-path store (see above).
	tok     []tokRec
	nextTok []tokRec
	off     []int32 // len hi-lo+1
	nextOff []int32

	// Samples completed this round, flat with the per-slot offset-index
	// scheme; Soup.Samples returns sub-slice views.
	smp    []Sample
	smpOff []int32 // len hi-lo+1

	// counts is counting-sort scratch on the capped path; on the
	// uncapped path it lazily caches per-slot token counts between
	// rounds (valid when countsOK — see materializeCounts).
	counts   []int32
	countsOK bool

	cursor   []int32 // uncapped scratch: per-slot stored-token cursor
	replaced []bool  // uncapped scratch: slot replaced this round

	// groups are the capped gather's intermediate radix buffers:
	// incoming tokens partitioned by slot group (contiguous runs of
	// groupSlots locals) so the final counting-sort placement writes
	// into one L2-sized store window at a time.
	groups [][]tokRec

	// Scatter staging, segregated by destination shard (grid-sized,
	// allocated by init). outBuf is double-buffered: a round's scatter
	// writes outBuf[parity] while the uncapped path reads last round's
	// outBuf[1-parity] as its store.
	outBuf [2][][]tokRec
	outSmp [][]stagedSmp

	// Deferred tokens (capped path: over the forwarding cap) stay in
	// their slot, which is always in this same shard; they sort before
	// all arrivals.
	deferred []tokRec

	tally  Metrics
	pfSink uint32 // sink keeping the scatter's prefetch loads live

	// Lazy-evaluator state (lazy.go): lzToks[b%depth] holds the cached
	// live tokens of cohort b that were born in this shard's slots (their
	// pos may be anywhere); lzFree recycles the buffers, so the no-query
	// steady state keeps exactly one cohort's buffer in circulation.
	lzToks [][]replayTok
	lzFree [][]replayTok
	lzCap  int // fresh-buffer capacity: one full cohort's tokens

	// wc/wcLen: software write-combining blocks for the uncapped
	// scatter's staged appends — tokens buffer in these L1-resident
	// blocks and flush wcWidth at a time, so the grid's staging tails
	// are touched in multi-line bursts the L2 streamer can follow
	// instead of one interleaved line per token across more streams
	// than it tracks.
	wc    [][wcWidth]tokRec
	wcLen []int8
}

const wcWidth = 32

// stageWC buffers one staged token for destination shard dsh, flushing
// the block (order-preserving) when full.
func (ss *soupShard) stageWC(out [][]tokRec, dsh uint32, t tokRec) {
	l := ss.wcLen[dsh]
	ss.wc[dsh][l] = t
	l++
	if l == wcWidth {
		out[dsh] = append(out[dsh], ss.wc[dsh][:]...)
		l = 0
	}
	ss.wcLen[dsh] = l
}

func (ss *soupShard) init(g shard.Grid, sh, n, wpr int) {
	ss.lo, ss.hi = g.Bounds(sh, n)
	slots := ss.hi - ss.lo
	ss.off = make([]int32, slots+1)
	ss.nextOff = make([]int32, slots+1)
	ss.smpOff = make([]int32, slots+1)
	ss.counts = make([]int32, slots)
	ss.cursor = make([]int32, slots)
	ss.replaced = make([]bool, slots)
	ss.groups = make([][]tokRec, (slots+groupSlots-1)/groupSlots)
	ss.outBuf[0] = make([][]tokRec, g.Count())
	ss.outBuf[1] = make([][]tokRec, g.Count())
	ss.wc = make([][wcWidth]tokRec, g.Count())
	ss.wcLen = make([]int8, g.Count())

	// Pre-size the sample staging to its steady-state maximum. Each round
	// one cohort of slots·wpr walks completes here and scatters
	// near-uniformly over the grid, so outSmp[dsh] holds a multinomial
	// draw with mean mu = slots·wpr/nsh; mu + 8·sqrt(mu) + 8 puts the
	// per-buffer per-round overflow probability below ~1e-12, so append
	// never grows these on the no-query steady state. (Zero-capacity
	// buffers doubling toward their record maxima scale allocs/round with
	// nsh² — the 256²-buffer grid at n=262144 sat near 10³ allocs/round
	// for hundreds of rounds.) All buffers are carved from one arena; a
	// query-driven overflow peels just that buffer off and keeps the
	// grown copy, exactly the old monotone behavior.
	nsh := g.Count()
	mu := float64(slots*wpr) / float64(nsh)
	bufCap := int(mu+8*math.Sqrt(mu)) + 8
	arena := make([]stagedSmp, nsh*bufCap)
	ss.outSmp = make([][]stagedSmp, nsh)
	for d := 0; d < nsh; d++ {
		ss.outSmp[d] = arena[d*bufCap : d*bufCap : (d+1)*bufCap]
	}
	// Cohort token buffers are exactly slots·wpr records at creation
	// (tokens only die after that), so fresh lzPop allocations start at
	// full size instead of doubling up from nil.
	ss.lzCap = slots*wpr + 8
}

// insert splices count fresh tokens into the capped-path store at the end
// of a slot's bucket (the Inject path; runs between rounds, never during
// an exchange). O(shard population) for the tail shift — fine for
// experiment-sized injections.
func (ss *soupShard) insert(local, count int, id simnet.NodeID, birth int32, baseSerial, steps uint16) {
	if uint64(id) >= maxSrcID {
		panic("walks: node id exceeds the packed staging range")
	}
	old := len(ss.tok)
	at := int(ss.off[local+1])
	ss.tok = slices.Grow(ss.tok, count)[:old+count]
	copy(ss.tok[at+count:], ss.tok[at:old])
	loc := uint64(id)<<shard.LocalBits | uint64(local)
	for k := 0; k < count; k++ {
		ss.tok[at+k] = tokRec{loc: loc, pack: packToken(birth, baseSerial+uint16(k), steps)}
	}
	for i := local + 1; i < len(ss.off); i++ {
		ss.off[i] += int32(count)
	}
}

// prepRowLoc composes this round's adjacency with the location table for
// this shard's slots: the token loops then resolve a step destination's
// (shard, local) with a single array load instead of two dependent random
// loads (adjacency, then slotLoc).
func (s *Soup) prepRowLoc(ss *soupShard, g *graph.Graph, d int) {
	slotLoc := s.slotLoc
	rowLoc := s.rowLoc
	for slot := ss.lo; slot < ss.hi; slot++ {
		row := g.Neighbors(slot)
		out := rowLoc[slot*d : slot*d+d]
		for pt := range out {
			out[pt] = slotLoc[row[pt]]
		}
	}
}

// scatter is the capped path's fused per-round pass over source shards:
// for every slot it applies churn death, emits the slot's fresh tokens
// (after the stored ones, serials continuing from the stored count —
// identical semantics to the former serial generation prelude), and walks
// the combined bucket in positional order, dropping overdue tokens,
// deferring those past the forwarding cap, and stepping the rest into the
// per-destination-shard staging.
func (s *Soup) scatter(e *simnet.Engine, round int) {
	g := e.Graph()
	d := uint64(g.Degree())
	p := s.p
	stepsInit := uint16(p.WalkLength)
	parity := s.parity
	s.grid.Run(s.workers, func(sh int) {
		ss := &s.shards[sh]
		out := ss.outBuf[parity]
		for dsh := range out {
			out[dsh] = out[dsh][:0]
			ss.outSmp[dsh] = ss.outSmp[dsh][:0]
		}
		ss.deferred = ss.deferred[:0]
		s.prepRowLoc(ss, g, int(d))
		// Tally counters live in locals so the token loop keeps them in
		// registers; they flush to the shard tally once per pass.
		var generated, died, overdue, deferredN, moves, completed int64
		tokens := ss.tok
		for slot := ss.lo; slot < ss.hi; slot++ {
			local := slot - ss.lo
			b0 := int(ss.off[local])
			stored := int(ss.off[local+1]) - b0
			// Tokens at a replaced slot die with their carrier; the
			// newcomer's fresh walks (below) are unaffected.
			if stored > 0 && e.ReplacedInRound(slot, round) {
				died += int64(stored)
				stored = 0
			}
			// Generation clamps at the uint16 serial bound: a bucket
			// already holding 65536 tokens (huge injections, extreme
			// ForwardCap backlogs) cannot mint wrapped serials that
			// would walk in lock-step.
			genHere := p.WalksPerRound
			if limit := 1<<16 - stored; genHere > limit {
				genHere = max(limit, 0)
			}
			generated += int64(genHere)
			total := stored + genHere
			if total == 0 {
				continue
			}
			budget := total
			if p.ForwardCap > 0 && budget > p.ForwardCap {
				budget = p.ForwardCap
				deferredN += int64(total - budget)
			}
			var genLoc uint64
			if genHere > 0 {
				id := e.IDAt(slot)
				if uint64(id) >= maxSrcID {
					panic("walks: node id exceeds the packed staging range")
				}
				genLoc = uint64(id)<<shard.LocalBits | uint64(local)
			}
			selfLoc := s.slotLoc[slot]
			row := s.rowLoc[slot*int(d) : slot*int(d)+int(d)]
			for idx := 0; idx < total; idx++ {
				var t tokRec
				if idx < stored {
					t = tokens[b0+idx]
					if round-int(birthOf(t.pack)) > p.Deadline {
						overdue++
						continue
					}
				} else {
					// Fresh token: position == serial, since serials
					// continue from the stored count.
					t = tokRec{loc: genLoc, pack: packToken(int32(round), uint16(idx), stepsInit)}
				}
				if idx >= budget {
					// Over the forwarding budget: the token waits here
					// until next round. Its loc already carries this
					// slot's local index.
					ss.deferred = append(ss.deferred,
						tokRec{loc: t.loc&^uint64(localMask) | uint64(local), pack: t.pack})
					continue
				}
				// Step core — keep in sync with scatterUncapped.
				h := stepHash(s.seed, round, t.src(), birthOf(t.pack), serialOf(t.pack))
				loc := selfLoc
				// Lazy self-loops flip the TOP hash bit: the fastrange
				// port pick below consumes high bits, so the coin must
				// come off the same end and be shifted away.
				if lazyStay := p.Lazy && h>>63 == 1; !lazyStay {
					if p.Lazy {
						h <<= 1
					}
					// Fastrange port pick: ⌊h·d/2^64⌋ is uniform over
					// [0, d) without the hardware divide h%d costs in
					// this, the hottest loop of the simulator.
					port, _ := bits.Mul64(h, d)
					loc = row[port]
				}
				t.pack--
				moves++
				dsh := loc >> shard.LocalBits
				t.loc = t.loc&^uint64(localMask) | uint64(loc&localMask)
				if t.pack&stepsMask == 0 {
					completed++
					ss.outSmp[dsh] = append(ss.outSmp[dsh],
						stagedSmp{loc: t.loc, birth: birthOf(t.pack)})
				} else {
					out[dsh] = append(out[dsh], t)
				}
			}
		}
		ss.tally = Metrics{
			Generated: generated, Completed: completed, Died: died,
			Overdue: overdue, Moves: moves, Deferred: deferredN,
		}
	})
}

// scatterUncapped is the ForwardCap == 0 fast path: the staged exchange
// buffers written last round ARE the store, consumed here in canonical
// source order (source shards in fixed index order, each buffer in its
// append order). With no forwarding budget, no token's fate depends on
// its bucket position, so nothing needs to be materialized slot-major:
// per-slot cursors recover each slot's stored count for serial
// continuation, and generation runs as a per-slot coda. One 16-byte
// staged write per token per round is all the data movement there is.
func (s *Soup) scatterUncapped(e *simnet.Engine, round int) {
	g := e.Graph()
	d := uint64(g.Degree())
	p := s.p
	stepsInit := uint16(p.WalkLength)
	parity := s.parity
	s.grid.Run(s.workers, func(sh int) {
		ss := &s.shards[sh]
		out := ss.outBuf[parity]
		in := 1 - parity
		for dsh := range out {
			out[dsh] = out[dsh][:0]
			ss.outSmp[dsh] = ss.outSmp[dsh][:0]
		}
		s.prepRowLoc(ss, g, int(d))
		lo := ss.lo
		cursor := ss.cursor
		replaced := ss.replaced
		anyReplaced := false
		for slot := ss.lo; slot < ss.hi; slot++ {
			cursor[slot-lo] = 0
			r := e.ReplacedInRound(slot, round)
			replaced[slot-lo] = r
			anyReplaced = anyReplaced || r
		}
		var generated, died, totalIn, completed int64
		var pfSink uint32
		rowLoc := s.rowLoc
		// Stored tokens: every token that arrived here last round.
		for ssh := range s.shards {
			buf := s.shards[ssh].outBuf[in][sh]
			totalIn += int64(len(buf))
			for i := 0; i < len(buf); i++ {
				// A token's slot — and so its adjacency row — is known
				// from the staged record alone, several records ahead of
				// the hash that picks the port. Touch the upcoming row
				// now so the rowLoc access below hits L1 instead of
				// paying L2 latency on a random load (the sink keeps the
				// compiler from discarding the touch).
				if i+6 < len(buf) {
					pfSink += rowLoc[(lo+int(buf[i+6].loc&localMask))*int(d)]
				}
				t := buf[i]
				local := t.loc & localMask
				if anyReplaced && replaced[local] {
					died++
					continue
				}
				cursor[local]++
				// No deadline check: an uncapped token is never deferred,
				// so it steps every round and its age is at most
				// WalkLength-1 < Deadline (NewSoup clamps Deadline up to
				// WalkLength) — Overdue is identically zero on this path.
				// Step core — keep in sync with scatter.
				h := stepHash(s.seed, round, t.src(), birthOf(t.pack), serialOf(t.pack))
				slot := lo + int(local)
				var loc uint32
				if p.Lazy && h>>63 == 1 {
					loc = s.slotLoc[slot] // lazy self-loop: stay put
				} else {
					if p.Lazy {
						h <<= 1
					}
					port, _ := bits.Mul64(h, d)
					loc = rowLoc[slot*int(d)+int(port)]
				}
				t.pack--
				dsh := loc >> shard.LocalBits
				t.loc = t.loc&^uint64(localMask) | uint64(loc&localMask)
				if t.pack&stepsMask == 0 {
					completed++
					ss.outSmp[dsh] = append(ss.outSmp[dsh],
						stagedSmp{loc: t.loc, birth: birthOf(t.pack)})
				} else {
					ss.stageWC(out, dsh, t)
				}
			}
		}
		// Generation coda: fresh tokens step in the same round, serials
		// continuing from the stored count (the cursor, which — like the
		// old bucket length — excludes churn deaths).
		if p.WalksPerRound > 0 {
			for slot := ss.lo; slot < ss.hi; slot++ {
				local := slot - lo
				stored := int(cursor[local])
				genHere := p.WalksPerRound
				if limit := 1<<16 - stored; genHere > limit {
					genHere = max(limit, 0)
				}
				generated += int64(genHere)
				if genHere == 0 {
					continue
				}
				id := e.IDAt(slot)
				if uint64(id) >= maxSrcID {
					panic("walks: node id exceeds the packed staging range")
				}
				genLoc := uint64(id) << shard.LocalBits
				selfLoc := s.slotLoc[slot]
				row := rowLoc[slot*int(d) : slot*int(d)+int(d)]
				for k := 0; k < genHere; k++ {
					t := tokRec{loc: genLoc, pack: packToken(int32(round), uint16(stored+k), stepsInit)}
					// Step core — keep in sync with scatter.
					h := stepHash(s.seed, round, t.src(), birthOf(t.pack), serialOf(t.pack))
					loc := selfLoc
					if lazyStay := p.Lazy && h>>63 == 1; !lazyStay {
						if p.Lazy {
							h <<= 1
						}
						port, _ := bits.Mul64(h, d)
						loc = row[port]
					}
					t.pack--
					dsh := loc >> shard.LocalBits
					t.loc |= uint64(loc & localMask)
					if t.pack&stepsMask == 0 {
						completed++
						ss.outSmp[dsh] = append(ss.outSmp[dsh],
							stagedSmp{loc: t.loc, birth: birthOf(t.pack)})
					} else {
						ss.stageWC(out, dsh, t)
					}
				}
			}
		}
		for dsh := range ss.wc {
			if l := ss.wcLen[dsh]; l > 0 {
				out[dsh] = append(out[dsh], ss.wc[dsh][:l]...)
				ss.wcLen[dsh] = 0
			}
		}
		ss.pfSink = pfSink // keeps the prefetch loads live
		// Every stored token either died or moved, and every generated
		// token moved — so Moves needs no per-token counter.
		ss.tally = Metrics{
			Generated: generated, Completed: completed, Died: died,
			Moves: totalIn - died + generated,
		}
	})
}

// gather finishes the round. On the capped path it rebuilds every shard's
// token store with a two-pass counting sort over the staged exchange:
// pass 1 partitions the sources — deferred tokens first, then source
// shards in fixed index order — into contiguous slot groups while
// counting tokens per destination slot; shard.Offsets turns the counts
// into the new offset index; pass 2 places each group's tokens through
// per-slot cursors, one 16-byte copy per token, into a store window small
// enough to stay cache-resident (the two-level split exists because a
// flat placement into the full multi-MB shard store measures ~4x slower
// per write than into an L2-sized group window). Both passes are stable
// and groups are contiguous slot ranges, so each bucket keeps the
// canonical (deferred, then source slot, then source order) ordering at
// every worker count — the final array is bit-identical for any group
// width — and the store ends the round fully compacted.
//
// Samples get the same counting-sort treatment on both paths (replacing
// last round's sample store wholesale is also what "clears" samples — no
// serial clearing prelude). Sample volume is the per-round completion
// rate — a few percent of token volume — so their pass 1 is a scan.
func (s *Soup) gather() {
	parity := s.parity
	s.grid.Run(s.workers, func(dsh int) {
		ds := &s.shards[dsh]
		counts := ds.counts

		if s.capped {
			// Tokens: pass 1 — partition into slot groups and count per
			// destination slot.
			for i := range counts {
				counts[i] = 0
			}
			groups := ds.groups
			for _, t := range ds.deferred {
				l := t.loc & localMask
				counts[l]++
				groups[l>>groupShift] = append(groups[l>>groupShift], t)
			}
			for ssh := range s.shards {
				for _, t := range s.shards[ssh].outBuf[parity][dsh] {
					l := t.loc & localMask
					counts[l]++
					groups[l>>groupShift] = append(groups[l>>groupShift], t)
				}
			}
			total := shard.Offsets(counts, ds.nextOff)
			ds.nextTok = grow(ds.nextTok, int(total))
			// Pass 2 — cursors start at each slot's offset; place one
			// group at a time.
			copy(counts, ds.nextOff[:len(counts)])
			next := ds.nextTok
			for g, buf := range groups {
				for _, t := range buf {
					l := t.loc & localMask
					pos := counts[l]
					counts[l] = pos + 1
					next[pos] = t
				}
				groups[g] = buf[:0]
			}
			ds.tok, ds.nextTok = ds.nextTok, ds.tok
			ds.off, ds.nextOff = ds.nextOff, ds.off
		} else {
			// Uncapped: the staged buffers are next round's store;
			// per-slot counts are derived lazily if the API asks.
			ds.countsOK = false
		}

		// Samples.
		s.gatherSamplesShard(ds, dsh)
	})
}

// gatherSamplesShard rebuilds destination shard dsh's sample store from
// the per-source-shard outSmp staging with a stable two-pass counting
// sort (replacing last round's sample store wholesale is also what
// "clears" samples). Shared by the capped/eager gather and the lazy
// evaluator's delivery step.
func (s *Soup) gatherSamplesShard(ds *soupShard, dsh int) {
	counts := ds.counts
	for i := range counts {
		counts[i] = 0
	}
	for ssh := range s.shards {
		for _, t := range s.shards[ssh].outSmp[dsh] {
			counts[t.loc&localMask]++
		}
	}
	stotal := int(shard.Offsets(counts, ds.smpOff))
	if cap(ds.smp) < stotal {
		ds.smp = make([]Sample, stotal, max(stotal, 2*cap(ds.smp)))
	} else {
		ds.smp = ds.smp[:stotal]
	}
	copy(counts, ds.smpOff[:len(counts)])
	for ssh := range s.shards {
		for _, t := range s.shards[ssh].outSmp[dsh] {
			l := t.loc & localMask
			pos := counts[l]
			counts[l] = pos + 1
			ds.smp[pos] = Sample{Src: simnet.NodeID(t.loc >> shard.LocalBits), Birth: t.birth}
		}
	}
}

// inboxParity returns the outBuf side holding the tokens the NEXT round
// will consume — the uncapped path's between-rounds store.
func (s *Soup) inboxParity() int { return 1 - s.parity }

// materializeCounts fills ss.counts with per-slot token counts from the
// uncapped path's staged store. Called lazily by the introspection APIs
// (TokensAt, Inject); the hot loop never needs it. The mutex makes
// concurrent TokensAt calls (e.g. from parallel protocol handlers
// probing arbitrary slots) safe: the first caller fills the cache, the
// rest synchronize on the lock and read it; the gather invalidates
// countsOK strictly before handlers run (hooks precede handlers in the
// round order), so the flag is stable while handlers execute.
func (s *Soup) materializeCounts(sh int) {
	ss := &s.shards[sh]
	s.countsMu.Lock()
	defer s.countsMu.Unlock()
	if ss.countsOK {
		return
	}
	counts := ss.counts
	for i := range counts {
		counts[i] = 0
	}
	in := s.inboxParity()
	for ssh := range s.shards {
		for _, t := range s.shards[ssh].outBuf[in][sh] {
			counts[t.loc&localMask]++
		}
	}
	ss.countsOK = true
}

// appendVirtual appends slot's tokens, in canonical order, from the
// uncapped path's staged store.
func (s *Soup) appendVirtual(sh, local int, dst []Token) []Token {
	in := s.inboxParity()
	for ssh := range s.shards {
		for _, t := range s.shards[ssh].outBuf[in][sh] {
			if int(t.loc&localMask) == local {
				dst = append(dst, t.token())
			}
		}
	}
	return dst
}

// injectUncapped appends count fresh tokens for slot (shard sh, local
// index local) to the uncapped staged store, after all existing arrivals:
// the last source shard's buffer is the tail of the canonical order.
func (s *Soup) injectUncapped(sh, local, count int, id simnet.NodeID, birth int32, baseSerial, steps uint16) {
	if uint64(id) >= maxSrcID {
		panic("walks: node id exceeds the packed staging range")
	}
	tail := &s.shards[len(s.shards)-1].outBuf[s.inboxParity()][sh]
	loc := uint64(id)<<shard.LocalBits | uint64(local)
	for k := 0; k < count; k++ {
		*tail = append(*tail, tokRec{loc: loc, pack: packToken(birth, baseSerial+uint16(k), steps)})
	}
	ss := &s.shards[sh]
	if ss.countsOK {
		ss.counts[local] += int32(count)
	}
}
