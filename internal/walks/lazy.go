package walks

// The lazy trajectory evaluator (StoreLazy) is the third store
// representation. With ForwardCap == 0 no token is ever deferred, so a
// walk's entire T-step trajectory is a pure function of its identity
// (src, birth, serial), the evolving topology, and the churn record: the
// per-round staged exchange can be deleted outright. Instead of moving
// every in-flight token every round, StepRound records only the round's
// inputs — the adjacency snapshot, the post-churn occupant ids, and the
// per-slot arrival counts — in a (T+2)-deep ring (churn itself lives in
// the engine's bounded ReplacedInRound history), and replays one birth
// cohort's full trajectory at its delivery round birth+T-1, with
// per-step death checks against the ring. Fresh cohorts need no storage
// at all: every live slot mints WalksPerRound implicit walks, and Inject
// records explicit extras; a cohort's tokens are materialized once, at
// delivery, and their buffer is recycled. Steady-state soup state
// therefore drops from 16 bytes per in-flight token (the staged store,
// double-buffered) to a handful of table rows per round.
//
// Two parts are retrospective and make the representation exact, not
// approximate:
//
//   - Serial continuation. A slot's fresh walks continue serials from its
//     stored-survivor count (store.go's generation coda), which depends
//     on where every older cohort's tokens sit at the birth round. Each
//     cohort's replay therefore increments the NEXT round's arrival
//     table as tokens land; cohort b-1 delivers (and finishes writing
//     arrive[b]) one round before cohort b is created, so the serial
//     bases are always complete exactly when they are needed.
//   - Metrics and introspection. Queries (Metrics, TokensAt, TotalTokens,
//     AppendTokens, Inject) force every in-flight cohort's partial
//     trajectory up to the last stepped round, caching per-cohort
//     positions and resuming at delivery, so an event is counted iff its
//     round has run — bit-identical to the eager stores at any query
//     pattern and any worker count. The no-query hot path never pays for
//     any of this.
//
// Overdue is identically zero here for the same reason as the eager
// uncapped path: an undeferred token's age never exceeds WalkLength-1,
// and NewSoup clamps Deadline up to WalkLength.

import (
	"math/bits"
	"sync/atomic"

	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
)

// replayTok is one cached live token of a partially-evaluated cohort:
// the step-hash identity plus the current slot. 16 bytes, updated in
// place — replay is a single sequential stream per shard.
type replayTok struct {
	idser uint64 // src<<16 | serial
	birth int32  // birth round (normally the cohort round; Inject may differ)
	pos   int32  // slot the token occupies after the evalRound step
}

// injRec is one Inject call, recorded until its cohort is materialized.
type injRec struct {
	slot  int32
	count int32
	birth int32
	base  uint16 // serial base: the slot's stored count at inject time
	id    simnet.NodeID
}

// lazyRound is one ring entry of recorded round inputs.
type lazyRound struct {
	round    int32 // validity tag; -1 = empty
	anyChurn bool
	row      []int32         // n·d adjacency snapshot for the round
	ids      []simnet.NodeID // occupant ids after the round's churn
}

// lazyCohort tracks one birth cohort's evaluation state. Its token
// buffers live per birth shard in soupShard.lzToks.
type lazyCohort struct {
	round     int32 // birth round; -1 = empty
	evalRound int32 // replayed through this round (== round-1 at creation)
	created   bool
	delivered bool
	inj       []injRec
}

// lazySoup is the store-wide lazy state hanging off Soup.lz.
type lazySoup struct {
	T     int // WalkLength: trajectory length and delivery offset
	depth int // ring depth, T+2: covers every input a replay can need
	d     int // topology degree
	eng   *simnet.Engine

	firstRound, lastRound int // first/last round stepped; -1 before any

	rounds  []lazyRound
	arrives [][]int32 // arrives[r%depth][slot]: tokens stored at slot at round r
	cohorts []lazyCohort
	pending []injRec // injections for the next stepped round

	// atomicArrive: with >1 workers, shards replay concurrently and land
	// tokens on arbitrary slots, so arrival-count increments go through
	// atomics; counts are additive, so the sums — and everything derived
	// from them — are identical at every worker count.
	atomicArrive bool
	countsOK     bool // per-shard counts caches reflect current state
}

// newLazySoup builds the ring. All per-round tables are allocated up
// front so the steady-state round loop never grows them.
func newLazySoup(e *simnet.Engine, s *Soup) *lazySoup {
	T := s.p.WalkLength
	depth := T + 2
	n, d := s.n, e.Degree()
	lz := &lazySoup{
		T: T, depth: depth, d: d, eng: e,
		firstRound: -1, lastRound: -1,
		atomicArrive: s.workers > 1,
		rounds:       make([]lazyRound, depth),
		arrives:      make([][]int32, depth),
		cohorts:      make([]lazyCohort, depth),
	}
	for i := range lz.rounds {
		lz.rounds[i].round = -1
		lz.rounds[i].row = make([]int32, n*d)
		lz.rounds[i].ids = make([]simnet.NodeID, 0, n)
		lz.arrives[i] = make([]int32, n)
		lz.cohorts[i].round = -1
	}
	for i := range s.shards {
		s.shards[i].lzToks = make([][]replayTok, depth)
	}
	// Replays need exact per-round death checks for up to T rounds back,
	// beyond what the engine's latest-occupancy record can answer.
	e.RetainReplacedHistory(depth)
	return lz
}

// stepLazy is the lazy store's StepRound: record the round's inputs, seat
// the round's cohort (identity only — no token state), replay the one
// cohort falling due, and publish its samples.
func (s *Soup) stepLazy(e *simnet.Engine, round int) {
	lz := s.lz
	if lz.firstRound < 0 {
		lz.firstRound = round
	}
	ri := round % lz.depth
	rr := &lz.rounds[ri]
	rr.round = int32(round)
	rr.anyChurn = round > 0 && len(e.ChurnedThisRound()) > 0
	copy(rr.row, e.Graph().Adjacency())
	rr.ids = e.LiveIDs(rr.ids[:0])
	// arrive[round+1] starts accumulating this round (delivery landings
	// now, query-forced partial landings after); its ring slot's previous
	// tenant was last read at cohort creation T+1 rounds ago.
	arr := lz.arrives[(round+1)%lz.depth]
	for i := range arr {
		arr[i] = 0
	}
	coh := &lz.cohorts[ri]
	oldInj := coh.inj
	*coh = lazyCohort{round: int32(round), evalRound: int32(round - 1), inj: lz.pending}
	if oldInj != nil {
		oldInj = oldInj[:0]
	}
	lz.pending = oldInj
	for i := range s.shards {
		ss := &s.shards[i]
		for dsh := range ss.outSmp {
			ss.outSmp[dsh] = ss.outSmp[dsh][:0]
		}
	}
	lz.lastRound = round
	if c := round - lz.T + 1; c >= lz.firstRound {
		s.lzAdvance(c, round)
		ci := c % lz.depth
		for i := range s.shards {
			ss := &s.shards[i]
			if buf := ss.lzToks[ci]; buf != nil {
				ss.lzFree = append(ss.lzFree, buf[:0])
				ss.lzToks[ci] = nil
			}
		}
		lz.cohorts[ci].delivered = true
	}
	s.gatherSamples()
	lz.countsOK = false
}

// gatherSamples rebuilds the per-shard sample stores from outSmp staging
// (shared counting sort with the eager gather).
func (s *Soup) gatherSamples() {
	shard.Run(s.workers, func(dsh int) {
		s.gatherSamplesShard(&s.shards[dsh], dsh)
	})
}

// lzAdvance creates cohort b if needed and replays it through round to,
// folding the tallies into the soup metrics. Callers guarantee every
// older cohort has already been replayed through b-1 (StepRound delivers
// in birth order; lzSync forces in birth order), which is what makes the
// arrival tables — and so the serial bases — complete when read.
func (s *Soup) lzAdvance(b, to int) {
	lz := s.lz
	coh := &lz.cohorts[b%lz.depth]
	if int(coh.round) != b {
		panic("walks: lazy cohort ring does not cover the requested round")
	}
	from := b
	if coh.created {
		if int(coh.evalRound) >= to {
			return
		}
		from = int(coh.evalRound) + 1
	}
	final := b + lz.T - 1
	if s.workers == 1 {
		// Inline and round-major: every shard steps through round r
		// before any shard moves to r+1, so each ring row table is
		// streamed through cache once per advance.
		if !coh.created {
			for sh := range s.shards {
				s.lzCreateShard(&s.shards[sh], b)
			}
		}
		for r := from; r <= to; r++ {
			fin := r == final
			for sh := range s.shards {
				s.lzReplayShard(&s.shards[sh], b, r, fin)
			}
		}
	} else {
		// One parallel pass, shard-major: a worker advances its whole
		// shard's slice of the cohort before taking the next shard.
		// Trajectories are independent across shards and arrival updates
		// are atomic and additive, so the result is bit-identical to the
		// round-major order; a single shard.Run per advance keeps
		// steady-state allocations flat.
		created := coh.created
		shard.Run(s.workers, func(sh int) {
			ss := &s.shards[sh]
			if !created {
				s.lzCreateShard(ss, b)
			}
			for r := from; r <= to; r++ {
				s.lzReplayShard(ss, b, r, r == final)
			}
		})
	}
	coh.created = true
	coh.evalRound = int32(to)
	for i := range s.shards {
		s.m.add(&s.shards[i].tally)
		s.shards[i].tally = Metrics{}
	}
}

// lzReplaced tests slot in a replacement bitset (nil = no churn).
func lzReplaced(death []uint64, slot int32) bool {
	return death != nil && death[uint32(slot)>>6]>>(uint32(slot)&63)&1 != 0
}

// lzCreateShard materializes cohort b's tokens born in ss's slots:
// recorded injections first (they were stored at their slot before the
// round began, so they die with a churned carrier and their survivors
// count toward the generation serial base), then one implicit fresh batch
// per slot, serials continuing from the slot's stored-survivor count —
// identical semantics to the eager scatter's generation coda.
func (s *Soup) lzCreateShard(ss *soupShard, b int) {
	lz := s.lz
	ring := &lz.rounds[b%lz.depth]
	arrive := lz.arrives[b%lz.depth]
	coh := &lz.cohorts[b%lz.depth]
	var death []uint64
	if ring.anyChurn {
		death = lz.eng.ReplacedBitsInRound(b)
	}
	toks := ss.lzPop()
	var generated, died int64
	lo, hi := ss.lo, ss.hi
	hasInj := false
	for i := range coh.inj {
		in := &coh.inj[i]
		slot := int(in.slot)
		if slot < lo || slot >= hi {
			continue
		}
		if !hasInj {
			hasInj = true
			cur := ss.cursor
			for j := range cur {
				cur[j] = 0
			}
		}
		if lzReplaced(death, in.slot) {
			died += int64(in.count)
			continue
		}
		ss.cursor[slot-lo] += in.count
		idser := uint64(in.id) << 16
		for k := int32(0); k < in.count; k++ {
			toks = append(toks, replayTok{idser: idser | uint64(in.base+uint16(k)), birth: in.birth, pos: in.slot})
		}
	}
	if wpr := s.p.WalksPerRound; wpr > 0 {
		ids := ring.ids
		for slot := lo; slot < hi; slot++ {
			base := 0
			if !lzReplaced(death, int32(slot)) {
				base = int(arrive[slot])
				if hasInj {
					base += int(ss.cursor[slot-lo])
				}
			}
			// Same uint16-serial clamp as the eager generation coda.
			gen := wpr
			if limit := 1<<16 - base; gen > limit {
				gen = max(limit, 0)
			}
			generated += int64(gen)
			if gen == 0 {
				continue
			}
			id := ids[slot]
			if uint64(id) >= maxSrcID {
				panic("walks: node id exceeds the packed staging range")
			}
			idser := uint64(id) << 16
			for k := 0; k < gen; k++ {
				toks = append(toks, replayTok{idser: idser | uint64(uint16(base+k)), birth: int32(b), pos: int32(slot)})
			}
		}
	}
	ss.lzToks[b%lz.depth] = toks
	ss.tally.Generated += generated
	ss.tally.Died += died
}

// lzReplayShard advances cohort b's tokens in ss by the single round r:
// per-step death check against the engine's replacement record, one
// step hash, one ring row load, and — for non-final rounds — one arrival
// increment at the landing slot. The step core matches store.go's
// scatter loops bit for bit.
func (s *Soup) lzReplayShard(ss *soupShard, b, r int, final bool) {
	lz := s.lz
	ring := &lz.rounds[r%lz.depth]
	toks := ss.lzToks[b%lz.depth]
	if len(toks) == 0 {
		return
	}
	row := ring.row
	d := lz.d
	du := uint64(d)
	var death []uint64
	// At r == b every token is freshly minted (injected deaths were
	// resolved at creation), so only later rounds check for churn.
	if r > b && ring.anyChurn {
		death = lz.eng.ReplacedBitsInRound(r)
	}
	arr := lz.arrives[(r+1)%lz.depth]
	atomicArr := lz.atomicArrive
	lazyWalk := s.p.Lazy
	seed := s.seed
	slotLoc := s.slotLoc
	var died, moves, completed int64
	var pfSink int32
	w := 0
	for i := 0; i < len(toks); i++ {
		// The upcoming row access is random; touch it a few records ahead
		// so it hits L1 when its turn comes (the sink keeps the load live).
		if i+6 < len(toks) {
			pfSink += row[int(toks[i+6].pos)*d]
		}
		t := toks[i]
		if lzReplaced(death, t.pos) {
			died++
			continue
		}
		// Step core — keep in sync with scatter/scatterUncapped.
		h := stepHash(seed, r, simnet.NodeID(t.idser>>16), t.birth, uint16(t.idser))
		pos := t.pos
		if lazyStay := lazyWalk && h>>63 == 1; !lazyStay {
			if lazyWalk {
				h <<= 1
			}
			port, _ := bits.Mul64(h, du)
			pos = row[int(t.pos)*d+int(port)]
		}
		moves++
		if final {
			completed++
			loc := slotLoc[pos]
			dsh := loc >> shard.LocalBits
			ss.outSmp[dsh] = append(ss.outSmp[dsh], stagedSmp{
				loc: t.idser>>16<<shard.LocalBits | uint64(loc&localMask), birth: t.birth})
		} else {
			if atomicArr {
				atomic.AddInt32(&arr[pos], 1)
			} else {
				arr[pos]++
			}
			t.pos = pos
			toks[w] = t
			w++
		}
	}
	ss.lzToks[b%lz.depth] = toks[:w]
	ss.pfSink += uint32(pfSink)
	ss.tally.Died += died
	ss.tally.Moves += moves
	ss.tally.Completed += completed
}

// lzPop takes a recycled token buffer (empty, capacity retained) from
// the shard's pool; the no-query steady state keeps exactly one buffer
// in circulation per shard.
func (ss *soupShard) lzPop() []replayTok {
	if n := len(ss.lzFree); n > 0 {
		buf := ss.lzFree[n-1]
		ss.lzFree = ss.lzFree[:n-1]
		return buf
	}
	return nil
}

// lzSync forces every in-flight cohort's evaluation up to the last
// stepped round (and optionally refreshes the per-slot count caches),
// serialized so concurrent protocol handlers can query freely. Repeat
// calls are cheap: each cohort resumes from its cached positions, so a
// query-every-round workload degrades gracefully to eager-equivalent
// work rather than re-deriving trajectories.
func (s *Soup) lzSync(wantCounts bool) {
	lz := s.lz
	s.countsMu.Lock()
	defer s.countsMu.Unlock()
	if R := lz.lastRound; R >= 0 {
		for b := max(lz.firstRound, R-lz.T+2); b <= R; b++ {
			s.lzAdvance(b, R)
		}
	}
	if wantCounts && !lz.countsOK {
		s.lzFillCounts()
		lz.countsOK = true
	}
}

// lzFillCounts rebuilds the per-shard per-slot token counts from the
// cached cohort positions plus pending injections. Called under countsMu.
func (s *Soup) lzFillCounts() {
	lz := s.lz
	for i := range s.shards {
		cs := s.shards[i].counts
		for j := range cs {
			cs[j] = 0
		}
	}
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			for i := range s.shards {
				for _, t := range s.shards[i].lzToks[ci] {
					loc := s.slotLoc[t.pos]
					s.shards[loc>>shard.LocalBits].counts[loc&localMask]++
				}
			}
		}
	}
	for i := range lz.pending {
		in := &lz.pending[i]
		loc := s.slotLoc[in.slot]
		s.shards[loc>>shard.LocalBits].counts[loc&localMask] += in.count
	}
}

// lzTotalTokens sums live cohort sizes plus pending injections.
func (s *Soup) lzTotalTokens() int {
	s.lzSync(false)
	lz := s.lz
	t := 0
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			for i := range s.shards {
				t += len(s.shards[i].lzToks[ci])
			}
		}
	}
	for i := range lz.pending {
		t += int(lz.pending[i].count)
	}
	return t
}

// lzAppendTokens appends slot's tokens in the lazy store's canonical
// order: cohorts by birth round, within a cohort by birth shard then
// materialization order, pending injections last.
func (s *Soup) lzAppendTokens(slot int, dst []Token) []Token {
	s.lzSync(false)
	lz := s.lz
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			steps := uint16(lz.T - (lz.lastRound - b + 1))
			for i := range s.shards {
				for _, t := range s.shards[i].lzToks[ci] {
					if int(t.pos) == slot {
						dst = append(dst, Token{
							Src: simnet.NodeID(t.idser >> 16), Birth: t.birth,
							Serial: uint16(t.idser), Steps: steps,
						})
					}
				}
			}
		}
	}
	for i := range lz.pending {
		in := &lz.pending[i]
		if int(in.slot) != slot {
			continue
		}
		for k := int32(0); k < in.count; k++ {
			dst = append(dst, Token{Src: in.id, Birth: in.birth,
				Serial: in.base + uint16(k), Steps: uint16(s.p.WalkLength)})
		}
	}
	return dst
}

// lzInject records an injection for the next stepped round. The serial
// base (the slot's stored count at inject time) was computed by the
// caller via TokensAt, which forced evaluation, so generation continuing
// from the post-inject count can never mint a colliding identity.
func (s *Soup) lzInject(slot, count int, id simnet.NodeID, birth int32, base uint16) {
	if uint64(id) >= maxSrcID {
		panic("walks: node id exceeds the packed staging range")
	}
	lz := s.lz
	lz.pending = append(lz.pending, injRec{
		slot: int32(slot), count: int32(count), id: id, birth: birth, base: base,
	})
	lz.countsOK = false
}
