package walks

// The lazy trajectory evaluator (StoreLazy) is the third store
// representation. With ForwardCap == 0 no token is ever deferred, so a
// walk's entire T-step trajectory is a pure function of its identity
// (src, birth, serial), the evolving topology, and the churn record: the
// per-round staged exchange can be deleted outright. Instead of moving
// every in-flight token every round, StepRound records only the round's
// inputs in a (T+2)-deep ring (churn itself lives in the engine's bounded
// ReplacedInRound history), and replays one birth cohort's full
// trajectory at its delivery round birth+T-1, with per-step death checks
// against the ring. Fresh cohorts need no storage at all: every live slot
// mints WalksPerRound implicit walks, and Inject records explicit extras;
// a cohort's tokens are materialized once, at delivery, and their buffer
// is recycled.
//
// The ring is DELTA-ENCODED (DESIGN.md §9). A ring entry does not hold
// the round's full n·d adjacency snapshot; it holds the round's port
// rewires, drained from the graph's change journal — O(churn·d) entries
// per round under incremental topologies (self-healing, static), which
// is what makes n ≥ 2²⁰ rings fit in memory. Rounds whose topology was
// bulk-rewritten (the Rerandomize oracle, an over-limit churn burst) are
// recorded as full snapshots instead, so the oracle modes degrade to the
// old cost rather than breaking. Three materialized rows navigate the
// ring:
//
//   - tailRow: the adjacency at the ring's oldest still-needed round,
//     advanced forward one round per delivery (and aliasing a snapshot
//     entry outright when one is on file for the tail round).
//   - repRow: the replay scratch row, stepped forward through the ring
//     by applying each round's deltas — or backward by unapplying them,
//     deltas being reversible — as cohort replays demand rows.
//   - tailIds/idRow: the same scheme for the per-round occupant-id
//     table, whose per-round delta is exactly the churned slots.
//
// Replay is round-major at every worker count: all shards step a cohort
// through round r against the one materialized row, then a barrier
// advances the row to r+1 (its last-arriver callback applies the deltas
// serially). Shard-major replay died with the snapshots — there is no
// longer a per-round row to read at random.
//
// Two parts are retrospective and make the representation exact, not
// approximate:
//
//   - Serial continuation. A slot's fresh walks continue serials from its
//     stored-survivor count (store.go's generation coda), which depends
//     on where every older cohort's tokens sit at the birth round. Each
//     cohort's replay therefore increments the NEXT round's arrival
//     table as tokens land; cohort b-1 delivers (and finishes writing
//     arrive[b]) one round before cohort b is created, so the serial
//     bases are always complete exactly when they are needed.
//   - Metrics and introspection. Queries (Metrics, TokensAt, TotalTokens,
//     AppendTokens, Inject) force every in-flight cohort's partial
//     trajectory up to the last stepped round, caching per-cohort
//     positions and resuming at delivery, so an event is counted iff its
//     round has run — bit-identical to the eager stores at any query
//     pattern and any worker count. The no-query hot path never pays for
//     any of this.
//
// Overdue is identically zero here for the same reason as the eager
// uncapped path: an undeferred token's age never exceeds WalkLength-1,
// and NewSoup clamps Deadline up to WalkLength.

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"dynp2p/internal/graph"
	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
)

// replayTok is one cached live token of a partially-evaluated cohort:
// the step-hash identity plus the current slot. 16 bytes, updated in
// place — replay is a single sequential stream per shard.
type replayTok struct {
	idser uint64 // src<<16 | serial
	birth int32  // birth round (normally the cohort round; Inject may differ)
	pos   int32  // slot the token occupies after the evalRound step
}

// injRec is one Inject call, recorded until its cohort is materialized.
type injRec struct {
	slot  int32
	count int32
	birth int32
	base  uint16 // serial base: the slot's stored count at inject time
	id    simnet.NodeID
}

// idDelta records one occupant change: slot's occupant became id in the
// entry's round. Applied forward in ring order these transform one
// round's id table into the next — churn is the only occupant writer.
type idDelta struct {
	slot int32
	id   simnet.NodeID
}

// lazyRound is one ring entry of recorded round inputs: the round's
// adjacency TRANSITION (deltas from the previous round's row, or a full
// snapshot when the interval was disrupted) plus the round's occupant
// changes.
type lazyRound struct {
	round     int32 // validity tag; -1 = empty
	anyChurn  bool
	disrupted bool              // snap holds the round's full row; deltas void
	deltas    []graph.PortDelta // row(round-1) → row(round), when !disrupted
	snap      []int32           // full n·d row, allocated on first disruption
	idDeltas  []idDelta         // occupant changes in this round (churned slots)
}

// lazyCohort tracks one birth cohort's evaluation state. Its token
// buffers live per birth shard in soupShard.lzToks.
type lazyCohort struct {
	round     int32 // birth round; -1 = empty
	evalRound int32 // replayed through this round (== round-1 at creation)
	created   bool
	delivered bool
	inj       []injRec
}

// lazySoup is the store-wide lazy state hanging off Soup.lz.
type lazySoup struct {
	T     int // WalkLength: trajectory length and delivery offset
	depth int // ring depth, T+2: covers every input a replay can need
	d     int // topology degree
	eng   *simnet.Engine

	firstRound, lastRound int // first/last round stepped; -1 before any

	rounds  []lazyRound
	arrives [][]int32 // arrives[r%depth][slot]: tokens stored at slot at round r
	cohorts []lazyCohort
	pending []injRec // injections for the next stepped round

	// Adjacency cursors over the delta ring (see the package comment).
	tailRound int     // oldest round any future replay can need
	tailRow   []int32 // row(tailRound); aliases a ring snap when tailOwn is false
	tailOwn   bool
	tailBuf   []int32 // tailRow's owned backing store
	repRound  int     // round repRow holds; -1 = unset
	repRow    []int32 // replay scratch row, stepped through the ring by deltas

	// Occupant-id cursors, same discipline (ids are never disrupted:
	// churn is their only writer and it is always incremental).
	tailIds []simnet.NodeID // ids at tailRound
	idRound int             // round idRow holds; -1 = unset
	idRow   []simnet.NodeID

	bar *shard.Barrier // round-major replay barrier, reused across advances

	// atomicArrive: with >1 workers, shards replay concurrently and land
	// tokens on arbitrary slots, so arrival-count increments go through
	// atomics; counts are additive, so the sums — and everything derived
	// from them — are identical at every worker count.
	atomicArrive bool
	countsOK     bool // per-shard counts caches reflect current state
}

// newLazySoup builds the ring. Cursor rows and per-round tables are
// allocated up front; per-round delta lists and snapshot fallbacks grow
// on demand (a steady incremental topology never allocates a snapshot
// beyond the first round's).
func newLazySoup(e *simnet.Engine, s *Soup) *lazySoup {
	T := s.p.WalkLength
	depth := T + 2
	n, d := s.n, e.Degree()
	lz := &lazySoup{
		T: T, depth: depth, d: d, eng: e,
		firstRound: -1, lastRound: -1,
		tailRound: -1, repRound: -1, idRound: -1,
		atomicArrive: s.workers > 1,
		rounds:       make([]lazyRound, depth),
		arrives:      make([][]int32, depth),
		cohorts:      make([]lazyCohort, depth),
		tailBuf:      make([]int32, n*d),
		repRow:       make([]int32, n*d),
		tailIds:      make([]simnet.NodeID, 0, n),
		idRow:        make([]simnet.NodeID, 0, n),
		bar:          shard.NewBarrier(1),
	}
	for i := range lz.rounds {
		lz.rounds[i].round = -1
		lz.arrives[i] = make([]int32, n)
		lz.cohorts[i].round = -1
	}
	for i := range s.shards {
		s.shards[i].lzToks = make([][]replayTok, depth)
	}
	// The ring consumes the graph's change journal: every incremental
	// rewire between soup observations becomes one 12-byte delta; bulk
	// rewrites surface as drain-time disruptions. The limit keeps a
	// worst-case round's delta bytes well under snapshot cost.
	e.Graph().EnableJournal(n * d / 8)
	// Replays need exact per-round death checks for up to T rounds back,
	// beyond what the engine's latest-occupancy record can answer.
	e.RetainReplacedHistory(depth)
	return lz
}

// entry returns the ring entry for round r, panicking if the ring no
// longer (or does not yet) cover it — every caller's round arithmetic is
// bounded by depth, so a miss is a bug, not a condition.
func (lz *lazySoup) entry(r int) *lazyRound {
	e := &lz.rounds[r%lz.depth]
	if int(e.round) != r {
		panic("walks: lazy ring does not cover the requested round")
	}
	return e
}

// rowAt materializes and returns the adjacency row of round target
// (tailRound <= target <= lastRound). Snapshot entries are returned
// aliased (zero copy — the Rerandomize oracle pays nothing it didn't
// pay with full-row rings). Delta entries step the repRow scratch
// forward from the nearest absolute anchor — or backward from where
// repRow already is, deltas being reversible, when that is cheaper than
// re-anchoring. The returned slice is read-only for callers and valid
// until the next rowAt/advanceTail call.
func (lz *lazySoup) rowAt(target int) []int32 {
	e := lz.entry(target)
	if e.disrupted {
		return e.snap
	}
	if lz.repRound == target {
		return lz.repRow
	}
	// Backward: unapply the intervening rounds' deltas when they are all
	// delta-encoded and collectively cheaper than a full-row copy.
	if lz.repRound > target {
		sum, ok := 0, true
		for r := lz.repRound; r > target; r-- {
			er := lz.entry(r)
			if er.disrupted {
				ok = false
				break
			}
			sum += len(er.deltas)
		}
		if ok && sum < len(lz.repRow)/2 {
			for r := lz.repRound; r > target; r-- {
				graph.UnapplyDeltas(lz.repRow, lz.entry(r).deltas)
			}
			lz.repRound = target
			return lz.repRow
		}
		lz.repRound = -1 // cheaper to re-anchor below
	}
	// Forward: anchor at the nearest absolute row at or below target —
	// repRow where it stands, a snapshot entry, or the tail row — then
	// apply each round's deltas up to target.
	anchor := -1
	var src []int32
	for r := target; r >= lz.tailRound; r-- {
		if r == lz.repRound {
			anchor, src = r, lz.repRow
			break
		}
		if er := lz.entry(r); er.disrupted {
			anchor, src = r, er.snap
			break
		}
		if r == lz.tailRound {
			anchor, src = r, lz.tailRow
			break
		}
	}
	if anchor < 0 {
		panic("walks: lazy ring cannot anchor an adjacency row")
	}
	if &src[0] != &lz.repRow[0] {
		copy(lz.repRow, src)
	}
	for r := anchor + 1; r <= target; r++ {
		graph.ApplyDeltas(lz.repRow, lz.entry(r).deltas)
	}
	lz.repRound = target
	return lz.repRow
}

// idsAt materializes the occupant-id table of round target
// (tailRound <= target <= lastRound), aliasing the tail table when the
// rounds coincide. Read-only for callers; valid until the next
// idsAt/advanceTail call.
func (lz *lazySoup) idsAt(target int) []simnet.NodeID {
	if target == lz.tailRound {
		return lz.tailIds
	}
	if lz.idRound == target {
		return lz.idRow
	}
	if lz.idRound < lz.tailRound || lz.idRound > target {
		lz.idRow = append(lz.idRow[:0], lz.tailIds...)
		lz.idRound = lz.tailRound
	}
	for r := lz.idRound + 1; r <= target; r++ {
		for _, ch := range lz.entry(r).idDeltas {
			lz.idRow[ch.slot] = ch.id
		}
	}
	lz.idRound = target
	return lz.idRow
}

// advanceTail moves the tail cursors forward to round to, applying each
// crossed round's deltas (or adopting its snapshot by reference). Called
// after a delivery retires the old tail round.
func (lz *lazySoup) advanceTail(to int) {
	for r := lz.tailRound + 1; r <= to; r++ {
		e := lz.entry(r)
		if e.disrupted {
			lz.tailRow, lz.tailOwn = e.snap, false
		} else {
			if !lz.tailOwn {
				copy(lz.tailBuf, lz.tailRow)
				lz.tailRow, lz.tailOwn = lz.tailBuf, true
			}
			graph.ApplyDeltas(lz.tailRow, e.deltas)
		}
		for _, ch := range e.idDeltas {
			lz.tailIds[ch.slot] = ch.id
		}
		lz.tailRound = r
	}
}

// stepLazy is the lazy store's StepRound: record the round's inputs
// (journal drain, id deltas), seat the round's cohort (identity only —
// no token state), replay the one cohort falling due, advance the tail
// cursors past the retired round, and publish the delivered samples.
func (s *Soup) stepLazy(e *simnet.Engine, round int) {
	lz := s.lz
	ri := round % lz.depth
	rr := &lz.rounds[ri]
	rr.round = int32(round)
	rr.anyChurn = round > 0 && len(e.ChurnedThisRound()) > 0
	// Adjacency transition: the drained change journal when the interval
	// was incremental, a full snapshot when it was disrupted (bulk
	// rewrite or over-limit churn).
	g := e.Graph()
	deltas, disrupted := g.DrainJournal()
	if disrupted {
		rr.disrupted = true
		if rr.snap == nil {
			rr.snap = make([]int32, s.n*lz.d)
		}
		copy(rr.snap, g.Adjacency())
	} else {
		rr.disrupted = false
		rr.deltas = append(rr.deltas[:0], deltas...)
	}
	// Occupant changes: the churned slots' fresh ids.
	rr.idDeltas = rr.idDeltas[:0]
	if rr.anyChurn {
		for _, slot := range e.ChurnedThisRound() {
			rr.idDeltas = append(rr.idDeltas, idDelta{slot: int32(slot), id: e.IDAt(int(slot))})
		}
	}
	if lz.firstRound < 0 {
		lz.firstRound = round
		lz.tailRound = round
		if rr.disrupted {
			lz.tailRow, lz.tailOwn = rr.snap, false
		} else {
			// The journal starts disrupted, so the first step's drain is a
			// snapshot in practice; anchor off the live graph regardless.
			copy(lz.tailBuf, g.Adjacency())
			lz.tailRow, lz.tailOwn = lz.tailBuf, true
		}
		lz.tailIds = e.LiveIDs(lz.tailIds[:0])
	}
	// arrive[round+1] starts accumulating this round (delivery landings
	// now, query-forced partial landings after); its ring slot's previous
	// tenant was last read at cohort creation T+1 rounds ago.
	arr := lz.arrives[(round+1)%lz.depth]
	for i := range arr {
		arr[i] = 0
	}
	coh := &lz.cohorts[ri]
	oldInj := coh.inj
	*coh = lazyCohort{round: int32(round), evalRound: int32(round - 1), inj: lz.pending}
	if oldInj != nil {
		oldInj = oldInj[:0]
	}
	lz.pending = oldInj
	for i := range s.shards {
		ss := &s.shards[i]
		for dsh := range ss.outSmp {
			ss.outSmp[dsh] = ss.outSmp[dsh][:0]
		}
	}
	lz.lastRound = round
	if c := round - lz.T + 1; c >= lz.firstRound {
		s.lzAdvance(c, round)
		ci := c % lz.depth
		for i := range s.shards {
			ss := &s.shards[i]
			if buf := ss.lzToks[ci]; buf != nil {
				ss.lzFree = append(ss.lzFree, buf[:0])
				ss.lzToks[ci] = nil
			}
		}
		lz.cohorts[ci].delivered = true
		// Round c's inputs are never read again: the tail moves on (capped
		// at the last recorded round — T = 1 delivers the round it records).
		lz.advanceTail(min(c+1, lz.lastRound))
	}
	s.gatherSamples()
	lz.countsOK = false
}

// gatherSamples rebuilds the per-shard sample stores from outSmp staging
// (shared counting sort with the eager gather).
func (s *Soup) gatherSamples() {
	s.grid.Run(s.workers, func(dsh int) {
		s.gatherSamplesShard(&s.shards[dsh], dsh)
	})
}

// lzAdvance creates cohort b if needed and replays it through round to,
// folding the tallies into the soup metrics. Callers guarantee every
// older cohort has already been replayed through b-1 (StepRound delivers
// in birth order; lzSync forces in birth order), which is what makes the
// arrival tables — and so the serial bases — complete when read.
//
// Replay is round-major at every worker count: all shards step through
// round r against the one materialized adjacency row before any shard
// sees r+1. Inline this is just loop order; in parallel, workers claim
// shards from a cursor per round and a barrier separates rounds, its
// last-arriver callback advancing the shared row (and resetting the
// cursor) serially. Arrival updates are atomic and additive, so the
// result is bit-identical at every worker count.
func (s *Soup) lzAdvance(b, to int) {
	lz := s.lz
	coh := &lz.cohorts[b%lz.depth]
	if int(coh.round) != b {
		panic("walks: lazy cohort ring does not cover the requested round")
	}
	from := b
	if coh.created {
		if int(coh.evalRound) >= to {
			return
		}
		from = int(coh.evalRound) + 1
	}
	final := b + lz.T - 1
	nsh := len(s.shards)
	if wk := min(s.workers, nsh); wk == 1 {
		if !coh.created {
			ids := lz.idsAt(b)
			for sh := range s.shards {
				s.lzCreateShard(&s.shards[sh], b, ids)
			}
		}
		for r := from; r <= to; r++ {
			row := lz.rowAt(r)
			fin := r == final
			for sh := range s.shards {
				s.lzReplayShard(&s.shards[sh], b, r, fin, row)
			}
		}
	} else {
		var createIds []simnet.NodeID
		if !coh.created {
			createIds = lz.idsAt(b)
		}
		lz.bar.Reset(wk)
		var cursor atomic.Int64
		r := from
		curRow := lz.rowAt(from)
		body := func() {
			if createIds != nil {
				for {
					sh := int(cursor.Add(1) - 1)
					if sh >= nsh {
						break
					}
					s.lzCreateShard(&s.shards[sh], b, createIds)
				}
				lz.bar.Wait(func() { cursor.Store(0) })
			}
			for {
				cr, crow := r, curRow
				fin := cr == final
				for {
					sh := int(cursor.Add(1) - 1)
					if sh >= nsh {
						break
					}
					s.lzReplayShard(&s.shards[sh], b, cr, fin, crow)
				}
				if cr == to {
					lz.bar.Wait(nil)
					return
				}
				lz.bar.Wait(func() {
					cursor.Store(0)
					r = cr + 1
					curRow = lz.rowAt(r)
				})
			}
		}
		var wg sync.WaitGroup
		for w := 1; w < wk; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body()
			}()
		}
		body()
		wg.Wait()
	}
	coh.created = true
	coh.evalRound = int32(to)
	for i := range s.shards {
		s.m.add(&s.shards[i].tally)
		s.shards[i].tally = Metrics{}
	}
}

// lzReplaced tests slot in a replacement bitset (nil = no churn).
func lzReplaced(death []uint64, slot int32) bool {
	return death != nil && death[uint32(slot)>>6]>>(uint32(slot)&63)&1 != 0
}

// lzCreateShard materializes cohort b's tokens born in ss's slots:
// recorded injections first (they were stored at their slot before the
// round began, so they die with a churned carrier and their survivors
// count toward the generation serial base), then one implicit fresh batch
// per slot, serials continuing from the slot's stored-survivor count —
// identical semantics to the eager scatter's generation coda. ids is the
// round-b occupant table materialized by the caller.
func (s *Soup) lzCreateShard(ss *soupShard, b int, ids []simnet.NodeID) {
	lz := s.lz
	ring := &lz.rounds[b%lz.depth]
	arrive := lz.arrives[b%lz.depth]
	coh := &lz.cohorts[b%lz.depth]
	var death []uint64
	if ring.anyChurn {
		death = lz.eng.ReplacedBitsInRound(b)
	}
	toks := ss.lzPop()
	var generated, died int64
	lo, hi := ss.lo, ss.hi
	hasInj := false
	for i := range coh.inj {
		in := &coh.inj[i]
		slot := int(in.slot)
		if slot < lo || slot >= hi {
			continue
		}
		if !hasInj {
			hasInj = true
			cur := ss.cursor
			for j := range cur {
				cur[j] = 0
			}
		}
		if lzReplaced(death, in.slot) {
			died += int64(in.count)
			continue
		}
		ss.cursor[slot-lo] += in.count
		idser := uint64(in.id) << 16
		for k := int32(0); k < in.count; k++ {
			toks = append(toks, replayTok{idser: idser | uint64(in.base+uint16(k)), birth: in.birth, pos: in.slot})
		}
	}
	if wpr := s.p.WalksPerRound; wpr > 0 {
		for slot := lo; slot < hi; slot++ {
			base := 0
			if !lzReplaced(death, int32(slot)) {
				base = int(arrive[slot])
				if hasInj {
					base += int(ss.cursor[slot-lo])
				}
			}
			// Same uint16-serial clamp as the eager generation coda.
			gen := wpr
			if limit := 1<<16 - base; gen > limit {
				gen = max(limit, 0)
			}
			generated += int64(gen)
			if gen == 0 {
				continue
			}
			id := ids[slot]
			if uint64(id) >= maxSrcID {
				panic("walks: node id exceeds the packed staging range")
			}
			idser := uint64(id) << 16
			for k := 0; k < gen; k++ {
				toks = append(toks, replayTok{idser: idser | uint64(uint16(base+k)), birth: int32(b), pos: int32(slot)})
			}
		}
	}
	ss.lzToks[b%lz.depth] = toks
	ss.tally.Generated += generated
	ss.tally.Died += died
}

// lzReplayShard advances cohort b's tokens in ss by the single round r:
// per-step death check against the engine's replacement record, one
// step hash, one row load against the materialized round-r adjacency,
// and — for non-final rounds — one arrival increment at the landing
// slot. The step core matches store.go's scatter loops bit for bit.
func (s *Soup) lzReplayShard(ss *soupShard, b, r int, final bool, row []int32) {
	lz := s.lz
	ring := &lz.rounds[r%lz.depth]
	toks := ss.lzToks[b%lz.depth]
	if len(toks) == 0 {
		return
	}
	d := lz.d
	du := uint64(d)
	var death []uint64
	// At r == b every token is freshly minted (injected deaths were
	// resolved at creation), so only later rounds check for churn.
	if r > b && ring.anyChurn {
		death = lz.eng.ReplacedBitsInRound(r)
	}
	arr := lz.arrives[(r+1)%lz.depth]
	atomicArr := lz.atomicArrive
	lazyWalk := s.p.Lazy
	seed := s.seed
	slotLoc := s.slotLoc
	var died, moves, completed int64
	var pfSink int32
	w := 0
	for i := 0; i < len(toks); i++ {
		// The upcoming row access is random; touch it a few records ahead
		// so it hits L1 when its turn comes (the sink keeps the load live).
		if i+6 < len(toks) {
			pfSink += row[int(toks[i+6].pos)*d]
		}
		t := toks[i]
		if lzReplaced(death, t.pos) {
			died++
			continue
		}
		// Step core — keep in sync with scatter/scatterUncapped.
		h := stepHash(seed, r, simnet.NodeID(t.idser>>16), t.birth, uint16(t.idser))
		pos := t.pos
		if lazyStay := lazyWalk && h>>63 == 1; !lazyStay {
			if lazyWalk {
				h <<= 1
			}
			port, _ := bits.Mul64(h, du)
			pos = row[int(t.pos)*d+int(port)]
		}
		moves++
		if final {
			completed++
			loc := slotLoc[pos]
			dsh := loc >> shard.LocalBits
			ss.outSmp[dsh] = append(ss.outSmp[dsh], stagedSmp{
				loc: t.idser>>16<<shard.LocalBits | uint64(loc&localMask), birth: t.birth})
		} else {
			if atomicArr {
				atomic.AddInt32(&arr[pos], 1)
			} else {
				arr[pos]++
			}
			t.pos = pos
			toks[w] = t
			w++
		}
	}
	ss.lzToks[b%lz.depth] = toks[:w]
	ss.pfSink += uint32(pfSink)
	ss.tally.Died += died
	ss.tally.Moves += moves
	ss.tally.Completed += completed
}

// lzPop takes a recycled token buffer (empty, capacity retained) from
// the shard's pool; the no-query steady state keeps exactly one buffer
// in circulation per shard.
func (ss *soupShard) lzPop() []replayTok {
	if n := len(ss.lzFree); n > 0 {
		buf := ss.lzFree[n-1]
		ss.lzFree = ss.lzFree[:n-1]
		return buf
	}
	return make([]replayTok, 0, ss.lzCap)
}

// lzSync forces every in-flight cohort's evaluation up to the last
// stepped round (and optionally refreshes the per-slot count caches),
// serialized so concurrent protocol handlers can query freely. Repeat
// calls are cheap: each cohort resumes from its cached positions, so a
// query-every-round workload degrades gracefully to eager-equivalent
// work rather than re-deriving trajectories.
func (s *Soup) lzSync(wantCounts bool) {
	lz := s.lz
	s.countsMu.Lock()
	defer s.countsMu.Unlock()
	if R := lz.lastRound; R >= 0 {
		for b := max(lz.firstRound, R-lz.T+2); b <= R; b++ {
			s.lzAdvance(b, R)
		}
	}
	if wantCounts && !lz.countsOK {
		s.lzFillCounts()
		lz.countsOK = true
	}
}

// lzFillCounts rebuilds the per-shard per-slot token counts from the
// cached cohort positions plus pending injections. Called under countsMu.
func (s *Soup) lzFillCounts() {
	lz := s.lz
	for i := range s.shards {
		cs := s.shards[i].counts
		for j := range cs {
			cs[j] = 0
		}
	}
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			for i := range s.shards {
				for _, t := range s.shards[i].lzToks[ci] {
					loc := s.slotLoc[t.pos]
					s.shards[loc>>shard.LocalBits].counts[loc&localMask]++
				}
			}
		}
	}
	for i := range lz.pending {
		in := &lz.pending[i]
		loc := s.slotLoc[in.slot]
		s.shards[loc>>shard.LocalBits].counts[loc&localMask] += in.count
	}
}

// lzTotalTokens sums live cohort sizes plus pending injections.
func (s *Soup) lzTotalTokens() int {
	s.lzSync(false)
	lz := s.lz
	t := 0
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			for i := range s.shards {
				t += len(s.shards[i].lzToks[ci])
			}
		}
	}
	for i := range lz.pending {
		t += int(lz.pending[i].count)
	}
	return t
}

// lzAppendTokens appends slot's tokens in the lazy store's canonical
// order: cohorts by birth round, within a cohort by birth shard then
// materialization order, pending injections last.
func (s *Soup) lzAppendTokens(slot int, dst []Token) []Token {
	s.lzSync(false)
	lz := s.lz
	if lz.lastRound >= 0 {
		for b := max(lz.firstRound, lz.lastRound-lz.T+2); b <= lz.lastRound; b++ {
			ci := b % lz.depth
			steps := uint16(lz.T - (lz.lastRound - b + 1))
			for i := range s.shards {
				for _, t := range s.shards[i].lzToks[ci] {
					if int(t.pos) == slot {
						dst = append(dst, Token{
							Src: simnet.NodeID(t.idser >> 16), Birth: t.birth,
							Serial: uint16(t.idser), Steps: steps,
						})
					}
				}
			}
		}
	}
	for i := range lz.pending {
		in := &lz.pending[i]
		if int(in.slot) != slot {
			continue
		}
		for k := int32(0); k < in.count; k++ {
			dst = append(dst, Token{Src: in.id, Birth: in.birth,
				Serial: in.base + uint16(k), Steps: uint16(s.p.WalkLength)})
		}
	}
	return dst
}

// lzInject records an injection for the next stepped round. The serial
// base (the slot's stored count at inject time) was computed by the
// caller via TokensAt, which forced evaluation, so generation continuing
// from the post-inject count can never mint a colliding identity.
func (s *Soup) lzInject(slot, count int, id simnet.NodeID, birth int32, base uint16) {
	if uint64(id) >= maxSrcID {
		panic("walks: node id exceeds the packed staging range")
	}
	lz := s.lz
	lz.pending = append(lz.pending, injRec{
		slot: int32(slot), count: int32(count), id: id, birth: birth, base: base,
	})
	lz.countsOK = false
}
