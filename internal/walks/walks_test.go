package walks

import (
	"math"
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/simnet"
	"dynp2p/internal/stats"
)

func newEngine(n int, law churn.Law, seeds ...uint64) *simnet.Engine {
	advSeed, protoSeed := uint64(1), uint64(2)
	if len(seeds) > 0 {
		advSeed = seeds[0]
	}
	if len(seeds) > 1 {
		protoSeed = seeds[1]
	}
	return simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: advSeed, ProtocolSeed: protoSeed,
		Strategy: churn.Uniform, Law: law,
	})
}

func TestTokenConservationNoChurn(t *testing.T) {
	// Without churn, Generated = Completed + InFlight at all times.
	e := newEngine(256, churn.ZeroLaw{})
	p := Params{WalksPerRound: 3, WalkLength: 10, Deadline: 100}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	for r := 0; r < 30; r++ {
		e.RunRound(simnet.NopHandler{})
		m := s.Metrics()
		if m.Died != 0 || m.Overdue != 0 {
			t.Fatalf("round %d: unexpected losses %+v", r, m)
		}
		if m.Generated != m.Completed+int64(s.TotalTokens()) {
			t.Fatalf("round %d: conservation violated: %+v inflight=%d",
				r, m, s.TotalTokens())
		}
	}
}

func TestWalksCompleteInExactlyTRounds(t *testing.T) {
	// With no cap and no churn, a batch injected at round r completes at
	// round r+T-1... the T-th movement. Verify via a single injection.
	e := newEngine(128, churn.ZeroLaw{})
	p := Params{WalksPerRound: 0, WalkLength: 5, Deadline: 50}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	e.RunRound(simnet.NopHandler{}) // round 0, no tokens
	s.Inject(e, 7, 100, 1)
	completedAt := -1
	for r := 1; r <= 10; r++ {
		e.RunRound(simnet.NopHandler{})
		if s.Metrics().Completed == 100 && completedAt < 0 {
			completedAt = r
		}
	}
	if completedAt != 5 {
		t.Fatalf("batch completed at round %d, want 5 (T=5)", completedAt)
	}
}

func TestSamplesCarrySource(t *testing.T) {
	e := newEngine(64, churn.ZeroLaw{})
	p := Params{WalksPerRound: 0, WalkLength: 3, Deadline: 30}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	e.RunRound(simnet.NopHandler{})
	srcID := e.IDAt(5)
	s.Inject(e, 5, 50, 1)
	total := 0
	for r := 1; r <= 3; r++ {
		e.RunRound(simnet.NopHandler{})
		for slot := 0; slot < e.N(); slot++ {
			for _, sample := range s.Samples(slot) {
				if sample.Src != srcID {
					t.Fatalf("sample src %d, want %d", sample.Src, srcID)
				}
				if sample.Birth != 1 {
					t.Fatalf("sample birth %d, want 1", sample.Birth)
				}
				total++
			}
		}
	}
	if total != 50 {
		t.Fatalf("delivered %d samples, want 50", total)
	}
}

func TestChurnKillsTokens(t *testing.T) {
	e := newEngine(64, churn.FixedLaw{Count: 8})
	p := Params{WalksPerRound: 2, WalkLength: 20, Deadline: 100}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	for r := 0; r < 25; r++ {
		e.RunRound(simnet.NopHandler{})
	}
	m := s.Metrics()
	if m.Died == 0 {
		t.Fatal("no tokens died despite churn")
	}
	if m.Generated != m.Completed+m.Died+m.Overdue+int64(s.TotalTokens()) {
		t.Fatalf("conservation violated: %+v inflight=%d", m, s.TotalTokens())
	}
}

func TestForwardCapDefersTokens(t *testing.T) {
	e := newEngine(64, churn.ZeroLaw{})
	p := Params{WalksPerRound: 10, WalkLength: 8, Deadline: 80, ForwardCap: 5}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	for r := 0; r < 10; r++ {
		e.RunRound(simnet.NopHandler{})
	}
	if s.Metrics().Deferred == 0 {
		t.Fatal("tight forward cap never deferred a token")
	}
}

func TestDeadlineEvictsTokens(t *testing.T) {
	// Cap of 1 with 10 generated per round: queues explode, deadline must
	// reclaim them.
	e := newEngine(32, churn.ZeroLaw{})
	p := Params{WalksPerRound: 10, WalkLength: 8, Deadline: 10, ForwardCap: 1}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	for r := 0; r < 40; r++ {
		e.RunRound(simnet.NopHandler{})
	}
	if s.Metrics().Overdue == 0 {
		t.Fatal("deadline never evicted a token")
	}
	// In-flight population must stay bounded (roughly n * gen * deadline).
	if s.TotalTokens() > 32*10*12 {
		t.Fatalf("token population unbounded: %d", s.TotalTokens())
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (int64, int64, []int) {
		e := newEngine(128, churn.FixedLaw{Count: 4})
		p := Params{WalksPerRound: 4, WalkLength: 10, Deadline: 40, ForwardCap: 30}
		s := NewSoup(e, p, workers)
		e.AddHook(s)
		var arrivals []int
		for r := 0; r < 20; r++ {
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < e.N(); slot++ {
				for _, sm := range s.Samples(slot) {
					arrivals = append(arrivals, slot*1000000+int(sm.Src))
				}
			}
		}
		m := s.Metrics()
		return m.Completed, m.Died, arrivals
	}
	c1, d1, a1 := run(1)
	c2, d2, a2 := run(7)
	if c1 != c2 || d1 != d2 {
		t.Fatalf("metrics differ across worker counts: (%d,%d) vs (%d,%d)", c1, d1, c2, d2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival streams differ in length: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival streams differ at %d", i)
		}
	}
}

func TestMixingToNearUniform(t *testing.T) {
	// Static-node sanity check of the soup's core promise: on an expander
	// without churn, walk endpoints approach uniform. Inject batches from
	// one slot repeatedly and check the endpoint histogram's TV distance.
	const n = 512
	e := newEngine(n, churn.ZeroLaw{})
	p := Params{WalksPerRound: 0, WalkLength: 2 * int(math.Ceil(math.Log(n))), Deadline: 200}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	e.RunRound(simnet.NopHandler{})
	counts := make([]int, n)
	const batches = 40
	const perBatch = 500
	for b := 0; b < batches; b++ {
		s.Inject(e, 3, perBatch, e.Round())
		for r := 0; r < p.WalkLength; r++ {
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < n; slot++ {
				counts[slot] += len(s.Samples(slot))
			}
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != batches*perBatch {
		t.Fatalf("lost walks: %d of %d arrived", total, batches*perBatch)
	}
	tv := stats.TVDistanceFromUniform(counts)
	// With 20000 samples over 512 bins, sampling noise alone gives
	// TV ≈ sqrt(512/(2·pi·20000)) ≈ 0.06; mixing error should keep us
	// well under 0.15.
	if tv > 0.15 {
		t.Fatalf("endpoint distribution TV = %v, want < 0.15", tv)
	}
}

func TestLazyWalksStillMix(t *testing.T) {
	const n = 256
	e := newEngine(n, churn.ZeroLaw{})
	T := 4 * int(math.Ceil(math.Log(n))) // lazy needs ~2x steps
	p := Params{WalksPerRound: 0, WalkLength: T, Deadline: 10 * T, Lazy: true}
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	e.RunRound(simnet.NopHandler{})
	counts := make([]int, n)
	const batches = 20
	for b := 0; b < batches; b++ {
		s.Inject(e, 0, 500, e.Round())
		for r := 0; r < T; r++ {
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < n; slot++ {
				counts[slot] += len(s.Samples(slot))
			}
		}
	}
	tv := stats.TVDistanceFromUniform(counts)
	if tv > 0.2 {
		t.Fatalf("lazy endpoint TV = %v, want < 0.2", tv)
	}
}

func TestDefaultParamsScaling(t *testing.T) {
	p1 := DefaultParams(1000)
	p2 := DefaultParams(1000000)
	if p2.WalkLength <= p1.WalkLength {
		t.Fatal("walk length should grow with n")
	}
	if p1.Deadline < p1.WalkLength {
		t.Fatal("deadline below walk length")
	}
	if p1.WalksPerRound < 1 {
		t.Fatal("walks per round must be positive")
	}
}

func TestInjectCountsGenerated(t *testing.T) {
	e := newEngine(32, churn.ZeroLaw{})
	s := NewSoup(e, Params{WalkLength: 4, Deadline: 10}, 0)
	s.Inject(e, 0, 25, 0)
	if s.Metrics().Generated != 25 {
		t.Fatalf("generated = %d, want 25", s.Metrics().Generated)
	}
	if s.TokensAt(0) != 25 {
		t.Fatalf("TokensAt(0) = %d, want 25", s.TokensAt(0))
	}
}

func TestLazyStepUsesAllPorts(t *testing.T) {
	// Regression test for the fastrange port pick: with Lazy=true the coin
	// and the port must come from disjoint hash bits, or half the ports
	// are never taken. On a static topology, one-step walks injected at a
	// slot must reach every distinct neighbour of that slot.
	e := simnet.New(simnet.Config{
		N: 64, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
	})
	s := NewSoup(e, Params{WalkLength: 1, Deadline: 4, Lazy: true}, 0)
	e.AddHook(s)
	s.Inject(e, 0, 4000, 0)
	srcID := e.IDAt(0)
	neighbors := map[int]bool{}
	for _, w := range e.Graph().Neighbors(0) {
		neighbors[int(w)] = false
	}
	e.RunRound(simnet.NopHandler{})
	for slot := 0; slot < e.N(); slot++ {
		for _, smp := range s.Samples(slot) {
			if smp.Src != srcID {
				continue
			}
			if _, ok := neighbors[slot]; !ok && slot != 0 {
				t.Fatalf("walk landed at %d, not a neighbour of 0", slot)
			}
			neighbors[slot] = true
		}
	}
	for slot, hit := range neighbors {
		if !hit && slot != 0 {
			t.Errorf("neighbour slot %d (a port of slot 0) never reached by 4000 one-step lazy walks", slot)
		}
	}
}

func TestInjectClampsSerialOverflow(t *testing.T) {
	// The per-(source, round) Serial is a uint16: a slot can start at most
	// 65536 walks in one round before serials would wrap and collide.
	e := newEngine(32, churn.ZeroLaw{})
	s := NewSoup(e, Params{WalkLength: 4, Deadline: 10}, 0)
	if got := s.Inject(e, 0, 1<<16+500, 0); got != 1<<16 {
		t.Fatalf("injected %d, want %d", got, 1<<16)
	}
	if got := s.Inject(e, 0, 10, 0); got != 0 {
		t.Fatalf("over-full slot injected %d more, want 0", got)
	}
	if g := s.Metrics().Generated; g != 1<<16 {
		t.Fatalf("generated = %d, want %d", g, 1<<16)
	}
	if got := s.Inject(e, 1, 10, 0); got != 10 {
		t.Fatalf("fresh slot injected %d, want 10", got)
	}
}

func TestInjectClampNoLockstepTokens(t *testing.T) {
	// Regression for the uint16-serial clamp surviving the columnar
	// rewrite, on both store representations: injecting past 65536 must
	// return the clamped count, and no two tokens in the bucket may share
	// a (Src, Birth, Serial) step-hash identity — a wrapped serial would
	// make the pair walk in lock-step forever.
	for _, cap := range []int{0, 1 << 20} { // uncapped fast path, capped store
		e := newEngine(32, churn.ZeroLaw{})
		s := NewSoup(e, Params{WalkLength: 4, Deadline: 10, ForwardCap: cap}, 0)
		if got := s.Inject(e, 3, 1<<16+500, 0); got != 1<<16 {
			t.Fatalf("cap=%d: injected %d, want %d", cap, got, 1<<16)
		}
		if got := s.Inject(e, 3, 1, 0); got != 0 {
			t.Fatalf("cap=%d: over-full slot accepted another token", cap)
		}
		toks := s.AppendTokens(3, nil)
		if len(toks) != 1<<16 {
			t.Fatalf("cap=%d: bucket holds %d tokens, want %d", cap, len(toks), 1<<16)
		}
		seen := make(map[Token]bool, len(toks))
		for _, tok := range toks {
			id := Token{Src: tok.Src, Birth: tok.Birth, Serial: tok.Serial}
			if seen[id] {
				t.Fatalf("cap=%d: duplicate step-hash identity %+v", cap, id)
			}
			seen[id] = true
		}
	}
}

func TestNewSoupValidation(t *testing.T) {
	e := newEngine(32, churn.ZeroLaw{})
	defer func() {
		if recover() == nil {
			t.Fatal("zero walk length did not panic")
		}
	}()
	NewSoup(e, Params{WalkLength: 0}, 0)
}

func BenchmarkMicroSoupRound(b *testing.B) {
	e := newEngine(4096, churn.PaperLaw(1, 0.5))
	p := DefaultParams(4096)
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	// Warm up to steady-state token population.
	for r := 0; r < p.WalkLength+2; r++ {
		e.RunRound(simnet.NopHandler{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound(simnet.NopHandler{})
	}
	b.ReportMetric(float64(s.Metrics().Moves)/float64(b.N), "token-moves/round")
}
