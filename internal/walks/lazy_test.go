package walks

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/simnet"
)

// lazyTestParams is the standard churny configuration the lazy tests run.
func lazyTestParams() Params {
	return Params{WalksPerRound: 4, WalkLength: 8, Deadline: 30, Lazy: true, Store: StoreLazy}
}

// TestLazyForcingIndependence pins that query-time forcing is purely
// observational: a lazy soup interrogated every round (Metrics, TokensAt,
// TotalTokens — all of which force partial cohort evaluation) must
// deliver byte-for-byte the same per-round sample stream and final
// counters as an identical run that is never queried mid-flight. This is
// the regression net for the resume bookkeeping (evalRound, cached
// positions, incremental arrival counts): any double-count or missed
// resume shows up as a divergence here.
func TestLazyForcingIndependence(t *testing.T) {
	const n, rounds = 128, 60
	run := func(query bool) ([]Sample, Metrics) {
		e := newEngine(n, churn.FixedLaw{Count: 4}, 21, 22)
		s := NewSoup(e, lazyTestParams(), 0)
		e.AddHook(s)
		var stream []Sample
		for r := 0; r < rounds; r++ {
			if r%11 == 3 {
				s.Inject(e, (r*7)%n, 10, e.Round())
			}
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < n; slot++ {
				stream = append(stream, s.Samples(slot)...)
			}
			if query {
				_ = s.Metrics()
				_ = s.TotalTokens()
				for slot := 0; slot < n; slot += 17 {
					_ = s.TokensAt(slot)
				}
			}
		}
		return stream, s.Metrics()
	}
	qStream, qMetrics := run(true)
	pStream, pMetrics := run(false)
	if qMetrics != pMetrics {
		t.Fatalf("metrics diverge under querying:\nqueried %+v\npure    %+v", qMetrics, pMetrics)
	}
	if len(qStream) != len(pStream) {
		t.Fatalf("sample streams differ in length: %d vs %d", len(qStream), len(pStream))
	}
	for i := range qStream {
		if qStream[i] != pStream[i] {
			t.Fatalf("sample stream diverges at %d: %+v vs %+v", i, qStream[i], pStream[i])
		}
	}
}

// TestLazyDeterministicAcrossWorkerCounts is the lazy-store sibling of
// TestDeterministicAcrossWorkerCounts (which runs the capped store): the
// full ordered arrival stream, metrics, and per-slot counts must be
// identical at every worker count even though multi-worker replays use
// atomic arrival updates and shard-major evaluation order.
func TestLazyDeterministicAcrossWorkerCounts(t *testing.T) {
	const n, rounds = 128, 40
	run := func(workers int) (Metrics, []int) {
		e := newEngine(n, churn.FixedLaw{Count: 4}, 31, 32)
		s := NewSoup(e, lazyTestParams(), workers)
		e.AddHook(s)
		var arrivals []int
		for r := 0; r < rounds; r++ {
			if r%9 == 2 {
				s.Inject(e, (r*5)%n, 7, e.Round())
			}
			e.RunRound(simnet.NopHandler{})
			for slot := 0; slot < n; slot++ {
				for _, sm := range s.Samples(slot) {
					arrivals = append(arrivals, slot*1000000+int(sm.Src))
				}
				arrivals = append(arrivals, -1-s.TokensAt(slot))
			}
		}
		return s.Metrics(), arrivals
	}
	m1, a1 := run(1)
	m7, a7 := run(7)
	if m1 != m7 {
		t.Fatalf("metrics differ across worker counts:\n  w=1: %+v\n  w=7: %+v", m1, m7)
	}
	if len(a1) != len(a7) {
		t.Fatalf("arrival streams differ in length: %d vs %d", len(a1), len(a7))
	}
	for i := range a1 {
		if a1[i] != a7[i] {
			t.Fatalf("arrival streams differ at %d: %d vs %d", i, a1[i], a7[i])
		}
	}
}

// TestInjectGenerationSerialDisjoint pins the Inject / generation-coda
// serial-disjointness invariant in every store mode: generation continues
// serials from the *post-inject* stored count, so injecting into a slot
// immediately before RunRound — including into the slot that also
// generates that round — must never mint two tokens sharing a
// (Src, Birth, Serial) step-hash identity (a collision would make the
// pair walk in lock-step forever). The run churns, so the audit also
// covers the replaced-slot path where generation restarts at serial 0
// under a fresh id while the injected tokens died with the old one. All
// in-flight identities are audited every round up to and including each
// cohort's delivery round.
func TestInjectGenerationSerialDisjoint(t *testing.T) {
	const n, rounds = 64, 40
	for _, mode := range []struct {
		name string
		p    Params
	}{
		{"capped", Params{WalksPerRound: 3, WalkLength: 6, Deadline: 20, ForwardCap: 1 << 20, Store: StoreCapped}},
		{"eager", Params{WalksPerRound: 3, WalkLength: 6, Deadline: 20, Store: StoreEager}},
		{"lazy", Params{WalksPerRound: 3, WalkLength: 6, Deadline: 20, Store: StoreLazy}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e := newEngine(n, churn.FixedLaw{Count: 5}, 41, 42)
			s := NewSoup(e, mode.p, 0)
			e.AddHook(s)
			var toks []Token
			seen := make(map[Token]bool)
			for r := 0; r < rounds; r++ {
				slot := (r * 13) % n
				injected := s.Inject(e, slot, 25, e.Round())
				if injected != 25 {
					t.Fatalf("round %d: injected %d, want 25", r, injected)
				}
				e.RunRound(simnet.NopHandler{})
				clear(seen)
				for sl := 0; sl < n; sl++ {
					toks = s.AppendTokens(sl, toks[:0])
					for _, tok := range toks {
						id := Token{Src: tok.Src, Birth: tok.Birth, Serial: tok.Serial}
						if seen[id] {
							t.Fatalf("round %d: duplicate step-hash identity %+v at slot %d", r, id, sl)
						}
						seen[id] = true
					}
				}
			}
			if s.Metrics().Completed == 0 {
				t.Fatal("no cohort ever delivered; the audit never crossed a delivery round")
			}
		})
	}
}

// TestStoreKindValidation pins the Params.Store / ForwardCap contract.
func TestStoreKindValidation(t *testing.T) {
	e := newEngine(32, churn.ZeroLaw{})
	mustPanic := func(name string, p Params) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: NewSoup did not panic", name)
			}
		}()
		NewSoup(e, p, 0)
	}
	mustPanic("capped without cap", Params{WalkLength: 4, Store: StoreCapped})
	mustPanic("lazy with cap", Params{WalkLength: 4, ForwardCap: 3, Store: StoreLazy})
	mustPanic("eager with cap", Params{WalkLength: 4, ForwardCap: 3, Store: StoreEager})
	if s := NewSoup(e, Params{WalkLength: 4}, 0); s.Params().Store != StoreLazy {
		t.Fatalf("auto uncapped resolved to %v, want StoreLazy", s.Params().Store)
	}
	if s := NewSoup(e, Params{WalkLength: 4, ForwardCap: 2}, 0); s.Params().Store != StoreCapped {
		t.Fatalf("auto capped resolved to %v, want StoreCapped", s.Params().Store)
	}
}

// TestLazySteadyStateReleasesBuffers pins the memory story the lazy store
// exists for: in a no-query steady state the only live token buffers are
// the delivering cohort's, recycled through the per-shard pool — the
// in-flight population is never materialized.
func TestLazySteadyStateReleasesBuffers(t *testing.T) {
	const n = 256
	e := newEngine(n, churn.FixedLaw{Count: 2})
	p := lazyTestParams()
	s := NewSoup(e, p, 0)
	e.AddHook(s)
	for r := 0; r < 4*p.WalkLength; r++ {
		e.RunRound(simnet.NopHandler{})
	}
	live, pooled := 0, 0
	for i := range s.shards {
		ss := &s.shards[i]
		for _, buf := range ss.lzToks {
			if buf != nil {
				live++
			}
		}
		pooled += len(ss.lzFree)
	}
	if live != 0 {
		t.Fatalf("%d cohort buffers still live in steady state, want 0 (delivery must release)", live)
	}
	if pooled != len(s.shards) {
		t.Fatalf("pool holds %d buffers, want exactly one per shard (%d)", pooled, len(s.shards))
	}
}
