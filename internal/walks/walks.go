// Package walks implements the paper's central technical tool (§3): the
// "soup" of random walks. Every node starts α·log n walk tokens per round;
// each token performs T = Θ(log n) steps over the evolving expander and is
// then delivered to the node it lands on, which records the walk's *source*
// as a near-uniform sample of the network (the Soup Theorem, Thm 1).
//
// Churn interacts with the soup exactly as in the paper: a token currently
// carried by a node that is churned out dies with it, and the Soup Theorem
// is about the walks that survive.
//
// Implementation notes (the HPC parts):
//
//   - The token store has three representations (Params.Store). With a
//     forwarding cap, tokens live in a columnar store of packed 16-byte
//     two-lane records (src|slot, birth|serial|steps) moved one step per
//     round by a two-phase sharded exchange whose counting-sort gather
//     materializes slot-major buckets (store.go). Without a cap the
//     default is the lazy trajectory evaluator (lazy.go): no per-token
//     state between rounds at all, just a (T+2)-deep ring of per-round
//     inputs, with each birth cohort replayed once at its delivery
//     round; the eager staging-is-the-store exchange remains selectable
//     (StoreEager) for differential testing and benchmarks.
//   - Each token's step is derived by hashing (seed, round, src, birth,
//     serial), not by consuming a shared stream, so the simulation is
//     bit-reproducible at any worker count.
//   - The shard grid is fixed at engine construction (internal/shard,
//     shared with the engine's message exchange), the gather merges
//     source shards in fixed order, and shard slot ranges are contiguous
//     and ascending, so each slot's token order is canonical — deferred
//     tokens first, then arrivals by (source slot, source order): the
//     forwarding cap — the paper's 2h·log n per-round scalability
//     restriction — always applies to the same tokens no matter the
//     parallelism.
package walks

import (
	"math"
	"runtime"
	"sync"

	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
)

// Token is one in-flight random walk. The store keeps tokens as columns
// (store.go); this struct is the assembled view used by Inject,
// AppendTokens, and the reference-model tests.
type Token struct {
	Src    simnet.NodeID // walk origin (its id at generation time)
	Birth  int32         // round the walk started
	Serial uint16        // distinguishes same-source same-round walks
	Steps  uint16        // steps remaining
}

// Sample is a completed walk delivered to its endpoint: the holder may use
// Src as a (near-)uniform sample of the network (Soup Theorem).
type Sample struct {
	Src   simnet.NodeID
	Birth int32
}

// StoreKind selects the token-store representation (see store.go and
// lazy.go for the implementations and DESIGN.md §6 for the rationale).
type StoreKind uint8

const (
	// StoreAuto picks the best representation for the parameters: the
	// exact capped store when ForwardCap > 0, the lazy trajectory
	// evaluator otherwise (the paper's default).
	StoreAuto StoreKind = iota
	// StoreCapped is the materialized slot-major store rebuilt each round
	// by the counting-sort gather. Required (and only valid) when
	// ForwardCap > 0: deferral makes a token's fate depend on its bucket
	// position, so buckets must exist.
	StoreCapped
	// StoreEager is the staged-exchange store (staging-is-the-store):
	// every in-flight token is moved one step per round through the
	// sharded scatter. Valid only when ForwardCap == 0. Kept selectable
	// for benchmarks and differential testing against StoreLazy.
	StoreEager
	// StoreLazy is the lazy trajectory evaluator: no per-token state is
	// kept between rounds at all — only a T-deep ring of per-round inputs
	// — and each birth cohort's full trajectory is replayed once, at its
	// delivery round. Valid only when ForwardCap == 0.
	StoreLazy
)

// Params configures the soup.
type Params struct {
	// WalksPerRound is the number of walks each node starts per round
	// (the paper's α·log n).
	WalksPerRound int
	// WalkLength is T, the number of steps each walk takes (Θ(log n)).
	WalkLength int
	// Deadline is τ, the rounds within which a walk should complete; a
	// token older than Deadline rounds is dropped and counted overdue.
	// The paper sets τ = m·log n with m chosen so that, w.h.p., the
	// forwarding cap never delays a token past its deadline.
	Deadline int
	// ForwardCap limits tokens forwarded per node per round (the paper's
	// 2h·log n). 0 means unlimited.
	ForwardCap int
	// Lazy makes walks lazy (stay put with probability 1/2). Laziness is
	// the standard guard against the vanishing-probability bipartite draw
	// of the random topology; it roughly doubles the mixing length.
	Lazy bool
	// Store selects the token-store representation. The zero value
	// (StoreAuto) resolves to StoreCapped when ForwardCap > 0 and
	// StoreLazy otherwise; NewSoup panics on an invalid combination.
	Store StoreKind
}

// DefaultParams returns soup parameters for network size n, following the
// paper's Θ(log n) prescriptions with simulation-calibrated constants
// (natural log, as in the paper).
func DefaultParams(n int) Params {
	ln := math.Log(float64(n))
	walkLen := int(math.Ceil(2 * ln)) // T = 2·ln n; ample for λ ≈ 0.66 expanders
	return Params{
		WalksPerRound: int(math.Ceil(ln)),
		WalkLength:    walkLen,
		Deadline:      3 * walkLen,
		ForwardCap:    0, // unlimited by default; E2 stresses finite caps
		Lazy:          false,
	}
}

// Metrics counts soup events since creation.
type Metrics struct {
	Generated int64 // tokens created
	Completed int64 // walks that finished all steps and were sampled
	Died      int64 // tokens lost to churn
	Overdue   int64 // tokens dropped after exceeding Deadline
	Moves     int64 // total token-steps executed
	Deferred  int64 // token-rounds spent waiting behind the forward cap
}

func (m *Metrics) add(o *Metrics) {
	m.Generated += o.Generated
	m.Completed += o.Completed
	m.Died += o.Died
	m.Overdue += o.Overdue
	m.Moves += o.Moves
	m.Deferred += o.Deferred
}

// Soup is the walk engine. It implements simnet.RoundHook; register it on
// the engine and read Samples(slot) from protocol handlers.
type Soup struct {
	p    Params
	n    int
	seed uint64
	m    Metrics

	// shards hold the columnar token store, the per-round sample store,
	// and all exchange staging, one per grid shard (the grid comes from
	// the engine, so soup and engine exchange agree); slotLoc resolves a
	// slot to its (shard, local index) with one load (Grid.LocTable).
	// rowLoc is the per-round composition of the adjacency with slotLoc
	// (see store.go).
	grid    shard.Grid
	shards  []soupShard
	slotLoc []uint32
	rowLoc  []uint32

	// capped selects the store representation (see soupShard): the exact
	// slot-major materialized store when a forwarding cap is set, the
	// staging-is-the-store fast path when unlimited. parity selects which
	// side of the double-buffered staging the current round writes.
	// countsMu serializes the eager path's lazy per-slot count
	// materialization and the lazy evaluator's query-time forcing, so
	// TokensAt/Metrics stay safe to call concurrently.
	capped   bool
	parity   int
	countsMu sync.Mutex

	// lz is non-nil iff the resolved store is StoreLazy (lazy.go): the
	// T-deep ring of per-round inputs replacing all between-round token
	// state. capped and lz are mutually exclusive; both false/nil means
	// StoreEager.
	lz *lazySoup

	workers int
}

// NewSoup creates a soup for the given engine. workers <= 0 means
// GOMAXPROCS.
func NewSoup(e *simnet.Engine, p Params, workers int) *Soup {
	if p.WalkLength <= 0 {
		panic("walks: WalkLength must be positive")
	}
	if p.Deadline < p.WalkLength {
		p.Deadline = p.WalkLength
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch p.Store {
	case StoreAuto:
		if p.ForwardCap > 0 {
			p.Store = StoreCapped
		} else {
			p.Store = StoreLazy
		}
	case StoreCapped:
		if p.ForwardCap <= 0 {
			panic("walks: StoreCapped requires ForwardCap > 0")
		}
	case StoreEager, StoreLazy:
		if p.ForwardCap > 0 {
			panic("walks: a forwarding cap requires StoreCapped (deferral needs materialized buckets)")
		}
	default:
		panic("walks: unknown StoreKind")
	}
	n := e.N()
	grid := e.Grid()
	s := &Soup{
		p:       p,
		n:       n,
		seed:    e.Config().ProtocolSeed,
		grid:    grid,
		shards:  make([]soupShard, grid.Count()),
		slotLoc: grid.LocTable(n),
		capped:  p.Store == StoreCapped,
		workers: workers,
	}
	if p.Store != StoreLazy {
		s.rowLoc = make([]uint32, n*e.Degree())
	}
	for i := range s.shards {
		s.shards[i].init(grid, i, n, p.WalksPerRound)
	}
	if p.Store == StoreLazy {
		s.lz = newLazySoup(e, s)
	}
	// Bridge the soup's counters into the engine's telemetry registry as
	// a collector: the soup keeps its own accumulation (the lazy store
	// back-fills metrics when trajectories force), and snapshots pull the
	// current totals. Metrics() forces lazy evaluation, so the bridged
	// values obey the same exactness contract.
	reg := e.Telemetry()
	reg.RegisterCollector(func(emit func(string, telemetry.Kind, int64)) {
		m := s.Metrics()
		emit("dynp2p_soup_generated_total", telemetry.KindCounter, m.Generated)
		emit("dynp2p_soup_completed_total", telemetry.KindCounter, m.Completed)
		emit("dynp2p_soup_died_total", telemetry.KindCounter, m.Died)
		emit("dynp2p_soup_overdue_total", telemetry.KindCounter, m.Overdue)
		emit("dynp2p_soup_moves_total", telemetry.KindCounter, m.Moves)
		emit("dynp2p_soup_deferred_total", telemetry.KindCounter, m.Deferred)
	})
	return s
}

// Params returns the soup parameters.
func (s *Soup) Params() Params { return s.p }

// Metrics returns a snapshot of the counters. On the lazy store this
// forces evaluation of every in-flight cohort up to the last stepped
// round first, so the snapshot is exact: an event (death, move,
// generation) is included iff it occurred in a round that has run.
func (s *Soup) Metrics() Metrics {
	if s.lz != nil {
		s.lzSync(false)
	}
	return s.m
}

// Samples returns the walks that completed at slot this round: a view into
// the per-shard sample store, valid until the next StepRound; do not
// retain or modify.
func (s *Soup) Samples(slot int) []Sample {
	sh, local := shard.Loc(s.slotLoc[slot])
	ss := &s.shards[sh]
	return ss.smp[ss.smpOff[local]:ss.smpOff[local+1]]
}

// TokensAt returns the number of in-flight tokens currently held at slot.
// O(1) on the capped path (an offset-index difference); on the eager and
// lazy paths the per-slot counts materialize on the first query after a
// round (for the lazy store this forces partial evaluation of every
// in-flight cohort up to the last stepped round), then are O(1) too.
func (s *Soup) TokensAt(slot int) int {
	sh, local := shard.Loc(s.slotLoc[slot])
	ss := &s.shards[sh]
	if s.capped {
		return int(ss.off[local+1] - ss.off[local])
	}
	if s.lz != nil {
		s.lzSync(true)
	} else {
		s.materializeCounts(sh)
	}
	return int(ss.counts[local])
}

// TotalTokens returns the number of in-flight tokens network-wide. O(1)
// in n: a sum over the per-shard store (or staging-buffer, or cached
// cohort) lengths; the lazy store forces cohort evaluation first.
func (s *Soup) TotalTokens() int {
	t := 0
	if s.capped {
		for i := range s.shards {
			t += len(s.shards[i].tok)
		}
		return t
	}
	if s.lz != nil {
		return s.lzTotalTokens()
	}
	in := s.inboxParity()
	for i := range s.shards {
		for dsh := range s.shards[i].outBuf[in] {
			t += len(s.shards[i].outBuf[in][dsh])
		}
	}
	return t
}

// AppendTokens appends slot's in-flight tokens, in canonical bucket order
// (the lazy store uses its own cohort-major canonical order), to dst and
// returns it. Used by tests and experiment introspection, not by the hot
// path.
func (s *Soup) AppendTokens(slot int, dst []Token) []Token {
	sh, local := shard.Loc(s.slotLoc[slot])
	ss := &s.shards[sh]
	if s.capped {
		for _, t := range ss.tok[ss.off[local]:ss.off[local+1]] {
			dst = append(dst, t.token())
		}
		return dst
	}
	if s.lz != nil {
		return s.lzAppendTokens(slot, dst)
	}
	return s.appendVirtual(sh, local, dst)
}

// Inject starts count extra walks from the given slot this round (on top
// of WalksPerRound). Used by experiments that trace a single batch. The
// per-(source, round) Serial is a uint16, so at most 65536 walks can leave
// one slot in one round; Inject clamps to that bound (a wrapped serial
// would make two tokens share their step-hash identity and walk in
// lock-step) and returns the number actually injected.
func (s *Soup) Inject(e *simnet.Engine, slot, count, round int) int {
	sh, local := shard.Loc(s.slotLoc[slot])
	base := s.TokensAt(slot)
	if limit := 1<<16 - base; count > limit {
		count = max(limit, 0)
	}
	if count > 0 {
		switch {
		case s.capped:
			s.shards[sh].insert(local, count, e.IDAt(slot), int32(round),
				uint16(base), uint16(s.p.WalkLength))
		case s.lz != nil:
			s.lzInject(slot, count, e.IDAt(slot), int32(round), uint16(base))
		default:
			s.injectUncapped(sh, local, count, e.IDAt(slot), int32(round),
				uint16(base), uint16(s.p.WalkLength))
		}
	}
	s.m.Generated += int64(count)
	return count
}

// stepHash derives the per-token per-round randomness. Mixing is
// splitmix64-flavoured; the output decides the neighbour port and the lazy
// coin, independent of any iteration order.
func stepHash(seed uint64, round int, src simnet.NodeID, birth int32, serial uint16) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(round+1)
	x ^= uint64(src) * 0xd1342543de82ef95
	x ^= uint64(uint32(birth))<<32 | uint64(serial)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StepRound implements simnet.RoundHook. Semantics mirror the model's
// order of operations — churn already happened (tokens at churned slots
// die), every node generates new walks, then every token takes one
// synchronous step — but all three phases are fused into the single
// sharded scatter pass (store.go): the per-slot scatter kills tokens at
// replaced slots, emits the slot's fresh tokens after its stored ones, and
// steps everything in one sweep, so no serial O(n) prelude remains. The
// lazy store (lazy.go) goes further: it records the round's inputs and
// replays only the one cohort whose delivery falls due this round.
func (s *Soup) StepRound(e *simnet.Engine, round int) {
	if s.lz != nil {
		s.stepLazy(e, round)
		return
	}
	if s.capped {
		s.scatter(e, round)
	} else {
		s.scatterUncapped(e, round)
	}
	s.gather()
	if !s.capped {
		// Only the uncapped path reads staging across rounds; the capped
		// gather consumes it the same round, so capped runs pin side 0
		// instead of growing both halves of the double buffer.
		s.parity = 1 - s.parity
	}
	for i := range s.shards {
		s.m.add(&s.shards[i].tally)
	}
}
