// Package walks implements the paper's central technical tool (§3): the
// "soup" of random walks. Every node starts α·log n walk tokens per round;
// each token performs T = Θ(log n) steps over the evolving expander and is
// then delivered to the node it lands on, which records the walk's *source*
// as a near-uniform sample of the network (the Soup Theorem, Thm 1).
//
// Churn interacts with the soup exactly as in the paper: a token currently
// carried by a node that is churned out dies with it, and the Soup Theorem
// is about the walks that survive.
//
// Implementation notes (the HPC parts):
//
//   - Tokens are 16-byte values in per-slot buckets; a round moves every
//     token one step with a two-phase sharded exchange (scatter by source
//     shard, gather by destination shard) that runs on all cores.
//   - Each token's step is derived by hashing (seed, round, src, birth,
//     serial), not by consuming a shared stream, so the simulation is
//     bit-reproducible at any worker count.
//   - The shard count is a constant (internal/shard, also used by the
//     engine's message exchange), and the gather phase merges source
//     shards in fixed order, so bucket order is canonical: the forwarding
//     cap — the paper's 2h·log n per-round scalability restriction —
//     always applies to the same tokens no matter the parallelism.
package walks

import (
	"math"
	"math/bits"
	"runtime"

	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
)

// Token is one in-flight random walk.
type Token struct {
	Src    simnet.NodeID // walk origin (its id at generation time)
	Birth  int32         // round the walk started
	Serial uint16        // distinguishes same-source same-round walks
	Steps  uint16        // steps remaining
}

// Sample is a completed walk delivered to its endpoint: the holder may use
// Src as a (near-)uniform sample of the network (Soup Theorem).
type Sample struct {
	Src   simnet.NodeID
	Birth int32
}

// Params configures the soup.
type Params struct {
	// WalksPerRound is the number of walks each node starts per round
	// (the paper's α·log n).
	WalksPerRound int
	// WalkLength is T, the number of steps each walk takes (Θ(log n)).
	WalkLength int
	// Deadline is τ, the rounds within which a walk should complete; a
	// token older than Deadline rounds is dropped and counted overdue.
	// The paper sets τ = m·log n with m chosen so that, w.h.p., the
	// forwarding cap never delays a token past its deadline.
	Deadline int
	// ForwardCap limits tokens forwarded per node per round (the paper's
	// 2h·log n). 0 means unlimited.
	ForwardCap int
	// Lazy makes walks lazy (stay put with probability 1/2). Laziness is
	// the standard guard against the vanishing-probability bipartite draw
	// of the random topology; it roughly doubles the mixing length.
	Lazy bool
}

// DefaultParams returns soup parameters for network size n, following the
// paper's Θ(log n) prescriptions with simulation-calibrated constants
// (natural log, as in the paper).
func DefaultParams(n int) Params {
	ln := math.Log(float64(n))
	walkLen := int(math.Ceil(2 * ln)) // T = 2·ln n; ample for λ ≈ 0.66 expanders
	return Params{
		WalksPerRound: int(math.Ceil(ln)),
		WalkLength:    walkLen,
		Deadline:      3 * walkLen,
		ForwardCap:    0, // unlimited by default; E2 stresses finite caps
		Lazy:          false,
	}
}

// Metrics counts soup events since creation.
type Metrics struct {
	Generated int64 // tokens created
	Completed int64 // walks that finished all steps and were sampled
	Died      int64 // tokens lost to churn
	Overdue   int64 // tokens dropped after exceeding Deadline
	Moves     int64 // total token-steps executed
	Deferred  int64 // token-rounds spent waiting behind the forward cap
}

// taggedToken and taggedSample ride the exchange with their destination.
type taggedToken struct {
	slot int32
	t    Token
}

type taggedSample struct {
	slot int32
	s    Sample
}

// Soup is the walk engine. It implements simnet.RoundHook; register it on
// the engine and read Samples(slot) from protocol handlers.
type Soup struct {
	p       Params
	n       int
	seed    uint64
	buckets [][]Token  // per slot, canonical order
	samples [][]Sample // per slot, walks completed this round
	m       Metrics

	// Exchange buffers: xfer[src][dst] holds tokens moving from a source
	// in shard src to a destination in shard dst this round.
	xfer  [][]([]taggedToken)  // [shard.Count][shard.Count]
	deliv [][]([]taggedSample) // [shard.Count][shard.Count]

	// tallies accumulates per-source-shard metric deltas during scatter;
	// kept on the struct so steady-state rounds allocate nothing.
	tallies [shard.Count]Metrics

	workers int
}

// NewSoup creates a soup for the given engine. workers <= 0 means
// GOMAXPROCS.
func NewSoup(e *simnet.Engine, p Params, workers int) *Soup {
	if p.WalkLength <= 0 {
		panic("walks: WalkLength must be positive")
	}
	if p.Deadline < p.WalkLength {
		p.Deadline = p.WalkLength
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := e.N()
	s := &Soup{
		p:       p,
		n:       n,
		seed:    e.Config().ProtocolSeed,
		buckets: make([][]Token, n),
		samples: make([][]Sample, n),
		workers: workers,
		xfer:    make([][]([]taggedToken), shard.Count),
		deliv:   make([][]([]taggedSample), shard.Count),
	}
	for i := 0; i < shard.Count; i++ {
		s.xfer[i] = make([][]taggedToken, shard.Count)
		s.deliv[i] = make([][]taggedSample, shard.Count)
	}
	return s
}

// Params returns the soup parameters.
func (s *Soup) Params() Params { return s.p }

// Metrics returns a snapshot of the counters.
func (s *Soup) Metrics() Metrics { return s.m }

// Samples returns the walks that completed at slot this round. Valid until
// the next StepRound; do not retain.
func (s *Soup) Samples(slot int) []Sample { return s.samples[slot] }

// TokensAt returns the number of in-flight tokens currently held at slot.
func (s *Soup) TokensAt(slot int) int { return len(s.buckets[slot]) }

// TotalTokens returns the number of in-flight tokens network-wide.
func (s *Soup) TotalTokens() int {
	t := 0
	for _, b := range s.buckets {
		t += len(b)
	}
	return t
}

// Inject starts count extra walks from the given slot this round (on top
// of WalksPerRound). Used by experiments that trace a single batch. The
// per-(source, round) Serial is a uint16, so at most 65536 walks can leave
// one slot in one round; Inject clamps to that bound (a wrapped serial
// would make two tokens share their step-hash identity and walk in
// lock-step) and returns the number actually injected.
func (s *Soup) Inject(e *simnet.Engine, slot, count, round int) int {
	id := e.IDAt(slot)
	base := len(s.buckets[slot])
	if limit := 1<<16 - base; count > limit {
		count = max(limit, 0)
	}
	for k := 0; k < count; k++ {
		s.buckets[slot] = append(s.buckets[slot], Token{
			Src: id, Birth: int32(round), Serial: uint16(base + k),
			Steps: uint16(s.p.WalkLength),
		})
	}
	s.m.Generated += int64(count)
	return count
}

// stepHash derives the per-token per-round randomness. Mixing is
// splitmix64-flavoured; the output decides the neighbour port and the lazy
// coin, independent of any iteration order.
func stepHash(seed uint64, round int, t Token) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(round+1)
	x ^= uint64(t.Src) * 0xd1342543de82ef95
	x ^= uint64(uint32(t.Birth))<<32 | uint64(t.Serial)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StepRound implements simnet.RoundHook. Order of operations mirrors the
// model: churn already happened (tokens at churned slots die), then every
// node generates new walks, then every token takes one synchronous step.
func (s *Soup) StepRound(e *simnet.Engine, round int) {
	// 1. Tokens at churned slots die with their carriers.
	for _, slot := range e.ChurnedThisRound() {
		s.m.Died += int64(len(s.buckets[slot]))
		s.buckets[slot] = s.buckets[slot][:0]
	}

	// 2. Clear last round's samples.
	for i := range s.samples {
		s.samples[i] = s.samples[i][:0]
	}

	// 3. Generate fresh walks at every live slot. Like Inject, generation
	// clamps at the uint16 serial bound: a bucket already holding 65536
	// same-round tokens (huge injections, extreme ForwardCap backlogs)
	// cannot mint wrapped serials that would walk in lock-step.
	if s.p.WalksPerRound > 0 {
		for slot := 0; slot < s.n; slot++ {
			id := e.IDAt(slot)
			base := len(s.buckets[slot])
			count := s.p.WalksPerRound
			if limit := 1<<16 - base; count > limit {
				count = max(limit, 0)
			}
			for k := 0; k < count; k++ {
				s.buckets[slot] = append(s.buckets[slot], Token{
					Src: id, Birth: int32(round), Serial: uint16(base + k),
					Steps: uint16(s.p.WalkLength),
				})
			}
			s.m.Generated += int64(count)
		}
	}

	// 4. Move all tokens one step: scatter then gather.
	s.scatter(e, round)
	s.gather()
}

func (s *Soup) scatter(e *simnet.Engine, round int) {
	g := e.Graph()
	d := uint64(g.Degree())
	shard.Run(s.workers, func(sh int) {
		tally := &s.tallies[sh]
		*tally = Metrics{}
		for dsh := 0; dsh < shard.Count; dsh++ {
			s.xfer[sh][dsh] = s.xfer[sh][dsh][:0]
			s.deliv[sh][dsh] = s.deliv[sh][dsh][:0]
		}
		lo, hi := shard.Bounds(sh, s.n)
		for slot := lo; slot < hi; slot++ {
			bucket := s.buckets[slot]
			budget := len(bucket)
			if s.p.ForwardCap > 0 && budget > s.p.ForwardCap {
				budget = s.p.ForwardCap
				tally.Deferred += int64(len(bucket) - budget)
			}
			keep := bucket[:0]
			for i := range bucket {
				t := bucket[i]
				if round-int(t.Birth) > s.p.Deadline {
					tally.Overdue++
					continue
				}
				if i >= budget {
					// Over the forwarding budget: the token waits
					// here until next round.
					keep = append(keep, t)
					continue
				}
				h := stepHash(s.seed, round, t)
				dst := slot
				// Lazy self-loops flip the TOP hash bit: the fastrange
				// port pick below consumes high bits, so the coin must
				// come off the same end and be shifted away.
				if lazyStay := s.p.Lazy && h>>63 == 1; !lazyStay {
					if s.p.Lazy {
						h <<= 1
					}
					// Fastrange port pick: ⌊h·d/2^64⌋ is uniform over
					// [0, d) without the hardware divide h%d costs in
					// this, the hottest loop of the simulator.
					port, _ := bits.Mul64(h, d)
					dst = int(g.Neighbor(slot, int(port)))
				}
				t.Steps--
				tally.Moves++
				dsh := shard.Of(dst, s.n)
				if t.Steps == 0 {
					tally.Completed++
					s.deliv[sh][dsh] = append(s.deliv[sh][dsh],
						taggedSample{slot: int32(dst), s: Sample{Src: t.Src, Birth: t.Birth}})
				} else {
					s.xfer[sh][dsh] = append(s.xfer[sh][dsh],
						taggedToken{slot: int32(dst), t: t})
				}
			}
			s.buckets[slot] = keep
		}
	})
	for sh := range s.tallies {
		s.m.Overdue += s.tallies[sh].Overdue
		s.m.Moves += s.tallies[sh].Moves
		s.m.Completed += s.tallies[sh].Completed
		s.m.Deferred += s.tallies[sh].Deferred
	}
}

func (s *Soup) gather() {
	shard.Run(s.workers, func(dsh int) {
		// Merge source shards in fixed order for canonical bucket
		// ordering.
		for ssh := 0; ssh < shard.Count; ssh++ {
			for _, tt := range s.xfer[ssh][dsh] {
				s.buckets[tt.slot] = append(s.buckets[tt.slot], tt.t)
			}
			for _, ts := range s.deliv[ssh][dsh] {
				s.samples[ts.slot] = append(s.samples[ts.slot], ts.s)
			}
		}
	})
}
