package walks

import (
	"cmp"
	"math/bits"
	"runtime"
	"slices"
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/simnet"
)

// refSoup is the naive reference model: the pre-columnar per-slot-bucket
// implementation (PR 2's walks.go), transcribed serially. Buckets are
// []Token slices, the exchange appends arrivals destination-by-destination
// in ascending source-slot order (shard slot ranges are contiguous and
// ascending, so this equals the sharded implementation's (srcShard,
// srcSlot, seq) merge order), and the three preludes — churn death, sample
// clearing, generation — run as explicit serial loops. It shares only
// stepHash with the production code.
type refSoup struct {
	p       Params
	n       int
	seed    uint64
	buckets [][]Token
	samples [][]Sample
	m       Metrics
}

func newRefSoup(e *simnet.Engine, p Params) *refSoup {
	if p.Deadline < p.WalkLength {
		p.Deadline = p.WalkLength
	}
	n := e.N()
	return &refSoup{
		p: p, n: n, seed: e.Config().ProtocolSeed,
		buckets: make([][]Token, n),
		samples: make([][]Sample, n),
	}
}

func (s *refSoup) Inject(e *simnet.Engine, slot, count, round int) int {
	id := e.IDAt(slot)
	base := len(s.buckets[slot])
	if limit := 1<<16 - base; count > limit {
		count = max(limit, 0)
	}
	for k := 0; k < count; k++ {
		s.buckets[slot] = append(s.buckets[slot], Token{
			Src: id, Birth: int32(round), Serial: uint16(base + k),
			Steps: uint16(s.p.WalkLength),
		})
	}
	s.m.Generated += int64(count)
	return count
}

func (s *refSoup) StepRound(e *simnet.Engine, round int) {
	// 1. Tokens at churned slots die with their carriers.
	for _, slot := range e.ChurnedThisRound() {
		s.m.Died += int64(len(s.buckets[slot]))
		s.buckets[slot] = s.buckets[slot][:0]
	}
	// 2. Clear last round's samples.
	for i := range s.samples {
		s.samples[i] = s.samples[i][:0]
	}
	// 3. Generate fresh walks, clamped at the uint16 serial bound.
	if s.p.WalksPerRound > 0 {
		for slot := 0; slot < s.n; slot++ {
			id := e.IDAt(slot)
			base := len(s.buckets[slot])
			count := s.p.WalksPerRound
			if limit := 1<<16 - base; count > limit {
				count = max(limit, 0)
			}
			for k := 0; k < count; k++ {
				s.buckets[slot] = append(s.buckets[slot], Token{
					Src: id, Birth: int32(round), Serial: uint16(base + k),
					Steps: uint16(s.p.WalkLength),
				})
			}
			s.m.Generated += int64(count)
		}
	}
	// 4. Move every token one step, slot-major; arrivals append in
	// ascending source-slot order.
	g := e.Graph()
	d := uint64(g.Degree())
	arrivalT := make([][]Token, s.n)
	arrivalS := make([][]Sample, s.n)
	for slot := 0; slot < s.n; slot++ {
		bucket := s.buckets[slot]
		budget := len(bucket)
		if s.p.ForwardCap > 0 && budget > s.p.ForwardCap {
			budget = s.p.ForwardCap
			s.m.Deferred += int64(len(bucket) - budget)
		}
		keep := bucket[:0]
		for i := range bucket {
			t := bucket[i]
			if round-int(t.Birth) > s.p.Deadline {
				s.m.Overdue++
				continue
			}
			if i >= budget {
				keep = append(keep, t)
				continue
			}
			h := stepHash(s.seed, round, t.Src, t.Birth, t.Serial)
			dst := slot
			if lazyStay := s.p.Lazy && h>>63 == 1; !lazyStay {
				if s.p.Lazy {
					h <<= 1
				}
				port, _ := bits.Mul64(h, d)
				dst = int(g.Neighbor(slot, int(port)))
			}
			t.Steps--
			s.m.Moves++
			if t.Steps == 0 {
				s.m.Completed++
				arrivalS[dst] = append(arrivalS[dst], Sample{Src: t.Src, Birth: t.Birth})
			} else {
				arrivalT[dst] = append(arrivalT[dst], t)
			}
		}
		s.buckets[slot] = keep
	}
	for slot := 0; slot < s.n; slot++ {
		s.buckets[slot] = append(s.buckets[slot], arrivalT[slot]...)
		s.samples[slot] = append(s.samples[slot], arrivalS[slot]...)
	}
}

func cmpToken(a, b Token) int {
	if c := cmp.Compare(a.Src, b.Src); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Birth, b.Birth); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Serial, b.Serial); c != 0 {
		return c
	}
	return cmp.Compare(a.Steps, b.Steps)
}

func cmpSample(a, b Sample) int {
	if c := cmp.Compare(a.Src, b.Src); c != 0 {
		return c
	}
	return cmp.Compare(a.Birth, b.Birth)
}

// runAgainstReference drives a columnar soup and the reference model on
// one engine for rounds rounds (with periodic Injects), comparing buckets,
// samples, and metrics every round. exactOrder demands bit-identical
// bucket and sample ordering; otherwise per-slot multisets are compared
// (the uncapped fast path keeps a canonical order of its own).
func runAgainstReference(t *testing.T, p Params, workers, n, rounds int, exactOrder bool) {
	t.Helper()
	runAgainstReferenceShards(t, p, workers, 0, n, rounds, exactOrder)
}

// runAgainstReferenceShards is runAgainstReference with an explicit shard
// count (0 = the engine's adaptive default).
func runAgainstReferenceShards(t *testing.T, p Params, workers, shards, n, rounds int, exactOrder bool) {
	t.Helper()
	e := simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize, Shards: shards,
		AdversarySeed: 11, ProtocolSeed: 12,
		Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 3},
	})
	soup := NewSoup(e, p, workers)
	ref := newRefSoup(e, p)
	e.AddHook(soup)
	e.AddHook(ref)
	var tokScratch []Token
	for r := 0; r < rounds; r++ {
		if r%37 == 5 {
			slot := (r * 13) % n
			got := soup.Inject(e, slot, 40, e.Round())
			want := ref.Inject(e, slot, 40, e.Round())
			if got != want {
				t.Fatalf("round %d: Inject returned %d, reference %d", r, got, want)
			}
		}
		e.RunRound(simnet.NopHandler{})
		if m := soup.Metrics(); m != ref.m {
			t.Fatalf("round %d workers=%d: metrics diverged:\ncolumnar  %+v\nreference %+v", r, workers, m, ref.m)
		}
		refTotal := 0
		for slot := 0; slot < n; slot++ {
			refTotal += len(ref.buckets[slot])
		}
		if got := soup.TotalTokens(); got != refTotal {
			t.Fatalf("round %d: TotalTokens = %d, reference %d", r, got, refTotal)
		}
		for slot := 0; slot < n; slot++ {
			tokScratch = soup.AppendTokens(slot, tokScratch[:0])
			if got := soup.TokensAt(slot); got != len(tokScratch) || got != len(ref.buckets[slot]) {
				t.Fatalf("round %d slot %d: TokensAt = %d, AppendTokens = %d, reference %d",
					r, slot, got, len(tokScratch), len(ref.buckets[slot]))
			}
			gotS := soup.Samples(slot)
			wantS := ref.samples[slot]
			if len(gotS) != len(wantS) {
				t.Fatalf("round %d slot %d: %d samples, reference %d", r, slot, len(gotS), len(wantS))
			}
			gotT := tokScratch
			wantT := ref.buckets[slot]
			if !exactOrder {
				gotT = slices.Clone(gotT)
				wantT = slices.Clone(wantT)
				slices.SortFunc(gotT, cmpToken)
				slices.SortFunc(wantT, cmpToken)
				gotS = slices.Clone(gotS)
				wantS = slices.Clone(wantS)
				slices.SortFunc(gotS, cmpSample)
				slices.SortFunc(wantS, cmpSample)
			}
			for i := range wantT {
				if gotT[i] != wantT[i] {
					t.Fatalf("round %d slot %d token %d: %+v, reference %+v (exactOrder=%v)",
						r, slot, i, gotT[i], wantT[i], exactOrder)
				}
			}
			for i := range wantS {
				if gotS[i] != wantS[i] {
					t.Fatalf("round %d slot %d sample %d: %+v, reference %+v (exactOrder=%v)",
						r, slot, i, gotS[i], wantS[i], exactOrder)
				}
			}
		}
	}
}

// TestColumnarMatchesReferenceCapped pins the capped path — the
// materialized slot-major store rebuilt by the counting-sort gather — to
// the old per-slot-bucket semantics bit for bit: bucket contents AND
// ordering, sample streams, and every metric, for several hundred rounds
// under churn + ForwardCap + Lazy + periodic injection, at worker counts
// 1, 3, and GOMAXPROCS.
func TestColumnarMatchesReferenceCapped(t *testing.T) {
	p := Params{WalksPerRound: 3, WalkLength: 7, Deadline: 20, ForwardCap: 25, Lazy: true}
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{50, 128} { // 50 < shard.Count exercises empty shards
			runAgainstReference(t, p, workers, n, 300, true)
		}
	}
}

// TestColumnarMatchesReferenceUncapped pins the ForwardCap == 0 eager
// fast path (staging-is-the-store, pinned via StoreEager now that
// StoreAuto resolves uncapped soups to the lazy evaluator) to the
// reference model: with no forwarding budget no token's fate depends on
// bucket position, so per-slot token and sample multisets and all
// metrics must match exactly; ordering follows the fast path's own
// canonical (source-shard-major) order and is checked for worker-count
// independence by TestDeterministicAcrossWorkerCounts.
func TestColumnarMatchesReferenceUncapped(t *testing.T) {
	p := Params{WalksPerRound: 3, WalkLength: 7, Deadline: 20, Lazy: true, Store: StoreEager}
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{50, 128} {
			runAgainstReference(t, p, workers, n, 300, false)
		}
	}
}

// TestLazyMatchesReference is the bugfix safety net for the lazy
// trajectory evaluator: several hundred rounds of churn + Lazy + periodic
// injection, compared against the naive reference model every round —
// per-slot token multisets, TokensAt/TotalTokens, per-slot sample
// multisets, and every metric — at worker counts 1, 3, and GOMAXPROCS.
// Because the harness queries the soup every round, this also drives the
// query-forced partial-evaluation machinery (cached cohort positions,
// retrospective arrival counts, resumed delivery) through every round.
func TestLazyMatchesReference(t *testing.T) {
	p := Params{WalksPerRound: 3, WalkLength: 7, Deadline: 20, Lazy: true, Store: StoreLazy}
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{50, 128} { // 50 < shard.Count exercises empty shards
			runAgainstReference(t, p, workers, n, 300, false)
		}
	}
}

// TestLazyMatchesReferenceShardCounts re-runs the lazy oracle at pinned
// non-default shard counts — the grid floor (16) and ceiling (256) — so the
// adaptive Pick cannot mask a grid-geometry bug. At 256 shards on n=128
// more than half the shards own zero slots; per-slot multisets and metrics
// must still match the serial reference exactly.
func TestLazyMatchesReferenceShardCounts(t *testing.T) {
	p := Params{WalksPerRound: 3, WalkLength: 7, Deadline: 20, Lazy: true, Store: StoreLazy}
	for _, shards := range []int{16, 256} {
		for _, workers := range []int{1, 3} {
			runAgainstReferenceShards(t, p, workers, shards, 128, 200, false)
		}
	}
}

// TestLazyMatchesReferenceShortWalks covers the T=1 and T=2 degenerate
// ring geometries (a cohort delivering the round it is born; a ring of
// minimum depth) that the default-length oracle never reaches.
func TestLazyMatchesReferenceShortWalks(t *testing.T) {
	for _, T := range []int{1, 2} {
		p := Params{WalksPerRound: 2, WalkLength: T, Deadline: 3 * T, Lazy: true, Store: StoreLazy}
		runAgainstReference(t, p, 1, 64, 120, false)
		runAgainstReference(t, p, 3, 64, 120, false)
	}
}
