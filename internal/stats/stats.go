// Package stats provides the statistical analysis primitives used by the
// experiment harness: summary statistics, quantiles, histograms, total
// variation distance between distributions, and least-squares fits used to
// extract scaling exponents from parameter sweeps.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual scalar summaries of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P05    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// String renders a Summary compactly for experiment tables, including
// both tail quantiles Summarize computes (p05 and p99 were silently
// dropped once; TestSummaryStringRendersAllFields pins the full set).
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g p05=%.4g med=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P05, s.Median, s.P95, s.P99, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted (ascending) data
// using linear interpolation. Panics if sorted is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TVDistanceFromUniform computes the total variation distance between the
// empirical distribution given by counts and the uniform distribution over
// the same support: TV = (1/2) Σ |c_i/total − 1/k|.
// Returns 0 for an empty or all-zero counts slice.
func TVDistanceFromUniform(counts []int) float64 {
	k := len(counts)
	if k == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	u := 1 / float64(k)
	var tv float64
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(total) - u)
	}
	return tv / 2
}

// TVDistance computes the total variation distance between two probability
// vectors p and q of equal length: (1/2) Σ |p_i − q_i|.
func TVDistance(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: TVDistance length mismatch")
	}
	var tv float64
	for i := range p {
		tv += math.Abs(p[i] - q[i])
	}
	return tv / 2
}

// FractionInBand returns the fraction of counts that, normalised by total,
// fall inside [lo, hi]. Used to check the Soup Theorem's [1/17n, 3/2n]
// per-destination probability band.
func FractionInBand(counts []int, total int, lo, hi float64) float64 {
	if len(counts) == 0 || total == 0 {
		return 0
	}
	in := 0
	for _, c := range counts {
		p := float64(c) / float64(total)
		if p >= lo && p <= hi {
			in++
		}
	}
	return float64(in) / float64(len(counts))
}

// LinearFit fits y = a + b*x by ordinary least squares and returns
// (intercept a, slope b, r² coefficient of determination).
// Requires len(x) == len(y) >= 2 and non-constant x.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	var ssRes float64
	for i := range x {
		d := y[i] - (a + b*x[i])
		ssRes += d * d
	}
	return a, b, 1 - ssRes/ssTot
}

// PowerLawExponent fits y = C * x^p on log-log scale and returns (p, r²).
// All x and y must be positive.
func PowerLawExponent(x, y []float64) (p, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: PowerLawExponent needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	_, p, r2 = LinearFit(lx, ly)
	return p, r2
}

// Histogram is a fixed-width binned histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	NSamples int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.NSamples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // float rounding at the upper edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// CDFAt returns the empirical CDF at x (fraction of samples <= x).
func (h *Histogram) CDFAt(x float64) float64 {
	if h.NSamples == 0 {
		return 0
	}
	c := h.Under
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, b := range h.Bins {
		upper := h.Lo + float64(i+1)*width
		if upper <= x {
			c += b
		}
	}
	if x >= h.Hi {
		c += h.Over
	}
	return float64(c) / float64(h.NSamples)
}

// Counter accumulates integer observations keyed by small non-negative ints
// (e.g. per-round latencies). It grows on demand.
type Counter struct {
	counts []int
	total  int
}

// Add records one observation of value v (v >= 0).
func (c *Counter) Add(v int) {
	if v < 0 {
		panic("stats: Counter.Add negative value")
	}
	for v >= len(c.counts) {
		c.counts = append(c.counts, 0)
	}
	c.counts[v]++
	c.total++
}

// Total returns the number of observations.
func (c *Counter) Total() int { return c.total }

// Mean returns the mean observed value.
func (c *Counter) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var s int
	for v, n := range c.counts {
		s += v * n
	}
	return float64(s) / float64(c.total)
}

// Quantile returns the smallest value v such that at least fraction q of
// observations are <= v. Returns 0 for an empty counter.
func (c *Counter) Quantile(q float64) int {
	if c.total == 0 {
		return 0
	}
	need := int(math.Ceil(q * float64(c.total)))
	if need < 1 {
		need = 1
	}
	run := 0
	for v, n := range c.counts {
		run += n
		if run >= need {
			return v
		}
	}
	return len(c.counts) - 1
}

// Max returns the largest observed value (0 if empty).
func (c *Counter) Max() int {
	for v := len(c.counts) - 1; v >= 0; v-- {
		if c.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// BinomialCI returns the Wilson score interval for a proportion with
// successes k out of n at ~95% confidence. Returns (lo, hi). For n == 0 it
// returns (0, 1).
func BinomialCI(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	den := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / den
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / den
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
