package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dynp2p/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	data := []float64{10, 20, 30, 40}
	if q := Quantile(data, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(data, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(data, 0.5); !almostEq(q, 25, 1e-12) {
		t.Fatalf("q0.5 = %v, want 25", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		r := rng.New(seed)
		data := make([]float64, n)
		for i := range data {
			data[i] = r.Float64() * 100
		}
		sort.Float64s(data)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(data, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTVDistanceFromUniform(t *testing.T) {
	if tv := TVDistanceFromUniform([]int{25, 25, 25, 25}); tv != 0 {
		t.Fatalf("uniform TV = %v, want 0", tv)
	}
	// All mass on one outcome of k: TV = 1 - 1/k.
	if tv := TVDistanceFromUniform([]int{100, 0, 0, 0}); !almostEq(tv, 0.75, 1e-12) {
		t.Fatalf("point-mass TV = %v, want 0.75", tv)
	}
	if tv := TVDistanceFromUniform(nil); tv != 0 {
		t.Fatal("empty TV should be 0")
	}
}

func TestTVDistanceProperties(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		k := r.Intn(20) + 2
		p := make([]float64, k)
		q := make([]float64, k)
		var sp, sq float64
		for i := 0; i < k; i++ {
			p[i] = r.Float64()
			q[i] = r.Float64()
			sp += p[i]
			sq += q[i]
		}
		for i := 0; i < k; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		tv := TVDistance(p, q)
		// TV is in [0,1], symmetric, zero on identical inputs.
		if tv < 0 || tv > 1 {
			return false
		}
		if !almostEq(tv, TVDistance(q, p), 1e-12) {
			return false
		}
		return almostEq(TVDistance(p, p), 0, 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionInBand(t *testing.T) {
	counts := []int{1, 2, 3, 4} // probs .1 .2 .3 .4
	got := FractionInBand(counts, 10, 0.15, 0.35)
	if !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("FractionInBand = %v, want 0.5", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 + 2*v
	}
	a, b, r2 := LinearFit(x, y)
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Fatalf("fit = (%v,%v,%v), want (3,2,1)", a, b, r2)
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 7 x^0.5
	x := []float64{4, 16, 64, 256, 1024}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 7 * math.Sqrt(v)
	}
	p, r2 := PowerLawExponent(x, y)
	if !almostEq(p, 0.5, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Fatalf("exponent = %v r2 = %v, want 0.5, 1", p, r2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)   // under
	h.Add(10)   // over
	h.Add(10.5) // over
	if h.Under != 1 || h.Over != 2 || h.NSamples != 13 {
		t.Fatalf("histogram tails wrong: %+v", h)
	}
	for i, b := range h.Bins {
		if b != 1 {
			t.Fatalf("bin %d count %d, want 1", i, b)
		}
	}
	if got := h.CDFAt(5); !almostEq(got, 6.0/13, 1e-9) {
		t.Fatalf("CDFAt(5) = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	for _, v := range []int{3, 1, 4, 1, 5, 9, 2, 6} {
		c.Add(v)
	}
	if c.Total() != 8 {
		t.Fatalf("total = %d", c.Total())
	}
	if !almostEq(c.Mean(), 31.0/8, 1e-12) {
		t.Fatalf("mean = %v", c.Mean())
	}
	if c.Max() != 9 {
		t.Fatalf("max = %d", c.Max())
	}
	if c.Quantile(0.5) != 3 {
		t.Fatalf("median = %d, want 3", c.Quantile(0.5))
	}
	if c.Quantile(1.0) != 9 {
		t.Fatalf("q1.0 = %d, want 9", c.Quantile(1.0))
	}
}

func TestCounterEmptyAndNegative(t *testing.T) {
	var c Counter
	if c.Mean() != 0 || c.Max() != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty counter should report zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v,%v] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI too wide for n=100: [%v,%v]", lo, hi)
	}
	lo, hi = BinomialCI(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatal("CI for n=0 should be [0,1]")
	}
	lo, _ = BinomialCI(0, 10)
	if lo != 0 {
		t.Fatalf("CI lower bound for k=0 should clamp to 0, got %v", lo)
	}
	_, hi = BinomialCI(10, 10)
	if hi != 1 {
		t.Fatalf("CI upper bound for k=n should clamp to 1, got %v", hi)
	}
}

func TestSummaryStringStable(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("String should not be empty")
	}
}

// TestSummaryStringRendersAllFields pins the rendered field set:
// String once silently dropped the computed P05/P99 tail quantiles, so
// experiment tables showed no tails. Every Summarize output must appear,
// with the value Summarize computed for it.
func TestSummaryStringRendersAllFields(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // quantiles land exactly on integers
	}
	s := Summarize(xs)
	got := s.String()
	want := "n=101 mean=50 std=29.3 min=0 p05=5 med=50 p95=95 p99=99 max=100"
	if got != want {
		t.Fatalf("Summary.String() = %q, want %q", got, want)
	}
	for _, field := range []string{"n=", "mean=", "std=", "min=", "p05=", "med=", "p95=", "p99=", "max="} {
		if !strings.Contains(got, field) {
			t.Fatalf("Summary.String() missing %q: %q", field, got)
		}
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("constant x did not panic")
		}
	}()
	LinearFit([]float64{1, 1}, []float64{2, 3})
}
