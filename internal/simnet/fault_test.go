package simnet

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
)

// pingHandler counts received messages and has every node ping one fixed
// peer each round, producing a steady message flow to perturb.
type pingHandler struct {
	received []int // per-slot receive counts
}

func (h *pingHandler) OnJoin(*Engine, int, NodeID, int)  {}
func (h *pingHandler) OnLeave(*Engine, int, NodeID, int) {}
func (h *pingHandler) HandleRound(ctx *Ctx) {
	h.received[ctx.Slot] += len(ctx.Inbox)
	target := ctx.E.IDAt((ctx.Slot + 1) % ctx.E.N())
	ctx.Send(target, 1, 0, 0, nil)
}

func newFaultEngine(t *testing.T, n int, f FaultModel) (*Engine, *pingHandler) {
	t.Helper()
	e := New(Config{
		N: n, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 11, ProtocolSeed: 12,
		Law: churn.ZeroLaw{}, Fault: f, Workers: 2,
	})
	return e, &pingHandler{received: make([]int, n)}
}

func totalReceived(h *pingHandler) int {
	t := 0
	for _, c := range h.received {
		t += c
	}
	return t
}

func TestNoFaultModelDeliversEverything(t *testing.T) {
	e, h := newFaultEngine(t, 64, nil)
	e.Run(h, 50)
	m := e.Metrics()
	if m.MsgsFaultDropped != 0 || m.MsgsDelayed != 0 {
		t.Fatalf("fault metrics nonzero without a model: %+v", m)
	}
	// 49 rounds of sends get delivered (the last round's sends are in flight).
	if want := 64 * 49; totalReceived(h) != want {
		t.Fatalf("received %d, want %d", totalReceived(h), want)
	}
}

func TestDropProbabilityObserved(t *testing.T) {
	const n, rounds, p = 64, 200, 0.2
	e, h := newFaultEngine(t, n, DropDelayFaults{DropProb: p})
	e.Run(h, rounds)
	m := e.Metrics()
	got := float64(m.MsgsFaultDropped) / float64(m.MsgsSent)
	if got < p-0.03 || got > p+0.03 {
		t.Fatalf("observed drop rate %.3f, want ~%.2f (%d/%d)", got, p, m.MsgsFaultDropped, m.MsgsSent)
	}
	// Conservation: every send was received, fault-dropped, or is one of
	// the <= n messages still in flight from the final round.
	accounted := int64(totalReceived(h)) + m.MsgsFaultDropped
	if accounted > m.MsgsSent || accounted < m.MsgsSent-int64(n) {
		t.Fatalf("conservation: received %d + dropped %d vs sent %d (in flight <= %d)",
			totalReceived(h), m.MsgsFaultDropped, m.MsgsSent, n)
	}
}

func TestDelayIsBoundedAndEventuallyDelivered(t *testing.T) {
	const n, rounds, maxDelay = 64, 200, 3
	e, h := newFaultEngine(t, n, DropDelayFaults{DelayProb: 0.5, MaxDelay: maxDelay})
	e.Run(h, rounds)
	m := e.Metrics()
	if m.MsgsDelayed == 0 {
		t.Fatal("no messages were delayed at DelayProb 0.5")
	}
	if m.MsgsFaultDropped != 0 {
		t.Fatalf("delay-only model dropped %d messages", m.MsgsFaultDropped)
	}
	// Everything sent must eventually arrive; at most n*(1+maxDelay)
	// messages can still be in flight at the end.
	missing := int(m.MsgsSent) - totalReceived(h)
	if missing < 0 || missing > n*(1+maxDelay) {
		t.Fatalf("%d messages unaccounted for (sent %d, received %d)", missing, m.MsgsSent, totalReceived(h))
	}
}

func TestFaultDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) Metrics {
		e := New(Config{
			N: 48, Degree: 8, EdgeMode: expander.Rerandomize,
			AdversarySeed: 5, ProtocolSeed: 6,
			Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 2},
			Fault:   DropDelayFaults{DropProb: 0.1, DelayProb: 0.3, MaxDelay: 2},
			Workers: workers,
		})
		h := &pingHandler{received: make([]int, 48)}
		e.Run(h, 120)
		return e.Metrics()
	}
	a, b := run(1), run(7)
	if a != b {
		t.Fatalf("metrics differ across worker counts:\n  w=1: %+v\n  w=7: %+v", a, b)
	}
	if a.MsgsFaultDropped == 0 || a.MsgsDelayed == 0 {
		t.Fatalf("fault model inactive: %+v", a)
	}
}

func TestDelayedMessageToChurnedNodeIsDropped(t *testing.T) {
	// With heavy churn and long delays, some delayed messages must find
	// their target gone and be counted as routing drops.
	e := New(Config{
		N: 48, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 9, ProtocolSeed: 10,
		Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 8},
		Fault: DropDelayFaults{DelayProb: 0.8, MaxDelay: 6},
	})
	h := &pingHandler{received: make([]int, 48)}
	e.Run(h, 150)
	if e.Metrics().MsgsDropped == 0 {
		t.Fatal("expected some delayed messages to outlive their targets")
	}
}

func TestSetFaultMidRun(t *testing.T) {
	e, h := newFaultEngine(t, 64, nil)
	e.Run(h, 20)
	if e.Metrics().MsgsFaultDropped != 0 {
		t.Fatal("faults before SetFault")
	}
	e.SetFault(DropDelayFaults{DropProb: 1})
	e.Run(h, 20)
	m := e.Metrics()
	if m.MsgsFaultDropped != 64*20 {
		t.Fatalf("with DropProb 1 expected %d drops, got %d", 64*20, m.MsgsFaultDropped)
	}
	e.SetFault(nil)
	before := totalReceived(h)
	e.Run(h, 20)
	if m := e.Metrics(); m.MsgsFaultDropped != 64*20 {
		t.Fatalf("drops continued after clearing fault model: %d", m.MsgsFaultDropped)
	}
	if totalReceived(h) <= before {
		t.Fatal("no deliveries after clearing fault model")
	}
}
