package simnet

import (
	"sync"
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/telemetry"
)

// routedSpammer sends one routed message per node per round at the
// current occupant of a fixed slot, tagging every message with a trace id
// so drop accounting is observable end to end.
type routedSpammer struct {
	target int
	mu     sync.Mutex
	got    int
	hops   []int32
}

func (h *routedSpammer) OnJoin(e *Engine, slot int, id NodeID, round int)  {}
func (h *routedSpammer) OnLeave(e *Engine, slot int, id NodeID, round int) {}

func (h *routedSpammer) HandleRound(ctx *Ctx) {
	if n := len(ctx.Inbox); n > 0 {
		h.mu.Lock()
		h.got += n
		for i := range ctx.Inbox {
			h.hops = append(h.hops, ctx.Inbox[i].Hops)
		}
		h.mu.Unlock()
	}
	trace := uint64(ctx.Slot)<<20 | uint64(ctx.Round) + 1
	// Open a trace per message so drop events tally: the tracer only
	// counts events of operations it has seen start.
	if tr := ctx.E.Tracer(); tr != nil {
		tr.Emit(ctx.Shard, telemetry.Event{Trace: trace, Round: int64(ctx.Round), Kind: telemetry.EvOpStart})
	}
	ctx.SendRouted(Msg{To: ctx.E.IDAt(h.target), Kind: 1, Trace: trace})
}

func routedConfig(n int, law churn.Law, rc RoutingConfig) Config {
	cfg := testConfig(n, law)
	cfg.Routing = rc
	return cfg
}

func TestRoutedDeliveryArrivesNextRound(t *testing.T) {
	e := New(routedConfig(64, churn.ZeroLaw{}, RoutingConfig{Mode: RoutingOverlay, WalkBudget: 4096}))
	h := &routedSpammer{target: 3}
	e.RunRound(h) // round 0: 64 sends
	e.RunRound(h) // round 1: uncongested walks complete — oracle latency
	if h.got != 64 {
		t.Fatalf("target received %d messages after one routed round, want 64", h.got)
	}
	forwards := false
	for _, hp := range h.hops {
		if hp > 0 {
			forwards = true
		}
	}
	if !forwards {
		t.Fatal("no delivered message recorded a positive hop count")
	}
	m := e.Metrics()
	rm := e.RouteMetrics()
	if m.MsgsDelivered != rm.Delivered {
		t.Fatalf("teleported deliveries: engine %d, router %d", m.MsgsDelivered, rm.Delivered)
	}
}

// TestRoutedChurnedQueueDropAccountedAndTraced is the engine-level drop
// audit: under heavy churn with link capacity 1, walkers park and their
// slots churn. Every such casualty must show up in the churn-drop counter
// AND as a traced drop event — the books must balance exactly, so no
// routed message is ever silently lost.
func TestRoutedChurnedQueueDropAccountedAndTraced(t *testing.T) {
	e := New(routedConfig(64, churn.FixedLaw{Count: 8},
		RoutingConfig{Mode: RoutingOverlay, WalkBudget: 256, LinkCapacity: 1, QueueLimit: 4}))
	e.SetTracer(telemetry.NewTracer(e.Telemetry(), 1, 1))
	h := &routedSpammer{target: 3}
	for r := 0; r < 60; r++ {
		e.RunRound(h)
	}
	rm := e.RouteMetrics()
	if rm.Parked == 0 {
		t.Fatal("capacity 1 produced no queueing; the congestion leg is inert")
	}
	if rm.DroppedChurn == 0 {
		t.Fatal("heavy churn dropped no queued walkers")
	}
	drops := rm.DroppedBudget + rm.DroppedQueueFull + rm.DroppedChurn + rm.DroppedDead
	if rm.Sent != rm.Delivered+drops+int64(e.RoutedInFlight()) {
		t.Fatalf("conservation violated: sent %d != delivered %d + drops %d + in-flight %d",
			rm.Sent, rm.Delivered, drops, e.RoutedInFlight())
	}
	// Every message carried a trace id, so every drop must have emitted a
	// trace event: counter equality is the "never silently lost" proof.
	traced := e.Telemetry().CounterValue("dynp2p_trace_drop_events_total")
	if traced != drops {
		t.Fatalf("traced drop events %d != routed drops %d: a drop went unrecorded", traced, drops)
	}
}

func TestRoutedModeSwitchFlushesInFlight(t *testing.T) {
	e := New(routedConfig(64, churn.ZeroLaw{}, RoutingConfig{Mode: RoutingOverlay, WalkBudget: 256, LinkCapacity: 1}))
	h := &routedSpammer{target: 3}
	for r := 0; r < 4; r++ {
		e.RunRound(h)
	}
	inflight := e.RoutedInFlight()
	if inflight == 0 {
		t.Fatal("no in-flight walkers to flush")
	}
	before := e.RouteMetrics()
	e.SetRouting(RoutingConfig{Mode: RoutingOracle})
	if e.RoutedInFlight() != 0 {
		t.Fatal("mode switch left walkers in flight")
	}
	// The router handle is gone but its registry counters persist: the
	// flushed walkers must all have been booked as churn drops.
	after := e.Telemetry().CounterValue("dynp2p_route_dropped_churn_total")
	if after != before.DroppedChurn+int64(inflight) {
		t.Fatalf("flush accounted %d churn drops, want %d more than %d",
			after, inflight, before.DroppedChurn)
	}
	// Oracle mode keeps working after the switch.
	got := h.got
	e.RunRound(h)
	e.RunRound(h)
	if h.got <= got {
		t.Fatal("oracle delivery broken after switching overlay off")
	}
}

func TestParseRoutingMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RoutingMode
		err  bool
	}{
		{"", RoutingOracle, false},
		{"oracle", RoutingOracle, false},
		{"overlay", RoutingOverlay, false},
		{"teleport", RoutingOracle, true},
	} {
		got, err := ParseRoutingMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseRoutingMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if RoutingOverlay.String() != "overlay" || RoutingOracle.String() != "oracle" {
		t.Fatal("RoutingMode.String mismatch")
	}
}
