package simnet

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
)

// TestReplacedHistoryExactWithinWindow pins the bounded history: within
// the retained window ReplacedInRound must answer exactly for EVERY round,
// including rounds before a slot's latest replacement — the case the
// joinRound fallback cannot answer (it only records the last occupancy).
func TestReplacedHistoryExactWithinWindow(t *testing.T) {
	const n, depth, rounds = 48, 12, 40
	e := New(Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: 3, ProtocolSeed: 4,
		Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 6},
	})
	e.RetainReplacedHistory(depth)
	// Record the ground truth per round from ChurnedThisRound.
	truth := make([]map[int]bool, rounds)
	for r := 0; r < rounds; r++ {
		e.RunRound(NopHandler{})
		truth[r] = make(map[int]bool)
		for _, s := range e.ChurnedThisRound() {
			truth[r][s] = true
		}
	}
	cur := e.Round() // rounds have run [0, cur)
	lo := cur - depth
	sawRechurn := false
	for r := lo; r < cur; r++ {
		if r < 0 {
			continue
		}
		for s := 0; s < n; s++ {
			got := e.ReplacedInRound(s, r)
			if got != truth[r][s] {
				t.Fatalf("ReplacedInRound(%d, %d) = %v, want %v", s, r, got, truth[r][s])
			}
			// The interesting case: slot churned at r AND again later.
			if truth[r][s] && int(e.joinRound[s]) > r {
				sawRechurn = true
			}
		}
	}
	if !sawRechurn {
		t.Fatal("test never exercised a slot churned twice inside the window; raise churn")
	}
	// Outside the window the bitset must not answer (nil), falling back to
	// the latest-occupancy semantics.
	if bits := e.ReplacedBitsInRound(lo - 1); bits != nil {
		t.Fatalf("ReplacedBitsInRound(%d) answered outside the %d-round window", lo-1, depth)
	}
	if bits := e.ReplacedBitsInRound(cur); bits != nil {
		t.Fatal("ReplacedBitsInRound answered for a round that has not run")
	}
}

// TestReplacedHistoryDeepestWins pins that concurrent hooks asking for
// different depths get the deeper window.
func TestReplacedHistoryDeepestWins(t *testing.T) {
	e := New(Config{
		N: 16, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 1, ProtocolSeed: 2,
		Strategy: churn.Uniform, Law: churn.FixedLaw{Count: 1},
	})
	e.RetainReplacedHistory(8)
	e.RetainReplacedHistory(4) // shallower request must not shrink
	for r := 0; r < 10; r++ {
		e.RunRound(NopHandler{})
	}
	for r := e.Round() - 8; r < e.Round(); r++ {
		if e.ReplacedBitsInRound(r) == nil {
			t.Fatalf("round %d missing from an 8-deep window", r)
		}
	}
}

// delayAllFaults is a deterministic test model: never drops, delays every
// message by exactly Delay extra rounds.
type delayAllFaults struct{ Delay int }

func (f delayAllFaults) Fate(int, *Msg, uint64) (bool, int) { return false, f.Delay }
func (f delayAllFaults) String() string                     { return "delay-all" }

// TestDeliverDelayedChurnedTargetDrops is the directed unit test for
// Engine.deliverDelayed: a fault-delayed message whose target churns out
// before delivery must be counted as a drop, not a delivery, while a
// not-yet-due message stays queued.
func TestDeliverDelayedChurnedTargetDrops(t *testing.T) {
	e := New(Config{
		N: 16, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 1, ProtocolSeed: 2, Law: churn.ZeroLaw{},
	})
	doomed, survivor := e.IDAt(3), e.IDAt(5)
	e.delayed = append(e.delayed,
		delayedMsg{deliverAt: 4, m: Msg{To: doomed, Kind: 1}},
		delayedMsg{deliverAt: 4, m: Msg{To: survivor, Kind: 2}},
		delayedMsg{deliverAt: 9, m: Msg{To: survivor, Kind: 3}},
	)
	e.placeNewNode(3, 1) // churn the doomed target's slot
	before := e.Metrics()
	e.deliverDelayed(4)
	m := e.Metrics()
	if got := m.MsgsDropped - before.MsgsDropped; got != 1 {
		t.Fatalf("dropped %d messages, want exactly the churned target's 1", got)
	}
	if got := m.MsgsDelivered - before.MsgsDelivered; got != 1 {
		t.Fatalf("delivered %d messages, want exactly the live target's 1", got)
	}
	if len(e.inbox[5]) != 1 || e.inbox[5][0].Kind != 2 {
		t.Fatalf("live target inbox = %+v, want the Kind 2 message", e.inbox[5])
	}
	if len(e.delayed) != 1 || e.delayed[0].m.Kind != 3 {
		t.Fatalf("not-yet-due message not retained: %+v", e.delayed)
	}
}

// TestSetFaultClearsPendingDelayed pins the phase-swap semantics: messages
// a fault model was still holding back must not survive SetFault — they
// are dropped (and accounted as fault drops), so a phase that declared
// reliable links never observes the previous phase's delayed traffic.
func TestSetFaultClearsPendingDelayed(t *testing.T) {
	e := New(Config{
		N: 32, Degree: 8, EdgeMode: expander.Static,
		AdversarySeed: 7, ProtocolSeed: 8, Law: churn.ZeroLaw{},
		Fault: delayAllFaults{Delay: 10},
	})
	h := &pingHandler{received: make([]int, 32)}
	e.Run(h, 5)
	if len(e.delayed) == 0 {
		t.Fatal("delay-all model queued nothing")
	}
	pending := int64(len(e.delayed))
	before := e.Metrics()
	e.SetFault(nil)
	m := e.Metrics()
	if len(e.delayed) != 0 {
		t.Fatalf("%d delayed messages survived SetFault(nil)", len(e.delayed))
	}
	if got := m.MsgsFaultDropped - before.MsgsFaultDropped; got != pending {
		t.Fatalf("SetFault accounted %d fault drops, want %d", got, pending)
	}
	// After the swap the network is reliable: everything sent from now on
	// is delivered next round, and nothing from the faulty phase leaks in.
	recvBefore := totalReceived(h)
	sentBefore := e.Metrics().MsgsSent
	e.Run(h, 10)
	gotRecv := int64(totalReceived(h) - recvBefore)
	gotSent := e.Metrics().MsgsSent - sentBefore
	if want := gotSent - 32; gotRecv != want { // last round's sends in flight
		t.Fatalf("received %d after swap, want %d (no leakage, full delivery)", gotRecv, want)
	}
}
