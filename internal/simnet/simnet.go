// Package simnet implements the synchronous dynamic-network engine of the
// paper's model (§2.1). Each round proceeds exactly in the model's order:
//
//  1. the adversary replaces up to its churn budget of nodes and rewires
//     the d-regular expander topology;
//  2. every live node learns its current neighbours;
//  3. registered round hooks run (the random-walk soup lives here);
//  4. every live node's protocol handler runs with the messages that were
//     addressed to it, and may send new id-addressed messages;
//  5. outgoing messages are routed: a message to an id that has been
//     churned out is silently dropped — the model's failure mode. An
//     optional FaultModel (fault.go) may additionally drop or delay
//     messages at this point, modelling lossy links on top of churn.
//
// The engine distinguishes *slots* (0..n-1, the stable positions the
// adversary's topology is defined over) from *node ids* (the identities
// protocols talk to). Churn replaces a slot's occupant with a fresh id; the
// newcomer inherits the slot's current edges and knows nothing else, just
// as the model prescribes.
//
// Determinism: a run is a pure function of (adversary seed, protocol seed,
// parameters) regardless of GOMAXPROCS. Node handlers execute in parallel
// but draw randomness only from per-node streams derived from the protocol
// seed and the node id, and inboxes are canonically sorted before delivery.
package simnet

import (
	"runtime"
	"sort"
	"sync"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
)

// NodeID identifies a (possibly departed) node. IDs are never reused; 0 is
// invalid.
type NodeID uint64

// Msg is an id-addressed protocol message. Protocols multiplex on Kind.
// The fixed fields cover every message of the paper's algorithms: walk
// samples carry ids, committee invitations carry id lists, storage and
// retrieval messages carry an item key plus an id.
type Msg struct {
	From NodeID
	To   NodeID
	Kind uint8
	Item uint64   // item key (or unused)
	Aux  uint64   // auxiliary value (round numbers, piece indices, ...)
	Aux2 uint64   // second auxiliary (e.g. the searcher id a reply routes to)
	IDs  []NodeID // id-list payload (committee rosters etc.); may be nil
	Blob []byte   // data payload (item copies, IDA pieces); may be nil

	// (sentRound, seq) is unique per sender, which gives inboxes a total
	// canonical order even when fault-delayed messages from an earlier
	// round land beside fresh ones.
	sentRound int32
	seq       uint32 // per-sender per-round sequence
}

// Bits returns the message's modelled wire size in bits. The paper requires
// every node to send only polylog(n) bits per round; experiment E9 audits
// this via the engine's accounting.
func (m *Msg) Bits() int {
	// from + to + kind + item + aux + aux2 = 64+64+8+64+64+64, plus 64 per
	// id and 8 per blob byte, each with a 16-bit length field when present.
	b := 328
	if len(m.IDs) > 0 {
		b += 16 + 64*len(m.IDs)
	}
	if len(m.Blob) > 0 {
		b += 16 + 8*len(m.Blob)
	}
	return b
}

// Handler is a node-level protocol. One Handler instance serves the whole
// network; per-node state must be kept by the handler keyed by slot or id.
// HandleRound may be invoked concurrently for different nodes and must only
// touch that node's state plus immutable shared data.
type Handler interface {
	// OnJoin is called (sequentially) when a fresh node occupies a slot,
	// including the initial population at round 0.
	OnJoin(e *Engine, slot int, id NodeID, round int)
	// OnLeave is called (sequentially) when a node is churned out.
	// Protocols must use it only for bookkeeping/metrics: real departed
	// nodes say no goodbye.
	OnLeave(e *Engine, slot int, id NodeID, round int)
	// HandleRound runs one round of the protocol for one live node.
	HandleRound(ctx *Ctx)
}

// RoundHook runs between topology change and protocol handlers each round.
// The random-walk soup (internal/walks) is a RoundHook.
type RoundHook interface {
	StepRound(e *Engine, round int)
}

// Config parameterises an Engine.
type Config struct {
	N             int // stable network size
	Degree        int // expander degree (even)
	EdgeMode      expander.EdgeMode
	EdgePeriod    int            // for Periodic mode
	AdversarySeed uint64         // drives churn schedule and topology
	ProtocolSeed  uint64         // drives all protocol randomness
	Strategy      churn.Strategy // which slots get churned
	Law           churn.Law      // how many per round
	Fault         FaultModel     // message-level faults; nil = reliable links
	Workers       int            // parallel handler workers; 0 = GOMAXPROCS
}

// Metrics aggregates engine-level counters for the current run.
type Metrics struct {
	Rounds        int
	MsgsSent      int64
	MsgsDelivered int64
	MsgsDropped   int64 // addressed to churned-out ids
	// MsgsFaultDropped / MsgsDelayed count the fault model's interventions
	// (losses and deferred deliveries respectively).
	MsgsFaultDropped int64
	MsgsDelayed      int64
	BitsSent         int64
	Replacements     int64
	// MaxNodeBitsRound is the largest per-node bits-sent observed in any
	// single round (the scalability audit for E9).
	MaxNodeBitsRound int64
}

// Engine is the simulator. Create with New, drive with RunRound.
type Engine struct {
	cfg  Config
	topo *expander.Dynamic
	adv  *churn.Adversary

	ids       []NodeID         // slot -> occupant id
	slotOf    map[NodeID]int32 // live ids only
	joinRound []int32          // slot -> round the occupant joined
	nodeRng   []*rng.Stream    // slot -> occupant's random stream
	nextID    NodeID

	inbox     [][]Msg // slot -> messages to deliver this round
	nextInbox [][]Msg // slot -> messages accumulated for next round

	fault     FaultModel   // nil = reliable links
	faultSeed uint64       // derived from the adversary seed
	delayed   []delayedMsg // fault-delayed messages awaiting delivery

	churned []int // slots replaced in the current round

	hooks   []RoundHook
	metrics Metrics

	workers   int
	perWorker []workerOut

	// bitsThisRound is per-slot bits sent in the current round, used for
	// the per-node scalability audit.
	bitsThisRound []int64

	round int
}

type workerOut struct {
	msgs []Msg
	_    [48]byte // pad to avoid false sharing between workers
}

// New builds an engine and populates the initial n nodes (handler.OnJoin is
// NOT called here; the first RunRound invocation with round 0 performs
// initial joins so that handlers see a consistent engine).
func New(cfg Config) *Engine {
	if cfg.N < 3 {
		panic("simnet: need N >= 3")
	}
	if cfg.Law == nil {
		cfg.Law = churn.ZeroLaw{}
	}
	if cfg.Degree == 0 {
		cfg.Degree = 8
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.N {
		workers = cfg.N
	}
	e := &Engine{
		cfg: cfg,
		topo: expander.New(expander.Config{
			N: cfg.N, Degree: cfg.Degree, Mode: cfg.EdgeMode, Period: max(cfg.EdgePeriod, 1),
		}, cfg.AdversarySeed),
		adv:           churn.NewAdversary(cfg.N, cfg.AdversarySeed, cfg.Strategy, cfg.Law),
		ids:           make([]NodeID, cfg.N),
		slotOf:        make(map[NodeID]int32, cfg.N*2),
		joinRound:     make([]int32, cfg.N),
		nodeRng:       make([]*rng.Stream, cfg.N),
		inbox:         make([][]Msg, cfg.N),
		nextInbox:     make([][]Msg, cfg.N),
		bitsThisRound: make([]int64, cfg.N),
		fault:         cfg.Fault,
		faultSeed:     rng.Hash(cfg.AdversarySeed, 0xfa017),
		workers:       workers,
		perWorker:     make([]workerOut, workers),
	}
	e.nextID = 1
	for s := 0; s < cfg.N; s++ {
		e.placeNewNode(s, 0)
	}
	return e
}

// placeNewNode installs a fresh identity in slot s at the given round.
func (e *Engine) placeNewNode(s, round int) NodeID {
	old := e.ids[s]
	if old != 0 {
		delete(e.slotOf, old)
	}
	id := e.nextID
	e.nextID++
	e.ids[s] = id
	e.slotOf[id] = int32(s)
	e.joinRound[s] = int32(round)
	e.nodeRng[s] = rng.Derive(e.cfg.ProtocolSeed, uint64(id))
	return id
}

// N returns the stable network size.
func (e *Engine) N() int { return e.cfg.N }

// Degree returns the topology degree.
func (e *Engine) Degree() int { return e.cfg.Degree }

// Round returns the current round number.
func (e *Engine) Round() int { return e.round }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graph returns the current topology over slots.
func (e *Engine) Graph() *graph.Graph { return e.topo.Graph() }

// IDAt returns the id occupying slot s.
func (e *Engine) IDAt(s int) NodeID { return e.ids[s] }

// SlotOf returns the slot of a live id, or (-1, false) if it has departed.
func (e *Engine) SlotOf(id NodeID) (int, bool) {
	s, ok := e.slotOf[id]
	return int(s), ok
}

// IsLive reports whether id is currently in the network.
func (e *Engine) IsLive(id NodeID) bool {
	_, ok := e.slotOf[id]
	return ok
}

// JoinRound returns the round slot s's occupant joined.
func (e *Engine) JoinRound(s int) int { return int(e.joinRound[s]) }

// Age returns how many rounds slot s's occupant has been alive.
func (e *Engine) Age(s int) int { return e.round - int(e.joinRound[s]) }

// ChurnedThisRound returns the slots replaced at the start of the current
// round. The slice is owned by the engine; do not retain it.
func (e *Engine) ChurnedThisRound() []int { return e.churned }

// NodeRand returns slot s's occupant random stream. Handlers should use
// Ctx.Rand instead; hooks (e.g. the walk soup) may use this directly but
// only from a single goroutine per slot.
func (e *Engine) NodeRand(s int) *rng.Stream { return e.nodeRng[s] }

// AddHook registers a round hook, run in registration order each round.
func (e *Engine) AddHook(h RoundHook) { e.hooks = append(e.hooks, h) }

// Metrics returns a snapshot of the run counters.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Ctx is the per-node view passed to Handler.HandleRound.
type Ctx struct {
	E     *Engine
	Round int
	Slot  int
	ID    NodeID
	Rand  *rng.Stream
	Inbox []Msg

	out  *[]Msg
	seq  uint32
	bits int64
}

// Send queues an id-addressed message from this node. Delivery happens at
// the start of the next round, and only if the target is still live then.
func (c *Ctx) Send(to NodeID, kind uint8, item, aux uint64, ids []NodeID) {
	c.SendMsg(Msg{To: to, Kind: kind, Item: item, Aux: aux, IDs: ids})
}

// SendMsg queues m (with From and sequencing filled in by the engine).
func (c *Ctx) SendMsg(m Msg) {
	m.From = c.ID
	m.sentRound = int32(c.Round)
	m.seq = c.seq
	c.seq++
	c.bits += int64(m.Bits())
	*c.out = append(*c.out, m)
}

// NeighborSlots returns the node's current neighbour slots (aliased; do not
// modify).
func (c *Ctx) NeighborSlots() []int32 { return c.E.Graph().Neighbors(c.Slot) }

// NeighborIDs appends the ids of the node's current neighbours to dst.
func (c *Ctx) NeighborIDs(dst []NodeID) []NodeID {
	for _, s := range c.NeighborSlots() {
		dst = append(dst, c.E.ids[s])
	}
	return dst
}

// RunRound advances the simulation one round:
// churn → topology → hooks → handlers → routing.
// The first call must pass the engine's initial round (0), which performs
// the initial OnJoin for every node and runs a full round.
func (e *Engine) RunRound(h Handler) {
	round := e.round
	if round == 0 {
		// Initial population joins; no churn at round 0.
		e.churned = e.churned[:0]
		if h != nil {
			for s := 0; s < e.cfg.N; s++ {
				h.OnJoin(e, s, e.ids[s], 0)
			}
		}
	} else {
		// 1. Adversarial churn.
		batch := e.adv.Batch(round)
		e.churned = append(e.churned[:0], batch...)
		for _, s := range e.churned {
			if h != nil {
				h.OnLeave(e, s, e.ids[s], round)
			}
			id := e.placeNewNode(s, round)
			// Pending messages addressed to the departed occupant die
			// with it.
			e.metrics.MsgsDropped += int64(len(e.nextInbox[s]))
			e.nextInbox[s] = e.nextInbox[s][:0]
			if h != nil {
				h.OnJoin(e, s, id, round)
			}
		}
		e.metrics.Replacements += int64(len(e.churned))
		// 2. Topology change.
		e.topo.Step(round)
	}

	// Swap inboxes: what was accumulated last round is delivered now.
	e.inbox, e.nextInbox = e.nextInbox, e.inbox
	for s := range e.nextInbox {
		e.nextInbox[s] = e.nextInbox[s][:0]
	}
	for s := range e.inbox {
		e.metrics.MsgsDelivered += int64(len(e.inbox[s]))
	}
	e.deliverDelayed(round)

	// 3. Hooks (walk soup etc).
	for _, hook := range e.hooks {
		hook.StepRound(e, round)
	}

	// 4. Handlers, in parallel over slot shards.
	if h != nil {
		e.runHandlers(h, round)
		// 5. Route: messages to live ids land in nextInbox; the rest drop.
		e.route()
	}

	e.metrics.Rounds++
	e.round++
}

func (e *Engine) runHandlers(h Handler, round int) {
	n := e.cfg.N
	w := e.workers
	for i := range e.perWorker {
		e.perWorker[i].msgs = e.perWorker[i].msgs[:0]
	}
	for i := range e.bitsThisRound {
		e.bitsThisRound[i] = 0
	}
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		lo := wi * n / w
		hi := (wi + 1) * n / w
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			out := &e.perWorker[wi].msgs
			for s := lo; s < hi; s++ {
				// Canonical inbox order regardless of routing order.
				in := e.inbox[s]
				sort.Slice(in, func(i, j int) bool {
					if in[i].From != in[j].From {
						return in[i].From < in[j].From
					}
					if in[i].sentRound != in[j].sentRound {
						return in[i].sentRound < in[j].sentRound
					}
					return in[i].seq < in[j].seq
				})
				ctx := Ctx{
					E: e, Round: round, Slot: s, ID: e.ids[s],
					Rand: e.nodeRng[s], Inbox: in, out: out,
				}
				h.HandleRound(&ctx)
				e.bitsThisRound[s] = ctx.bits
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	var maxBits int64
	var totalBits int64
	for _, b := range e.bitsThisRound {
		totalBits += b
		if b > maxBits {
			maxBits = b
		}
	}
	e.metrics.BitsSent += totalBits
	if maxBits > e.metrics.MaxNodeBitsRound {
		e.metrics.MaxNodeBitsRound = maxBits
	}
}

func (e *Engine) route() {
	for wi := range e.perWorker {
		for _, m := range e.perWorker[wi].msgs {
			e.metrics.MsgsSent++
			if e.fault != nil && !e.applyFault(&m) {
				continue
			}
			s, ok := e.slotOf[m.To]
			if !ok {
				e.metrics.MsgsDropped++
				continue
			}
			e.nextInbox[s] = append(e.nextInbox[s], m)
		}
	}
}

// Run advances the engine through rounds [current, current+rounds).
func (e *Engine) Run(h Handler, rounds int) {
	for i := 0; i < rounds; i++ {
		e.RunRound(h)
	}
}

// LiveIDs appends all currently live ids to dst in slot order.
func (e *Engine) LiveIDs(dst []NodeID) []NodeID {
	for _, id := range e.ids {
		dst = append(dst, id)
	}
	return dst
}

// NopHandler is a Handler that does nothing; useful for running hooks only.
type NopHandler struct{}

// OnJoin implements Handler.
func (NopHandler) OnJoin(*Engine, int, NodeID, int) {}

// OnLeave implements Handler.
func (NopHandler) OnLeave(*Engine, int, NodeID, int) {}

// HandleRound implements Handler.
func (NopHandler) HandleRound(*Ctx) {}
