// Package simnet implements the synchronous dynamic-network engine of the
// paper's model (§2.1). Each round proceeds exactly in the model's order:
//
//  1. the adversary replaces up to its churn budget of nodes and rewires
//     the d-regular expander topology;
//  2. every live node learns its current neighbours;
//  3. registered round hooks run (the random-walk soup lives here);
//  4. every live node's protocol handler runs with the messages that were
//     addressed to it, and may send new id-addressed messages;
//  5. outgoing messages are routed: a message to an id that has been
//     churned out is silently dropped — the model's failure mode. An
//     optional FaultModel (fault.go) may additionally drop or delay
//     messages at this point, modelling lossy links on top of churn.
//
// The engine distinguishes *slots* (0..n-1, the stable positions the
// adversary's topology is defined over) from *node ids* (the identities
// protocols talk to). Churn replaces a slot's occupant with a fresh id; the
// newcomer inherits the slot's current edges and knows nothing else, just
// as the model prescribes.
//
// Determinism: a run is a pure function of (adversary seed, protocol seed,
// parameters) regardless of GOMAXPROCS. Node handlers execute in parallel
// but draw randomness only from per-node streams derived from the protocol
// seed and the node id, and inbox order is canonical *by construction*:
// handlers and routing both run over a fixed number of slot shards
// (internal/shard), messages carry their sender's slot, and the gather
// phase merges source shards in fixed index order, so every inbox arrives
// sorted by (send round, sender slot, per-sender sequence) without any
// sorting. See DESIGN.md §6 for the engine internals.
package simnet

import (
	"fmt"
	"runtime"
	"sort"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
	"dynp2p/internal/route"
	"dynp2p/internal/shard"
	"dynp2p/internal/telemetry"
)

// NodeID identifies a (possibly departed) node. IDs are never reused; 0 is
// invalid.
type NodeID uint64

// MaxPayloadLen bounds len(Msg.IDs) and len(Msg.Blob): the modelled wire
// format carries each with a 16-bit length field (see Msg.Bits), so a
// longer payload cannot be expressed on the wire. SendMsg enforces it.
// The paper's algorithms stay far below: committee rosters and id lists
// are O(log n), blobs are item payloads or IDA pieces.
const MaxPayloadLen = 65535

// Msg is an id-addressed protocol message. Protocols multiplex on Kind.
// The fixed fields cover every message of the paper's algorithms: walk
// samples carry ids, committee invitations carry id lists, storage and
// retrieval messages carry an item key plus an id.
type Msg struct {
	From NodeID
	To   NodeID
	Kind uint8
	Item uint64   // item key (or unused)
	Aux  uint64   // auxiliary value (round numbers, piece indices, ...)
	Aux2 uint64   // second auxiliary (e.g. the searcher id a reply routes to)
	IDs  []NodeID // id-list payload (committee rosters etc.); ≤ MaxPayloadLen, may be nil
	Blob []byte   // data payload (item copies, IDA pieces); ≤ MaxPayloadLen, may be nil

	// Trace is an observability tag: when an operation is sampled for
	// lifecycle tracing (telemetry.Tracer), protocol messages belonging
	// to it carry the operation's nonzero trace id, and the receiver
	// records a hop event. The tag is out-of-band telemetry, not part of
	// the modelled wire format, so it does not count toward Bits().
	Trace uint64

	// Hops is the true network path length the message travelled when it
	// was delivered over the overlay (Ctx.SendRouted under
	// RoutingOverlay); 0 for oracle-delivered messages. Like Trace it is
	// out-of-band telemetry and does not count toward Bits().
	Hops int32

	// keyed marks a holder-seeking routed message (SendRoutedKeyed): the
	// overlay walk may terminate early at any current holder of Item.
	keyed bool

	// (sentRound, srcSlot, seq) is unique per message and is the canonical
	// inbox order. Fresh messages arrive already ordered (the sharded
	// exchange merges sender slots in fixed order); fault-delayed messages
	// are inserted at their sort position when they finally land.
	sentRound int32
	srcSlot   int32  // sender's slot at send time
	seq       uint32 // per-sender per-round sequence
}

// Bits returns the message's modelled wire size in bits. The paper requires
// every node to send only polylog(n) bits per round; experiment E9 audits
// this via the engine's accounting.
func (m *Msg) Bits() int {
	// from + to + kind + item + aux + aux2 = 64+64+8+64+64+64, plus 64 per
	// id and 8 per blob byte, each with a 16-bit length field when present.
	// SendMsg bounds both lengths to MaxPayloadLen so the 16-bit fields
	// cannot be overrun.
	b := 328
	if len(m.IDs) > 0 {
		b += 16 + 64*len(m.IDs)
	}
	if len(m.Blob) > 0 {
		b += 16 + 8*len(m.Blob)
	}
	return b
}

// msgBefore reports whether a precedes b in the canonical inbox order
// (sentRound, srcSlot, seq).
func msgBefore(a, b *Msg) bool {
	if a.sentRound != b.sentRound {
		return a.sentRound < b.sentRound
	}
	if a.srcSlot != b.srcSlot {
		return a.srcSlot < b.srcSlot
	}
	return a.seq < b.seq
}

// Handler is a node-level protocol. One Handler instance serves the whole
// network; per-node state must be kept by the handler keyed by slot or id.
// HandleRound may be invoked concurrently for different nodes and must only
// touch that node's state plus immutable shared data.
type Handler interface {
	// OnJoin is called (sequentially) when a fresh node occupies a slot,
	// including the initial population at round 0.
	OnJoin(e *Engine, slot int, id NodeID, round int)
	// OnLeave is called (sequentially) when a node is churned out.
	// Protocols must use it only for bookkeeping/metrics: real departed
	// nodes say no goodbye.
	OnLeave(e *Engine, slot int, id NodeID, round int)
	// HandleRound runs one round of the protocol for one live node. The
	// Ctx (and its Inbox) is only valid for the duration of the call; the
	// engine reuses it for the next node.
	HandleRound(ctx *Ctx)
}

// RoundHook runs between topology change and protocol handlers each round.
// The random-walk soup (internal/walks) is a RoundHook.
type RoundHook interface {
	StepRound(e *Engine, round int)
}

// Config parameterises an Engine.
type Config struct {
	N             int // stable network size
	Degree        int // expander degree (even)
	EdgeMode      expander.EdgeMode
	EdgePeriod    int            // for Periodic mode
	AdversarySeed uint64         // drives churn schedule and topology
	ProtocolSeed  uint64         // drives all protocol randomness
	Strategy      churn.Strategy // which slots get churned
	Law           churn.Law      // how many per round
	Fault         FaultModel     // message-level faults; nil = reliable links
	Workers       int            // parallel handler workers; 0 = GOMAXPROCS

	// Shards is the slot-shard grid count (power of two ≤ shard.MaxCount).
	// 0 picks shard.Pick(N, GOMAXPROCS) — enough shards that the slot
	// ranges stay cache-sized and every core finds work. New writes the
	// resolved count back into the engine's Config. A run's results are a
	// pure function of (seeds, parameters, shard count) at ANY worker
	// count; runs that must reproduce bit-identically across machines
	// with different core counts should pin Shards explicitly.
	Shards int

	// Telemetry is the metrics registry the engine (and everything built
	// on it) reports into. nil = the engine creates a private one, so
	// Metrics() and Telemetry() always work.
	Telemetry *telemetry.Registry

	// Routing selects how Ctx.SendRouted messages travel: RoutingOracle
	// (the zero value) delivers them like SendMsg; RoutingOverlay walks
	// them edge-by-edge over the live topology with link capacities and
	// bounded queues (routing.go, internal/route).
	Routing RoutingConfig
}

// Metrics aggregates engine-level counters for the current run. Since the
// telemetry registry became the store of record this struct is a *view*:
// Engine.Metrics() assembles it from the registry's dynp2p_engine_*
// series, and the two can never disagree.
type Metrics struct {
	Rounds        int
	MsgsSent      int64
	MsgsDelivered int64
	MsgsDropped   int64 // addressed to churned-out ids
	// MsgsFaultDropped / MsgsDelayed count the fault model's interventions
	// (losses and deferred deliveries respectively).
	MsgsFaultDropped int64
	MsgsDelayed      int64
	BitsSent         int64
	Replacements     int64
	// MaxNodeBitsRound is the largest per-node bits-sent observed in any
	// single round (the scalability audit for E9).
	MaxNodeBitsRound int64
}

// engineMetrics holds the engine's registry handles. All engine-side
// updates happen in serial round phases (churn, tally merge, delayed
// delivery), so every write goes to shard 0.
type engineMetrics struct {
	rounds       telemetry.Counter
	sent         telemetry.Counter
	delivered    telemetry.Counter
	dropped      telemetry.Counter
	faultDropped telemetry.Counter
	delayed      telemetry.Counter
	bitsSent     telemetry.Counter
	replacements telemetry.Counter
	maxNodeBits  telemetry.Gauge
}

func newEngineMetrics(reg *telemetry.Registry) engineMetrics {
	return engineMetrics{
		rounds:       reg.Counter("dynp2p_engine_rounds_total", "simulation rounds executed"),
		sent:         reg.Counter("dynp2p_engine_msgs_sent_total", "protocol messages sent"),
		delivered:    reg.Counter("dynp2p_engine_msgs_delivered_total", "protocol messages delivered"),
		dropped:      reg.Counter("dynp2p_engine_msgs_dropped_total", "messages addressed to churned-out ids"),
		faultDropped: reg.Counter("dynp2p_engine_msgs_fault_dropped_total", "messages lost to the fault model"),
		delayed:      reg.Counter("dynp2p_engine_msgs_delayed_total", "messages deferred by the fault model"),
		bitsSent:     reg.Counter("dynp2p_engine_bits_sent_total", "modelled wire bits sent"),
		replacements: reg.Counter("dynp2p_engine_replacements_total", "churn replacements performed"),
		maxNodeBits:  reg.Gauge("dynp2p_engine_max_node_bits_round", "largest per-node bits sent in any single round"),
	}
}

// routedRef identifies a message staged for delivery: the destination slot
// it resolved to, plus its index in the source shard's out buffer. An
// 8-byte reference rides the exchange instead of a ~112-byte Msg copy; the
// gather phase copies each message exactly once, straight into its inbox.
type routedRef struct {
	slot int32  // destination slot
	idx  uint32 // index into the source shard's out buffer
}

// routeShard is the per-source-shard staging area of the message exchange:
// handler output, per-destination-shard transfer buffers, fault-delayed
// messages, and metric tallies. All buffers are reused across rounds. The
// struct is sized to an exact multiple of the cache line (asserted by
// TestRouteShardCacheAligned), so workers filling adjacent shards never
// false-share — the same discipline the engine's original per-worker
// buffers used.
type routeShard struct {
	out     []Msg         // handler output, canonical (slot, seq) order
	xfer    [][]routedRef // grid-sized: refs to messages bound for each destination shard
	delayed []delayedMsg  // fault-delayed messages from this shard, canonical order
	routed  []Msg         // overlay-routed output, canonical (slot, seq) order
	ctx     *Ctx          // reusable handler context for this shard's slots

	bits         int64 // handler bits sent by this shard's slots this round
	maxBits      int64 // max per-node bits in this shard this round
	sent         int64
	dropped      int64
	faultDropped int64
	delayedCnt   int64

	_ [40]byte // pad to a cache-line multiple (TestRouteShardCacheAligned)
}

// inboxArena is one destination shard's next-round message store: every
// message bound for the shard's slots lands in one flat slot-major
// buffer, placed by a counting sort over the exchange refs, and the
// per-slot inbox views are sliced out of it. One geometrically-grown
// buffer per shard replaces n per-slot append slices, whose record-maxima
// growth kept the route gather allocating long into the steady state.
// Views are capacity-clamped so a late append (the fault-delay insert
// path) copies out instead of clobbering the neighbouring slot's run.
type inboxArena struct {
	msgs   []Msg
	off    []int32 // len slots+1: slot lo+l owns msgs[off[l]:off[l+1]]
	counts []int32 // placement scratch, len slots
}

// Engine is the simulator. Create with New, drive with RunRound.
type Engine struct {
	cfg  Config
	topo *expander.Dynamic
	adv  *churn.Adversary

	ids       []NodeID // slot -> occupant id
	joinRound []int32  // slot -> round the occupant joined
	nodeRng   []*rng.Stream
	nextID    NodeID

	// slotIndex maps id -> occupied slot, or -1 once the id has departed.
	// Ids are dense, monotonically assigned, and never reused, so a flat
	// array replaces the hash map the hot routing path used to probe: one
	// bounds check and one load per resolution. It grows geometrically
	// with the id space (4 bytes per id ever created — fine for
	// simulation lifetimes).
	slotIndex []int32

	inbox     [][]Msg // slot -> messages to deliver this round (arena views)
	nextInbox [][]Msg // slot -> messages accumulated for next round (arena views)

	// arenas are the double-buffered per-destination-shard inbox stores
	// (inboxArena): round r's route writes arenas[r&1] while handlers read
	// last round's views out of arenas[1-r&1].
	arenas [2][]inboxArena

	fault     FaultModel   // nil = reliable links
	faultSeed uint64       // derived from the adversary seed
	delayed   []delayedMsg // fault-delayed messages, canonical order

	churned []int // slots replaced in the current round

	// Bounded per-round replacement history (RetainReplacedHistory): a
	// ring of per-round bitsets over slots, so ReplacedInRound can answer
	// exactly for any round in the retained window — not just for each
	// slot's latest occupancy. The walk soup's lazy trajectory evaluator
	// replays up to a walk length of past rounds and needs exact per-round
	// death checks even for slots that churned several times in the window.
	histDepth  int       // retained rounds; 0 = history disabled
	histWords  int       // bitset words per round, (N+63)/64
	histRounds []int32   // ring: round recorded in each slot, -1 = empty
	histBits   []uint64  // ring: histDepth × histWords bitset words
	histLists  [][]int32 // ring: the slots set in each round's bitset

	// slotLoc is the slot → packed (shard, local) table (shard.LocTable):
	// one load resolves a destination slot's shard on the routing hot path
	// instead of a hardware divide per message.
	slotLoc []uint32

	grid shard.Grid // slot-shard grid, fixed at construction

	hooks     []RoundHook
	hookNames []string // parallel to hooks, for profiler phase labels

	// Overlay routing state (routing.go): the walker router, the
	// protocol's key-holder predicate, the test-only hop recorder, the
	// per-message walk-seed salt, and the delivery staging buffers.
	router       *route.Router[Msg]
	keyHolder    func(slot int, key uint64, round int) bool
	hopRec       func(round, from, to int)
	routeSeed    uint64
	routedPlaced []placedMsg
	routedArena  deliveryArena

	reg    *telemetry.Registry
	em     engineMetrics
	tracer *telemetry.Tracer
	prof   *telemetry.PhaseProfiler

	workers  int
	shardOut []routeShard // [shard.Count] scatter/gather staging

	round int
}

// New builds an engine and populates the initial n nodes (handler.OnJoin is
// NOT called here; the first RunRound invocation with round 0 performs
// initial joins so that handlers see a consistent engine).
func New(cfg Config) *Engine {
	if cfg.N < 3 {
		panic("simnet: need N >= 3")
	}
	if cfg.Law == nil {
		cfg.Law = churn.ZeroLaw{}
	}
	if cfg.Degree == 0 {
		cfg.Degree = 8
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.N {
		workers = cfg.N
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	var grid shard.Grid
	if cfg.Shards > 0 {
		grid = shard.New(cfg.Shards)
	} else {
		grid = shard.Pick(cfg.N, runtime.GOMAXPROCS(0))
	}
	cfg.Shards = grid.Count()
	e := &Engine{
		cfg: cfg,
		topo: expander.New(expander.Config{
			N: cfg.N, Degree: cfg.Degree, Mode: cfg.EdgeMode, Period: max(cfg.EdgePeriod, 1),
		}, cfg.AdversarySeed),
		adv:       churn.NewAdversary(cfg.N, cfg.AdversarySeed, cfg.Strategy, cfg.Law),
		ids:       make([]NodeID, cfg.N),
		slotIndex: newSlotIndex(2*cfg.N + 1),
		joinRound: make([]int32, cfg.N),
		nodeRng:   make([]*rng.Stream, cfg.N),
		inbox:     make([][]Msg, cfg.N),
		nextInbox: make([][]Msg, cfg.N),
		fault:     cfg.Fault,
		faultSeed: rng.Hash(cfg.AdversarySeed, 0xfa017),
		routeSeed: rng.Hash(cfg.ProtocolSeed, 0x4007e),
		workers:   workers,
		grid:      grid,
		shardOut:  make([]routeShard, grid.Count()),
		slotLoc:   grid.LocTable(cfg.N),
		reg:       cfg.Telemetry,
		em:        newEngineMetrics(cfg.Telemetry),
	}
	for sh := range e.shardOut {
		e.shardOut[sh].xfer = make([][]routedRef, grid.Count())
		e.shardOut[sh].ctx = &Ctx{}
	}
	for p := range e.arenas {
		e.arenas[p] = make([]inboxArena, grid.Count())
		for sh := range e.arenas[p] {
			lo, hi := grid.Bounds(sh, cfg.N)
			e.arenas[p][sh].off = make([]int32, hi-lo+1)
			e.arenas[p][sh].counts = make([]int32, hi-lo)
		}
	}
	e.nextID = 1
	for s := 0; s < cfg.N; s++ {
		e.placeNewNode(s, 0)
	}
	if cfg.Routing.Mode == RoutingOverlay {
		e.initRouter()
	}
	return e
}

// newSlotIndex returns an id->slot table of the given length with every
// entry marked departed.
func newSlotIndex(n int) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

// placeNewNode installs a fresh identity in slot s at the given round.
func (e *Engine) placeNewNode(s, round int) NodeID {
	if old := e.ids[s]; old != 0 {
		e.slotIndex[old] = -1
	}
	id := e.nextID
	e.nextID++
	if int(id) >= len(e.slotIndex) {
		grown := newSlotIndex(max(2*len(e.slotIndex), int(id)+1))
		copy(grown, e.slotIndex)
		e.slotIndex = grown
	}
	e.ids[s] = id
	e.slotIndex[id] = int32(s)
	e.joinRound[s] = int32(round)
	if e.nodeRng[s] == nil {
		e.nodeRng[s] = rng.Derive(e.cfg.ProtocolSeed, uint64(id))
	} else {
		// Recycle the slot's Stream object: same derived sequence as a
		// fresh Derive, no allocation on the churn path.
		e.nodeRng[s].ReseedDerived(e.cfg.ProtocolSeed, uint64(id))
	}
	return id
}

// N returns the stable network size.
func (e *Engine) N() int { return e.cfg.N }

// Degree returns the topology degree.
func (e *Engine) Degree() int { return e.cfg.Degree }

// Round returns the current round number.
func (e *Engine) Round() int { return e.round }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graph returns the current topology over slots.
func (e *Engine) Graph() *graph.Graph { return e.topo.Graph() }

// Workers returns the engine's resolved worker count (Config.Workers
// with 0 mapped to GOMAXPROCS and clamped to N). Round hooks that run
// their own sharded passes use it so one knob controls the whole round.
func (e *Engine) Workers() int { return e.workers }

// Grid returns the engine's slot-shard grid, fixed at construction
// (Config.Shards). Round hooks that shard their own per-slot state (the
// walk soup, the self-healing overlay) use the same grid, so their
// staging exchanges and the engine's agree on slot ownership.
func (e *Engine) Grid() shard.Grid { return e.grid }

// EdgeMode returns the topology's current edge-dynamics mode.
func (e *Engine) EdgeMode() expander.EdgeMode { return e.cfg.EdgeMode }

// SetEdgeMode switches the topology's edge dynamics mid-run. Call between
// Run calls; scenario phases use it to pit oracle-maintained and
// self-maintained topologies against the same churn timeline. Switching
// to SelfHealing hands the current graph to the overlay hook (which
// rebuilds its port bookkeeping on activation); switching back lets the
// oracle resume rewriting edges on its own schedule.
func (e *Engine) SetEdgeMode(mode expander.EdgeMode, period int) {
	e.cfg.EdgeMode = mode
	if period >= 1 {
		e.cfg.EdgePeriod = period
	}
	e.topo.SetMode(mode, period)
}

// IDAt returns the id occupying slot s.
func (e *Engine) IDAt(s int) NodeID { return e.ids[s] }

// slotOf resolves a live id to its slot via the dense table.
func (e *Engine) slotOf(id NodeID) (int32, bool) {
	if uint64(id) >= uint64(len(e.slotIndex)) {
		return -1, false
	}
	s := e.slotIndex[id]
	return s, s >= 0
}

// SlotOf returns the slot of a live id, or (-1, false) if it has departed.
func (e *Engine) SlotOf(id NodeID) (int, bool) {
	s, ok := e.slotOf(id)
	return int(s), ok
}

// IsLive reports whether id is currently in the network.
func (e *Engine) IsLive(id NodeID) bool {
	_, ok := e.slotOf(id)
	return ok
}

// JoinRound returns the round slot s's occupant joined.
func (e *Engine) JoinRound(s int) int { return int(e.joinRound[s]) }

// Age returns how many rounds slot s's occupant has been alive.
func (e *Engine) Age(s int) int { return e.round - int(e.joinRound[s]) }

// ChurnedThisRound returns the slots replaced at the start of the current
// round. The slice is owned by the engine; do not retain it.
func (e *Engine) ChurnedThisRound() []int { return e.churned }

// ReplacedInRound reports whether slot's occupant was churned in at the
// start of the given round. This is the O(1) per-slot form of
// ChurnedThisRound, for sharded round hooks (e.g. the walk soup's columnar
// scatter) that fold churn handling into a parallel pass over slots and
// cannot share an iteration over the churned list. The round is explicit
// because hooks run before the engine's round counter advances while
// between-rounds callers see it already incremented: pass the hook's round
// argument, or Round()-1 after RunRound returns.
//
// Without RetainReplacedHistory the answer is exact only for the slot's
// latest replacement (earlier occupancies are not recorded); with a
// retained window covering round it is exact unconditionally.
func (e *Engine) ReplacedInRound(slot, round int) bool {
	if bits := e.ReplacedBitsInRound(round); bits != nil {
		return bits[uint(slot)>>6]>>(uint(slot)&63)&1 != 0
	}
	return round > 0 && e.joinRound[slot] == int32(round)
}

// RetainReplacedHistory keeps exact per-round replacement records for the
// last depth rounds, making ReplacedInRound exact for any round in that
// window even when a slot churns repeatedly. Multiple callers may ask for
// different depths; the deepest wins. Recording starts with the next
// round; call before driving the engine (hooks call it at construction).
// Cost: depth ceil(N/64)-word bitsets plus O(churn) upkeep per round.
func (e *Engine) RetainReplacedHistory(depth int) {
	if depth <= e.histDepth {
		return
	}
	e.histDepth = depth
	e.histWords = (e.cfg.N + 63) / 64
	e.histRounds = make([]int32, depth)
	for i := range e.histRounds {
		e.histRounds[i] = -1
	}
	e.histBits = make([]uint64, depth*e.histWords)
	e.histLists = make([][]int32, depth)
}

// ReplacedBitsInRound returns the replacement bitset recorded for round
// (one bit per slot, slot s at word s/64 bit s%64), or nil when the round
// is outside the retained history window. The returned words are owned by
// the engine and valid until the window advances past the round; callers
// on the hot path fetch the slice once per round and test bits locally.
func (e *Engine) ReplacedBitsInRound(round int) []uint64 {
	if e.histDepth == 0 || round < 0 {
		return nil
	}
	i := round % e.histDepth
	if e.histRounds[i] != int32(round) {
		return nil
	}
	return e.histBits[i*e.histWords : (i+1)*e.histWords]
}

// recordReplacedHistory stores the current round's churned slots in the
// history ring, reclaiming the ring slot's previous round via its list.
func (e *Engine) recordReplacedHistory(round int) {
	if e.histDepth == 0 {
		return
	}
	i := round % e.histDepth
	w := e.histBits[i*e.histWords : (i+1)*e.histWords]
	for _, s := range e.histLists[i] {
		w[uint(s)>>6] = 0 // coarse clear; resetting whole words is fine
	}
	list := e.histLists[i][:0]
	for _, s := range e.churned {
		w[uint(s)>>6] |= 1 << (uint(s) & 63)
		list = append(list, int32(s))
	}
	e.histLists[i] = list
	e.histRounds[i] = int32(round)
}

// NodeRand returns slot s's occupant random stream. Handlers should use
// Ctx.Rand instead; hooks (e.g. the walk soup) may use this directly but
// only from a single goroutine per slot.
func (e *Engine) NodeRand(s int) *rng.Stream { return e.nodeRng[s] }

// AddHook registers a round hook, run in registration order each round.
// The hook's profiler phase is labelled hookN; AddNamedHook gives it a
// meaningful name.
func (e *Engine) AddHook(h RoundHook) {
	e.AddNamedHook(fmt.Sprintf("hook%d", len(e.hooks)), h)
}

// AddNamedHook registers a round hook under a name used as its phase
// label in round profiles (e.g. "soup", "overlay").
func (e *Engine) AddNamedHook(name string, h RoundHook) {
	e.hooks = append(e.hooks, h)
	e.hookNames = append(e.hookNames, name)
}

// Telemetry returns the engine's metrics registry.
func (e *Engine) Telemetry() *telemetry.Registry { return e.reg }

// SetTracer installs (or, with nil, removes) the operation-lifecycle
// tracer. Protocols fetch it via Tracer() to stamp and record sampled
// operations; the engine closes its round after routing. Call between
// rounds.
func (e *Engine) SetTracer(t *telemetry.Tracer) { e.tracer = t }

// Tracer returns the installed tracer, or nil.
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// EnableProfiling switches on the round-phase profiler and returns it.
// Call after all hooks are registered so each gets its own phase; the
// phase order matches RunRound: churn, topology, deliver, one phase per
// hook, routed, handlers, route. The routed phase is present regardless
// of routing mode (it measures ~0 under RoutingOracle) so phase indices
// never depend on configuration. Wall-clock only — profiler output is
// outside the determinism contract.
func (e *Engine) EnableProfiling() *telemetry.PhaseProfiler {
	if e.prof != nil {
		return e.prof
	}
	names := []string{"churn", "topology", "deliver"}
	names = append(names, e.hookNames...)
	names = append(names, "routed", "handlers", "route")
	e.prof = telemetry.NewPhaseProfiler(e.reg, names)
	return e.prof
}

// Profiler returns the round-phase profiler, or nil when profiling is off.
func (e *Engine) Profiler() *telemetry.PhaseProfiler { return e.prof }

// Metrics returns a snapshot of the run counters, assembled from the
// telemetry registry (the store of record).
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Rounds:           int(e.em.rounds.Value()),
		MsgsSent:         e.em.sent.Value(),
		MsgsDelivered:    e.em.delivered.Value(),
		MsgsDropped:      e.em.dropped.Value(),
		MsgsFaultDropped: e.em.faultDropped.Value(),
		MsgsDelayed:      e.em.delayed.Value(),
		BitsSent:         e.em.bitsSent.Value(),
		Replacements:     e.em.replacements.Value(),
		MaxNodeBitsRound: e.em.maxNodeBits.Value(),
	}
}

// Ctx is the per-node view passed to Handler.HandleRound. It is reused
// between nodes: neither the Ctx nor its Inbox may be retained after
// HandleRound returns.
type Ctx struct {
	E     *Engine
	Round int
	Slot  int
	Shard int // the slot's telemetry shard: pass to Counter.Add/Tracer.Emit
	ID    NodeID
	Rand  *rng.Stream
	Inbox []Msg

	out    *[]Msg
	routed *[]Msg
	seq    uint32
	bits   int64
}

// Send queues an id-addressed message from this node. Delivery happens at
// the start of the next round, and only if the target is still live then.
func (c *Ctx) Send(to NodeID, kind uint8, item, aux uint64, ids []NodeID) {
	c.SendMsg(Msg{To: to, Kind: kind, Item: item, Aux: aux, IDs: ids})
}

// SendMsg queues m (with From and sequencing filled in by the engine).
// Panics if a payload exceeds MaxPayloadLen: the modelled wire format
// cannot express it, so sending one is a protocol bug.
func (c *Ctx) SendMsg(m Msg) {
	if len(m.IDs) > MaxPayloadLen || len(m.Blob) > MaxPayloadLen {
		panic(fmt.Sprintf("simnet: payload exceeds MaxPayloadLen (%d ids, %d blob bytes)",
			len(m.IDs), len(m.Blob)))
	}
	m.From = c.ID
	m.sentRound = int32(c.Round)
	m.srcSlot = int32(c.Slot)
	m.seq = c.seq
	c.seq++
	c.bits += int64(m.Bits())
	*c.out = append(*c.out, m)
}

// NeighborSlots returns the node's current neighbour slots (aliased; do not
// modify).
func (c *Ctx) NeighborSlots() []int32 { return c.E.Graph().Neighbors(c.Slot) }

// NeighborIDs appends the ids of the node's current neighbours to dst.
func (c *Ctx) NeighborIDs(dst []NodeID) []NodeID {
	for _, s := range c.NeighborSlots() {
		dst = append(dst, c.E.ids[s])
	}
	return dst
}

// RunRound advances the simulation one round:
// churn → topology → hooks → handlers → routing.
// The first call must pass the engine's initial round (0), which performs
// the initial OnJoin for every node and runs a full round.
func (e *Engine) RunRound(h Handler) {
	round := e.round
	prof := e.prof
	if prof != nil {
		prof.Begin()
	}
	if round == 0 {
		// Initial population joins; no churn at round 0.
		e.churned = e.churned[:0]
		if h != nil {
			for s := 0; s < e.cfg.N; s++ {
				h.OnJoin(e, s, e.ids[s], 0)
			}
		}
		if prof != nil {
			prof.Lap(0) // churn
			prof.Lap(1) // topology
		}
	} else {
		// 1. Adversarial churn.
		batch := e.adv.Batch(round)
		e.churned = append(e.churned[:0], batch...)
		for _, s := range e.churned {
			if h != nil {
				h.OnLeave(e, s, e.ids[s], round)
			}
			id := e.placeNewNode(s, round)
			// Pending messages addressed to the departed occupant die
			// with it.
			e.em.dropped.Add(0, int64(len(e.nextInbox[s])))
			e.nextInbox[s] = e.nextInbox[s][:0]
			if h != nil {
				h.OnJoin(e, s, id, round)
			}
		}
		if e.router != nil {
			// Routed messages parked at a replaced slot die with it —
			// dropped and accounted, never silently lost.
			e.router.DropQueuedAt(e.churned)
		}
		e.em.replacements.Add(0, int64(len(e.churned)))
		if prof != nil {
			prof.Lap(0) // churn
		}
		// 2. Topology change.
		e.topo.Step(round)
		if prof != nil {
			prof.Lap(1) // topology
		}
	}
	e.recordReplacedHistory(round)

	// Swap inboxes: what was accumulated last round is delivered now.
	// One fused pass resets next-round inboxes and tallies deliveries.
	e.inbox, e.nextInbox = e.nextInbox, e.inbox
	var delivered int64
	for s := range e.inbox {
		delivered += int64(len(e.inbox[s]))
		e.nextInbox[s] = e.nextInbox[s][:0]
	}
	e.em.delivered.Add(0, delivered)
	e.deliverDelayed(round)
	if prof != nil {
		prof.Lap(2) // deliver
	}

	// 3. Hooks (walk soup etc), each its own profiler phase.
	for i, hook := range e.hooks {
		hook.StepRound(e, round)
		if prof != nil {
			prof.Lap(3 + i)
		}
	}

	// 4. Routed delivery (routing.go): in-flight overlay walkers advance
	// over this round's post-repair adjacency and land in this round's
	// inboxes; congested ones park and resume next round.
	if e.router != nil {
		e.runRouted()
	}
	if prof != nil {
		prof.Lap(3 + len(e.hooks)) // routed
	}

	// 5. Handlers, in parallel over slot shards. NopHandler is the
	// engine's own hooks-only no-op: it sends nothing and keeps no state,
	// so the per-slot handler sweep and the routing exchange are skipped
	// outright rather than executed vacuously.
	if _, nop := h.(NopHandler); h != nil && !nop {
		e.runHandlers(h, round)
		if prof != nil {
			prof.Lap(4 + len(e.hooks)) // handlers
		}
		// 6. Route: messages to live ids land in nextInbox; the rest drop.
		e.route()
		if prof != nil {
			prof.Lap(5 + len(e.hooks)) // route
		}
	}
	if e.tracer != nil {
		// Merge the round's staged trace events (serial, fixed shard
		// order) and update the lifecycle histograms.
		e.tracer.EndRound(int64(round))
	}
	if prof != nil {
		prof.EndRound(int64(round))
	}

	e.em.rounds.Inc(0)
	e.round++
}

// runHandlers runs HandleRound for every slot, workers claiming fixed slot
// shards. Each shard appends its slots' outgoing messages to its own
// buffer in (slot, seq) order, which is what makes the subsequent exchange
// — and therefore every inbox — canonically ordered with no sorting.
func (e *Engine) runHandlers(h Handler, round int) {
	e.grid.Run(e.workers, func(sh int) {
		rs := &e.shardOut[sh]
		rs.out = rs.out[:0]
		rs.routed = rs.routed[:0]
		rs.bits, rs.maxBits = 0, 0
		lo, hi := e.grid.Bounds(sh, e.cfg.N)
		ctx := rs.ctx
		for s := lo; s < hi; s++ {
			*ctx = Ctx{
				E: e, Round: round, Slot: s, Shard: sh, ID: e.ids[s],
				Rand: e.nodeRng[s], Inbox: e.inbox[s], out: &rs.out,
				routed: &rs.routed,
			}
			h.HandleRound(ctx)
			rs.bits += ctx.bits
			if ctx.bits > rs.maxBits {
				rs.maxBits = ctx.bits
			}
		}
	})
	var total, maxBits int64
	for sh := range e.shardOut {
		total += e.shardOut[sh].bits
		if e.shardOut[sh].maxBits > maxBits {
			maxBits = e.shardOut[sh].maxBits
		}
	}
	e.em.bitsSent.Add(0, total)
	e.em.maxNodeBits.SetMax(maxBits)
}

// route moves this round's outgoing messages into next-round inboxes with
// a two-phase sharded exchange. Scatter: workers walk source shards,
// decide each message's fault fate (a pure hash of its identity), resolve
// the destination id to a slot through the dense table, and stage the
// message in the (source shard, destination shard) transfer buffer.
// Gather: workers walk destination shards and merge source shards in fixed
// index order, so each inbox receives messages ordered by (sender slot,
// sequence) — the canonical order — regardless of worker count.
func (e *Engine) route() {
	e.grid.Run(e.workers, func(sh int) {
		rs := &e.shardOut[sh]
		for dsh := range rs.xfer {
			rs.xfer[dsh] = rs.xfer[dsh][:0]
		}
		rs.delayed = rs.delayed[:0]
		rs.sent, rs.dropped, rs.faultDropped, rs.delayedCnt = 0, 0, 0, 0
		for i := range rs.out {
			m := &rs.out[i]
			rs.sent++
			if e.fault != nil {
				rnd := rng.Hash(e.faultSeed, uint64(e.round), uint64(m.From), uint64(m.seq))
				drop, delay := e.fault.Fate(e.round, m, rnd)
				if drop {
					rs.faultDropped++
					continue
				}
				if delay > 0 {
					rs.delayedCnt++
					rs.delayed = append(rs.delayed, delayedMsg{deliverAt: e.round + 1 + delay, m: *m})
					continue
				}
			}
			dst, ok := e.slotOf(m.To)
			if !ok {
				rs.dropped++
				continue
			}
			dsh := e.slotLoc[dst] >> shard.LocalBits
			rs.xfer[dsh] = append(rs.xfer[dsh], routedRef{slot: dst, idx: uint32(i)})
		}
	})
	e.grid.Run(e.workers, func(dsh int) {
		// Counting-sort placement into the destination shard's flat arena
		// (see inboxArena): count per slot, turn counts into offsets, then
		// place each ref — source shards in fixed index order, so every
		// slot's run keeps the canonical (srcSlot, seq) order — and slice
		// the per-slot inbox views out of the buffer.
		ga := &e.arenas[e.round&1][dsh]
		counts := ga.counts
		for i := range counts {
			counts[i] = 0
		}
		loInt, _ := e.grid.Bounds(dsh, e.cfg.N)
		lo := int32(loInt)
		for ssh := range e.shardOut {
			for _, ref := range e.shardOut[ssh].xfer[dsh] {
				counts[ref.slot-lo]++
			}
		}
		total := int(shard.Offsets(counts, ga.off))
		if total == 0 {
			return // every view was already reset empty in the deliver phase
		}
		if cap(ga.msgs) < total {
			ga.msgs = make([]Msg, total, max(total, 2*cap(ga.msgs)))
		} else {
			ga.msgs = ga.msgs[:total]
		}
		copy(counts, ga.off[:len(counts)])
		msgs := ga.msgs
		for ssh := range e.shardOut {
			src := e.shardOut[ssh].out
			for _, ref := range e.shardOut[ssh].xfer[dsh] {
				l := ref.slot - lo
				pos := counts[l]
				counts[l] = pos + 1
				msgs[pos] = src[ref.idx]
			}
		}
		for l := range counts {
			a, b := ga.off[l], ga.off[l+1]
			if a != b {
				e.nextInbox[int(lo)+l] = msgs[a:b:b]
			}
		}
	})
	// Serial merge of tallies and fault-delayed messages, in fixed shard
	// order: e.delayed stays sorted by the canonical (sentRound, srcSlot,
	// seq) key across rounds because rounds are appended in increasing
	// sentRound order and shards in increasing srcSlot order. Routed
	// sends are handed to the overlay router here, in the same canonical
	// order, after deciding their fault fate with the same identity hash
	// the oracle path uses.
	for sh := range e.shardOut {
		rs := &e.shardOut[sh]
		e.em.sent.Add(0, rs.sent+int64(len(rs.routed)))
		e.em.dropped.Add(0, rs.dropped)
		e.em.faultDropped.Add(0, rs.faultDropped)
		e.em.delayed.Add(0, rs.delayedCnt)
		e.delayed = append(e.delayed, rs.delayed...)
		for i := range rs.routed {
			m := &rs.routed[i]
			if e.fault != nil {
				rnd := rng.Hash(e.faultSeed, uint64(e.round), uint64(m.From), uint64(m.seq))
				drop, delay := e.fault.Fate(e.round, m, rnd)
				if drop {
					e.em.faultDropped.Inc(0)
					continue
				}
				if delay > 0 {
					e.em.delayed.Inc(0)
					e.delayed = append(e.delayed, delayedMsg{deliverAt: e.round + 1 + delay, m: *m})
					continue
				}
			}
			e.sendToRouter(m)
		}
	}
}

// insertCanonical places m into slot s's inbox at its canonical position
// (binary search on the (sentRound, srcSlot, seq) key). Only the
// fault-delay path pays for this; fresh messages arrive pre-ordered.
func (e *Engine) insertCanonical(s int32, m Msg) {
	in := e.inbox[s]
	i := sort.Search(len(in), func(j int) bool { return msgBefore(&m, &in[j]) })
	in = append(in, Msg{})
	copy(in[i+1:], in[i:])
	in[i] = m
	e.inbox[s] = in
}

// Run advances the engine through rounds [current, current+rounds).
func (e *Engine) Run(h Handler, rounds int) {
	for i := 0; i < rounds; i++ {
		e.RunRound(h)
	}
}

// LiveIDs appends all currently live ids to dst in slot order.
func (e *Engine) LiveIDs(dst []NodeID) []NodeID {
	for _, id := range e.ids {
		dst = append(dst, id)
	}
	return dst
}

// NopHandler is a Handler that does nothing; useful for running hooks only.
type NopHandler struct{}

// OnJoin implements Handler.
func (NopHandler) OnJoin(*Engine, int, NodeID, int) {}

// OnLeave implements Handler.
func (NopHandler) OnLeave(*Engine, int, NodeID, int) {}

// HandleRound implements Handler.
func (NopHandler) HandleRound(*Ctx) {}
