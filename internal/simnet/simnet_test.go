package simnet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
)

func testConfig(n int, law churn.Law) Config {
	return Config{
		N: n, Degree: 8, EdgeMode: expander.Rerandomize,
		AdversarySeed: 1, ProtocolSeed: 2,
		Strategy: churn.Uniform, Law: law,
	}
}

// echoHandler sends one message per round to a fixed partner and counts
// receipts; used to validate delivery semantics.
type echoHandler struct {
	mu       sync.Mutex
	joins    int
	leaves   int
	received map[NodeID]int
	partner  NodeID
}

func (h *echoHandler) OnJoin(e *Engine, slot int, id NodeID, round int) {
	h.joins++
}

func (h *echoHandler) OnLeave(e *Engine, slot int, id NodeID, round int) {
	h.leaves++
}

func (h *echoHandler) HandleRound(ctx *Ctx) {
	h.mu.Lock()
	h.received[ctx.ID] += len(ctx.Inbox)
	h.mu.Unlock()
	if h.partner != 0 {
		ctx.Send(h.partner, 1, 0, 0, nil)
	}
}

func TestInitialJoins(t *testing.T) {
	e := New(testConfig(50, churn.ZeroLaw{}))
	h := &echoHandler{received: make(map[NodeID]int)}
	e.RunRound(h)
	if h.joins != 50 {
		t.Fatalf("round 0 joins = %d, want 50", h.joins)
	}
	if e.Round() != 1 {
		t.Fatalf("round = %d after one RunRound, want 1", e.Round())
	}
}

func TestMessageDelivery(t *testing.T) {
	e := New(testConfig(10, churn.ZeroLaw{}))
	target := e.IDAt(3)
	h := &echoHandler{received: make(map[NodeID]int), partner: target}
	e.RunRound(h) // round 0: everyone sends to target
	e.RunRound(h) // round 1: target receives 10 messages
	if got := h.received[target]; got != 10 {
		t.Fatalf("target received %d messages, want 10", got)
	}
	m := e.Metrics()
	if m.MsgsSent != 20 || m.MsgsDelivered < 10 {
		t.Fatalf("unexpected metrics: %+v", m)
	}
}

func TestMessagesToDeadNodesDropped(t *testing.T) {
	cfg := testConfig(10, churn.FixedLaw{Count: 10}) // full replacement each round
	e := New(cfg)
	target := e.IDAt(0)
	h := &echoHandler{received: make(map[NodeID]int), partner: target}
	e.RunRound(h) // round 0: all send to target
	e.RunRound(h) // round 1: target churned out before delivery
	if got := h.received[target]; got != 0 {
		t.Fatalf("dead target received %d messages", got)
	}
	if e.Metrics().MsgsDropped == 0 {
		t.Fatal("no messages recorded as dropped")
	}
}

func TestChurnReplacesIdentities(t *testing.T) {
	cfg := testConfig(20, churn.FixedLaw{Count: 5})
	e := New(cfg)
	h := &echoHandler{received: make(map[NodeID]int)}
	before := append([]NodeID(nil), e.LiveIDs(nil)...)
	e.RunRound(h) // round 0, no churn
	e.RunRound(h) // round 1, 5 replacements
	after := e.LiveIDs(nil)
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed != 5 {
		t.Fatalf("%d identities changed, want 5", changed)
	}
	if h.leaves != 5 {
		t.Fatalf("leaves = %d, want 5", h.leaves)
	}
	// Old ids must be dead, new ids live.
	for i := range before {
		if before[i] != after[i] {
			if e.IsLive(before[i]) {
				t.Fatal("churned id still live")
			}
			if !e.IsLive(after[i]) {
				t.Fatal("new id not live")
			}
		}
	}
}

func TestSlotOfConsistency(t *testing.T) {
	e := New(testConfig(30, churn.FixedLaw{Count: 3}))
	e.Run(NopHandler{}, 10)
	for s := 0; s < e.N(); s++ {
		id := e.IDAt(s)
		got, ok := e.SlotOf(id)
		if !ok || got != s {
			t.Fatalf("SlotOf(IDAt(%d)) = (%d,%v)", s, got, ok)
		}
	}
}

func TestAgesTracked(t *testing.T) {
	e := New(testConfig(30, churn.ZeroLaw{}))
	e.Run(NopHandler{}, 5)
	for s := 0; s < e.N(); s++ {
		if e.Age(s) != 5 {
			t.Fatalf("age of slot %d = %d, want 5", s, e.Age(s))
		}
		if e.JoinRound(s) != 0 {
			t.Fatalf("join round = %d, want 0", e.JoinRound(s))
		}
	}
}

// recordHandler records the exact per-node inbox sequences for determinism
// comparisons.
type recordHandler struct {
	mu  sync.Mutex
	log map[NodeID][]NodeID // receiver -> senders in delivery order
}

func (h *recordHandler) OnJoin(*Engine, int, NodeID, int)  {}
func (h *recordHandler) OnLeave(*Engine, int, NodeID, int) {}
func (h *recordHandler) HandleRound(ctx *Ctx) {
	if len(ctx.Inbox) > 0 {
		h.mu.Lock()
		for _, m := range ctx.Inbox {
			h.log[ctx.ID] = append(h.log[ctx.ID], m.From)
		}
		h.mu.Unlock()
	}
	// Every node messages 3 pseudo-random live targets.
	for i := 0; i < 3; i++ {
		slot := ctx.Rand.Intn(ctx.E.N())
		ctx.Send(ctx.E.IDAt(slot), 2, 0, 0, nil)
	}
}

func runRecorded(t *testing.T, workers int) map[NodeID][]NodeID {
	t.Helper()
	cfg := testConfig(64, churn.FixedLaw{Count: 4})
	cfg.Workers = workers
	e := New(cfg)
	h := &recordHandler{log: make(map[NodeID][]NodeID)}
	e.Run(h, 8)
	return h.log
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	a := runRecorded(t, 1)
	b := runRecorded(t, 4)
	c := runRecorded(t, 13)
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("different receiver sets: %d %d %d", len(a), len(b), len(c))
	}
	for id, seq := range a {
		for _, other := range []map[NodeID][]NodeID{b, c} {
			o := other[id]
			if len(o) != len(seq) {
				t.Fatalf("node %d: inbox lengths differ (%d vs %d)", id, len(seq), len(o))
			}
			for i := range seq {
				if seq[i] != o[i] {
					t.Fatalf("node %d: inbox order differs at %d", id, i)
				}
			}
		}
	}
}

// TestDeterminismUnderChurnAndFaults is the regression net for the
// sort-free canonical inbox order: a 2048-node run under churn AND a
// dropping/delaying fault model (so the delayed-message insertion path is
// exercised) must produce bit-identical per-node delivery sequences and
// metrics at every worker count. CI runs this test with -race to check
// the parallel scatter/gather exchange on every push.
func TestDeterminismUnderChurnAndFaults(t *testing.T) {
	run := func(workers int) (map[NodeID][]NodeID, Metrics) {
		cfg := testConfig(2048, churn.FixedLaw{Count: 64})
		cfg.Workers = workers
		cfg.Fault = DropDelayFaults{DropProb: 0.05, DelayProb: 0.2, MaxDelay: 3}
		e := New(cfg)
		h := &recordHandler{log: make(map[NodeID][]NodeID)}
		e.Run(h, 12)
		return h.log, e.Metrics()
	}
	logA, mA := run(1)
	for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
		logB, mB := run(w)
		if mA != mB {
			t.Fatalf("workers=%d: metrics differ:\n%+v\n%+v", w, mA, mB)
		}
		if len(logA) != len(logB) {
			t.Fatalf("workers=%d: receiver sets differ (%d vs %d)", w, len(logA), len(logB))
		}
		for id, seq := range logA {
			o := logB[id]
			if len(o) != len(seq) {
				t.Fatalf("workers=%d node %d: inbox lengths differ (%d vs %d)", w, id, len(seq), len(o))
			}
			for i := range seq {
				if seq[i] != o[i] {
					t.Fatalf("workers=%d node %d: inbox order differs at %d", w, id, i)
				}
			}
		}
	}
}

// replacedRecorder snapshots ReplacedInRound for every slot from inside a
// round hook, where sharded consumers (the walk soup) query it.
type replacedRecorder struct {
	flags [][]bool
}

func (r *replacedRecorder) StepRound(e *Engine, round int) {
	f := make([]bool, e.N())
	for s := range f {
		f[s] = e.ReplacedInRound(s, round)
	}
	r.flags = append(r.flags, f)
}

func TestReplacedInRoundMatchesChurnedList(t *testing.T) {
	e := New(testConfig(64, churn.FixedLaw{Count: 5}))
	rec := &replacedRecorder{}
	e.AddHook(rec)
	churned := make([][]int, 0, 10)
	for r := 0; r < 10; r++ {
		e.RunRound(NopHandler{})
		churned = append(churned, append([]int(nil), e.ChurnedThisRound()...))
		// Between rounds the query must agree with the churned list when
		// asked about the round that just ran (Round()-1).
		for s := 0; s < e.N(); s++ {
			want := false
			for _, cs := range e.ChurnedThisRound() {
				want = want || cs == s
			}
			if got := e.ReplacedInRound(s, e.Round()-1); got != want {
				t.Fatalf("after round %d slot %d: ReplacedInRound(Round()-1) = %v, want %v", r, s, got, want)
			}
		}
	}
	for r := range churned {
		want := make([]bool, e.N())
		for _, s := range churned[r] {
			want[s] = true
		}
		for s := range want {
			if rec.flags[r][s] != want[s] {
				t.Fatalf("round %d slot %d: ReplacedInRound = %v, churned list says %v",
					r, s, rec.flags[r][s], want[s])
			}
		}
	}
	// Round 0 populates every slot but replaces none.
	for s := 0; s < e.N(); s++ {
		if rec.flags[0][s] {
			t.Fatalf("round 0 slot %d reported as replaced", s)
		}
	}
}

func TestRouteShardCacheAligned(t *testing.T) {
	// Per-shard staging areas must be an exact multiple of the cache line
	// so parallel workers filling adjacent shards never false-share.
	if s := unsafe.Sizeof(routeShard{}); s%64 != 0 {
		t.Fatalf("routeShard is %d bytes, want a multiple of 64", s)
	}
}

func TestSendMsgPayloadBound(t *testing.T) {
	var panicked, sent atomic.Bool
	h := funcHandler(func(ctx *Ctx) {
		if ctx.Slot != 0 || ctx.Round != 0 {
			return
		}
		// The largest expressible payload must go through...
		ctx.SendMsg(Msg{To: ctx.ID, Blob: make([]byte, MaxPayloadLen)})
		sent.Store(true)
		// ...and one byte more must be rejected: the 16-bit wire length
		// field cannot express it.
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		ctx.SendMsg(Msg{To: ctx.ID, Blob: make([]byte, MaxPayloadLen+1)})
	})
	e := New(testConfig(10, churn.ZeroLaw{}))
	e.RunRound(h)
	if !sent.Load() {
		t.Fatal("MaxPayloadLen-sized blob was rejected")
	}
	if !panicked.Load() {
		t.Fatal("oversized blob did not panic")
	}
}

func TestRunIsReproducible(t *testing.T) {
	a := runRecorded(t, 0)
	b := runRecorded(t, 0)
	for id, seq := range a {
		o := b[id]
		if len(o) != len(seq) {
			t.Fatal("reruns differ")
		}
		for i := range seq {
			if seq[i] != o[i] {
				t.Fatal("reruns differ in inbox order")
			}
		}
	}
}

func TestBitsAccounting(t *testing.T) {
	e := New(testConfig(10, churn.ZeroLaw{}))
	target := e.IDAt(0)
	h := &echoHandler{received: make(map[NodeID]int), partner: target}
	e.RunRound(h)
	m := e.Metrics()
	wantPerMsg := int64((&Msg{}).Bits())
	if m.BitsSent != 10*wantPerMsg {
		t.Fatalf("BitsSent = %d, want %d", m.BitsSent, 10*wantPerMsg)
	}
	if m.MaxNodeBitsRound != wantPerMsg {
		t.Fatalf("MaxNodeBitsRound = %d, want %d", m.MaxNodeBitsRound, wantPerMsg)
	}
}

func TestMsgBits(t *testing.T) {
	m := &Msg{}
	if m.Bits() != 328 {
		t.Fatalf("empty msg bits = %d, want 328", m.Bits())
	}
	m.IDs = make([]NodeID, 5)
	if m.Bits() != 328+16+320 {
		t.Fatalf("5-id msg bits = %d", m.Bits())
	}
	m.Blob = make([]byte, 10)
	if m.Bits() != 328+16+320+16+80 {
		t.Fatalf("blob msg bits = %d", m.Bits())
	}
}

func TestPendingInboxClearedOnChurn(t *testing.T) {
	// A message routed to a slot whose occupant is churned before delivery
	// must not reach the replacement occupant.
	cfg := testConfig(8, churn.FixedLaw{Count: 8})
	e := New(cfg)
	h := &recordHandler{log: make(map[NodeID][]NodeID)}
	e.Run(h, 6)
	// Every receiver in the log must have been live when it received:
	// since all slots churn every round, only round-0 sends (delivered
	// round 1 to... wait, occupants churn at round 1) — nothing should
	// ever be delivered.
	if len(h.log) != 0 {
		t.Fatalf("messages leaked across churn to %d receivers", len(h.log))
	}
	if e.Metrics().MsgsDelivered != 0 {
		t.Fatalf("delivered = %d, want 0", e.Metrics().MsgsDelivered)
	}
}

type hookCounter struct{ calls []int }

func (h *hookCounter) StepRound(e *Engine, round int) { h.calls = append(h.calls, round) }

func TestHooksRunEveryRound(t *testing.T) {
	e := New(testConfig(10, churn.ZeroLaw{}))
	hk := &hookCounter{}
	e.AddHook(hk)
	e.Run(NopHandler{}, 4)
	if len(hk.calls) != 4 {
		t.Fatalf("hook ran %d times, want 4", len(hk.calls))
	}
	for i, r := range hk.calls {
		if r != i {
			t.Fatalf("hook round %d, want %d", r, i)
		}
	}
}

func TestNeighborIDsMatchTopology(t *testing.T) {
	e := New(testConfig(40, churn.ZeroLaw{}))
	var checked bool
	h := funcHandler(func(ctx *Ctx) {
		if ctx.Slot == 7 {
			ids := ctx.NeighborIDs(nil)
			slots := ctx.NeighborSlots()
			if len(ids) != len(slots) {
				t.Error("neighbor id/slot length mismatch")
			}
			for i := range ids {
				if ctx.E.IDAt(int(slots[i])) != ids[i] {
					t.Error("neighbor id mismatch")
				}
			}
			checked = true
		}
	})
	e.RunRound(h)
	if !checked {
		t.Fatal("slot 7 never ran")
	}
}

// funcHandler adapts a function to Handler.
type funcHandler func(ctx *Ctx)

func (funcHandler) OnJoin(*Engine, int, NodeID, int)  {}
func (funcHandler) OnLeave(*Engine, int, NodeID, int) {}
func (f funcHandler) HandleRound(ctx *Ctx)            { f(ctx) }

func BenchmarkMicroEngineRound(b *testing.B) {
	cfg := testConfig(4096, churn.PaperLaw(1, 0.5))
	e := New(cfg)
	h := funcHandler(func(ctx *Ctx) {})
	e.RunRound(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound(h)
	}
}
