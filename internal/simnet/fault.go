package simnet

import (
	"fmt"

	"dynp2p/internal/rng"
)

// FaultModel perturbs message delivery at routing time, modelling lossy or
// congested links on top of the paper's churn adversary. The engine
// consults the model once per sent message; the model may drop the message
// outright or delay its delivery by extra rounds (bounded, so the
// synchronous-round analysis still applies with a dilated round length).
//
// Determinism: the engine passes 64 bits of randomness derived by hashing
// (fault seed, send round, sender id, per-sender sequence), so a message's
// fate is a pure function of its identity — independent of worker count,
// goroutine scheduling, and the order messages are routed in. Fault
// randomness derives from the adversary seed: like churn, faults are part
// of the oblivious environment, not of the protocol's coin flips.
type FaultModel interface {
	// Fate decides what happens to message m sent in the given round:
	// drop it, or delay delivery by delay extra rounds beyond the normal
	// next-round delivery (0 = deliver normally). Implementations must be
	// pure functions of (round, m, rnd) and safe for concurrent use.
	Fate(round int, m *Msg, rnd uint64) (drop bool, delay int)
	String() string
}

// DropDelayFaults is the standard probabilistic fault model: each message
// is independently dropped with probability DropProb; each surviving
// message is delayed with probability DelayProb by a uniform 1..MaxDelay
// extra rounds. The zero value is a no-op (deliver everything on time).
type DropDelayFaults struct {
	DropProb  float64 `json:"drop,omitempty"`
	DelayProb float64 `json:"delayProb,omitempty"`
	MaxDelay  int     `json:"maxDelay,omitempty"`
}

// Zero reports whether the model never perturbs anything.
func (f DropDelayFaults) Zero() bool {
	return f.DropProb <= 0 && (f.DelayProb <= 0 || f.MaxDelay <= 0)
}

// Fate implements FaultModel.
func (f DropDelayFaults) Fate(_ int, _ *Msg, rnd uint64) (bool, int) {
	if f.DropProb > 0 {
		if rng.Unit(rnd) < f.DropProb {
			return true, 0
		}
	}
	if f.DelayProb > 0 && f.MaxDelay > 0 {
		rnd = rng.Remix(rnd)
		if rng.Unit(rnd) < f.DelayProb {
			rnd = rng.Remix(rnd)
			return false, 1 + int(rnd%uint64(f.MaxDelay))
		}
	}
	return false, 0
}

func (f DropDelayFaults) String() string {
	if f.Zero() {
		return "no faults"
	}
	s := fmt.Sprintf("drop %.3g%%", 100*f.DropProb)
	if f.DelayProb > 0 && f.MaxDelay > 0 {
		s += fmt.Sprintf(", delay %.3g%% by 1..%d", 100*f.DelayProb, f.MaxDelay)
	}
	return s
}

// delayedMsg is a message held back by the fault model.
type delayedMsg struct {
	deliverAt int // round at which delivery is attempted
	m         Msg
}

// SetFault installs (or, with nil, removes) the engine's fault model.
// Call only between rounds. Scenario phases use this to vary network
// quality over a run; determinism is preserved because the per-message
// randomness depends only on the fault seed and message identity.
//
// Messages the outgoing model was still holding back are dropped (counted
// in MsgsFaultDropped): they are casualties of the fault environment that
// delayed them, and must not leak a prior phase's perturbation into a
// phase that declared, say, reliable links.
func (e *Engine) SetFault(f FaultModel) {
	e.em.faultDropped.Add(0, int64(len(e.delayed)))
	e.delayed = e.delayed[:0]
	e.fault = f
}

// Fault returns the current fault model (nil if none).
func (e *Engine) Fault() FaultModel { return e.fault }

// deliverDelayed moves fault-delayed messages whose time has come into the
// round's inbox, inserting each at its canonical sort position (fresh
// messages arrive pre-ordered; only this path pays for an insertion).
// Targets that have since been churned out drop the message, the same
// failure mode as normal routing.
//
// Under RoutingOverlay a due message is instead handed back to the
// overlay router: it resumes as a fresh walk from its origin slot during
// this round's routed phase, so even delay-released traffic reaches its
// target edge-by-edge — no teleports.
func (e *Engine) deliverDelayed(round int) {
	if len(e.delayed) == 0 {
		return
	}
	kept := e.delayed[:0]
	for _, d := range e.delayed {
		if d.deliverAt > round {
			kept = append(kept, d)
			continue
		}
		if e.router != nil {
			m := d.m
			e.sendToRouter(&m)
			continue
		}
		s, ok := e.slotOf(d.m.To)
		if !ok {
			e.em.dropped.Inc(0)
			continue
		}
		e.insertCanonical(s, d.m)
		e.em.delivered.Inc(0)
	}
	e.delayed = kept
}
