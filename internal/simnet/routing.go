package simnet

// Overlay message routing (DESIGN.md §11): when Config.Routing selects
// RoutingOverlay the engine stops teleporting protocol messages to their
// addressee and instead walks each one edge-by-edge over the live
// topology via internal/route. Handlers opt in per message with
// Ctx.SendRouted / Ctx.SendRoutedKeyed; under RoutingOracle both fall
// back to SendMsg, which is what keeps oracle A/B runs byte-compatible
// with the historical engine.
//
// Phase placement: routed delivery runs after the round's hooks (so the
// walked adjacency is the post-repair graph under self-healing) and
// before handlers (so an uncongested routed message still arrives the
// round after it was sent — the oracle's latency). Congestion, by
// contrast, parks walkers at capacity-exhausted slots and resurfaces as
// real queueing rounds. The whole phase is serial and processes walkers
// in a fixed order, so routed metrics are worker-count independent.

import (
	"fmt"

	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
	"dynp2p/internal/route"
	"dynp2p/internal/shard"
	"dynp2p/internal/telemetry"
)

// RoutingMode selects how protocol messages travel.
type RoutingMode uint8

const (
	// RoutingOracle is the historical engine exchange: a message reaches
	// its addressee in one round regardless of topology.
	RoutingOracle RoutingMode = iota
	// RoutingOverlay walks every routed message over the expander's
	// edges, with per-slot link capacities and bounded queues.
	RoutingOverlay
)

// String returns the mode's config-file name.
func (m RoutingMode) String() string {
	if m == RoutingOverlay {
		return "overlay"
	}
	return "oracle"
}

// ParseRoutingMode resolves a routing-mode name ("oracle", "overlay");
// the empty string is oracle, matching the zero Config.
func ParseRoutingMode(s string) (RoutingMode, error) {
	switch s {
	case "", "oracle":
		return RoutingOracle, nil
	case "overlay":
		return RoutingOverlay, nil
	}
	return RoutingOracle, fmt.Errorf("simnet: unknown routing mode %q", s)
}

// RoutingConfig parameterises the engine's message routing.
type RoutingConfig struct {
	Mode RoutingMode
	// WalkBudget is the per-message forward budget (TTL);
	// 0 = route.AutoBudget(N, Degree).
	WalkBudget int
	// LinkCapacity bounds forwards out of one slot per round;
	// 0 = unlimited.
	LinkCapacity int
	// QueueLimit bounds parked walkers per slot;
	// 0 = route.DefaultQueueLimit.
	QueueLimit int
}

// placedMsg is one routed delivery staged for inbox placement.
type placedMsg struct {
	slot int32
	m    Msg
}

// deliveryArena is the routed phase's flat inbox store, the serial
// sibling of inboxArena: all of a round's routed deliveries are placed
// slot-major by one counting sort and the per-slot views sliced out, so
// steady-state routed rounds allocate nothing.
type deliveryArena struct {
	msgs   []Msg
	off    []int32 // len N+1
	counts []int32 // len N
}

// initRouter (re)builds the overlay router from cfg.Routing. Any
// in-flight walkers of a previous router are flushed and accounted.
func (e *Engine) initRouter() {
	if e.router != nil {
		e.router.Flush()
	}
	rc := e.cfg.Routing
	budget := rc.WalkBudget
	if budget <= 0 {
		budget = route.AutoBudget(e.cfg.N, e.cfg.Degree)
	}
	e.router = route.New[Msg](e.reg, e.cfg.N, route.Params{
		Budget:       budget,
		LinkCapacity: rc.LinkCapacity,
		QueueLimit:   rc.QueueLimit,
		Seed:         rng.Hash(e.cfg.ProtocolSeed, 0x6f7665726c6179), // "overlay"
	})
	e.applyRouterEnv()
	if e.routedArena.off == nil {
		e.routedArena.off = make([]int32, e.cfg.N+1)
		e.routedArena.counts = make([]int32, e.cfg.N)
	}
}

// applyRouterEnv installs the engine-side callbacks on the router.
func (e *Engine) applyRouterEnv() {
	env := route.Env[Msg]{
		Graph:  func() *graph.Graph { return e.topo.Graph() },
		SlotOf: func(id uint64) (int32, bool) { return e.slotOf(NodeID(id)) },
		Holder: func(slot int32, key uint64) bool {
			return e.keyHolder != nil && e.keyHolder(int(slot), key, e.round)
		},
		Deliver: e.deliverRouted,
		OnDrop: func(m *Msg, h *route.Header, reason route.DropReason) {
			if m.Trace == 0 || e.tracer == nil {
				return
			}
			e.tracer.Emit(0, telemetry.Event{
				Trace: m.Trace, Round: int64(e.round), Kind: telemetry.EvDrop,
				Msg: m.Kind, From: uint64(m.From), To: uint64(m.To),
				Item: m.Item, Aux: int64(reason),
			})
		},
	}
	if e.hopRec != nil {
		rec := e.hopRec
		env.OnHop = func(from, to int32) { rec(e.round, int(from), int(to)) }
	}
	e.router.SetEnv(env)
}

// SetRouting reconfigures message routing mid-run. Call between rounds;
// scenario phases and A/B experiments use it to pit overlay and oracle
// delivery against the same churn timeline. Switching overlay off drops
// (and accounts) every in-flight walker, the same discipline SetFault
// applies to delayed messages.
func (e *Engine) SetRouting(rc RoutingConfig) {
	e.cfg.Routing = rc
	if rc.Mode == RoutingOverlay {
		e.initRouter()
		return
	}
	if e.router != nil {
		e.router.Flush()
		e.router = nil
	}
}

// Routing returns the current routing configuration.
func (e *Engine) Routing() RoutingConfig { return e.cfg.Routing }

// RouteMetrics returns the overlay router's counters (zero in oracle
// mode).
func (e *Engine) RouteMetrics() route.Metrics {
	if e.router == nil {
		return route.Metrics{}
	}
	return e.router.Metrics()
}

// RoutedInFlight returns the number of routed messages currently walking
// or parked (0 in oracle mode).
func (e *Engine) RoutedInFlight() int {
	if e.router == nil {
		return 0
	}
	return e.router.InFlight()
}

// SetKeyHolder installs the protocol's holder predicate: whether slot
// currently holds item key (cache entry, storage landmark, committee
// copy) at the given round. Keyed routed walks terminate early at
// holders, which is how cache replicas cut true network distance.
func (e *Engine) SetKeyHolder(fn func(slot int, key uint64, round int) bool) {
	e.keyHolder = fn
}

// SetHopRecorder installs an observer invoked for every routed forward
// with (round, from slot, to slot) — the edge-conformance audit hook for
// tests. nil removes it. Call between rounds.
func (e *Engine) SetHopRecorder(fn func(round, from, to int)) {
	e.hopRec = fn
	if e.router != nil {
		e.applyRouterEnv()
	}
}

// SendRouted queues m for overlay delivery: the message walks the
// expander edge-by-edge toward m.To, parking at congested slots. Under
// RoutingOracle it is exactly SendMsg, which lets protocols call it
// unconditionally and leave the mode to configuration.
func (c *Ctx) SendRouted(m Msg) {
	if c.E.router == nil {
		c.SendMsg(m)
		return
	}
	m.keyed = false
	c.sendRouted(m)
}

// SendRoutedKeyed is SendRouted for holder-seeking messages: the walk
// additionally terminates at any slot (or neighbor) currently holding
// item m.Item, rewriting m.To to the holder. Under RoutingOracle it is
// SendMsg.
func (c *Ctx) SendRoutedKeyed(m Msg) {
	if c.E.router == nil {
		c.SendMsg(m)
		return
	}
	m.keyed = true
	c.sendRouted(m)
}

// sendRouted stamps identity and sequencing exactly like SendMsg and
// stages m in the shard's routed buffer; the serial exchange merge hands
// it to the router in canonical order.
func (c *Ctx) sendRouted(m Msg) {
	if len(m.IDs) > MaxPayloadLen || len(m.Blob) > MaxPayloadLen {
		panic("simnet: routed payload exceeds MaxPayloadLen")
	}
	m.From = c.ID
	m.sentRound = int32(c.Round)
	m.srcSlot = int32(c.Slot)
	m.seq = c.seq
	c.seq++
	c.bits += int64(m.Bits())
	*c.routed = append(*c.routed, m)
}

// sendToRouter hands one stamped message to the overlay router. The walk
// seed is a pure hash of the message identity, so its port choices are
// reproducible at any worker count.
func (e *Engine) sendToRouter(m *Msg) {
	h := route.Header{
		Target: uint64(m.To),
		Seed:   rng.Hash(e.routeSeed, uint64(uint32(m.sentRound)), uint64(uint32(m.srcSlot)), uint64(m.seq)),
	}
	if m.keyed {
		h.Keyed = true
		h.Key = m.Item
	}
	e.router.Send(*m, h, m.srcSlot)
}

// deliverRouted is the router's delivery callback: stamp the true path
// length, rewrite the addressee on holder early-exit, and stage the
// message for inbox placement.
func (e *Engine) deliverRouted(slot int32, m *Msg, hops int32) {
	m.Hops = hops
	if id := e.ids[slot]; m.To != id {
		m.To = id // keyed walk ended at a holder: it answers instead
	}
	e.em.delivered.Inc(0)
	e.routedPlaced = append(e.routedPlaced, placedMsg{slot: slot, m: *m})
}

// runRouted executes the routed-delivery phase: advance every in-flight
// walker over this round's adjacency, then place the deliveries into
// this round's inboxes with one stable counting sort. Slots that already
// hold oracle-delivered messages (mixed SendMsg/SendRouted usage) take
// the canonical-insert slow path instead.
func (e *Engine) runRouted() {
	e.routedPlaced = e.routedPlaced[:0]
	e.router.Step()
	if len(e.routedPlaced) == 0 {
		return
	}
	ra := &e.routedArena
	counts := ra.counts
	for i := range counts {
		counts[i] = 0
	}
	for i := range e.routedPlaced {
		counts[e.routedPlaced[i].slot]++
	}
	total := int(shard.Offsets(counts, ra.off))
	if cap(ra.msgs) < total {
		ra.msgs = make([]Msg, total, max(total, 2*cap(ra.msgs)))
	} else {
		ra.msgs = ra.msgs[:total]
	}
	copy(counts, ra.off[:len(counts)])
	for i := range e.routedPlaced {
		p := &e.routedPlaced[i]
		pos := counts[p.slot]
		counts[p.slot] = pos + 1
		ra.msgs[pos] = p.m
	}
	for s := 0; s < e.cfg.N; s++ {
		a, b := ra.off[s], ra.off[s+1]
		if a == b {
			continue
		}
		if len(e.inbox[s]) == 0 {
			e.inbox[s] = ra.msgs[a:b:b]
			continue
		}
		for _, m := range ra.msgs[a:b] {
			e.insertCanonical(int32(s), m)
		}
	}
}
