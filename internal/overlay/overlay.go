// Package overlay is the peer-maintained topology layer: a distributed
// repair process that keeps the network a d-regular (near-)expander under
// churn without the oracle of internal/expander re-randomizing edges.
//
// The paper (§2.1) *assumes* every round's topology is a d-regular
// non-bipartite expander; in a deployment the peers themselves must
// maintain that invariant. Under expander.SelfHealing the oracle builds
// only the round-0 graph; from then on the only edge changes are the ones
// made here, from information a real node would hold:
//
//   - Detection. When a slot's occupant is replaced, the model says its
//     connections die with it: every edge incident to a churned slot is
//     severed, leaving "dangling" ports on the newcomer and on each
//     surviving old neighbor (a live node notices a dead peer by its
//     silence; the newcomer starts with no links at all).
//   - Re-sampling. Each repairing node draws replacement endpoints from
//     the random-walk soup samples it received *this round*
//     (walks.Soup.Samples): by the Soup Theorem these are near-uniform
//     over the live network and at most one walk length stale.
//   - Degree-preserving splice. Dangling ports are paired off in a
//     seeded random order; each pair (u₁,u₂) is healed through one
//     sampled edge (w,x): the edge (w,x) is replaced by (u₁,w) and
//     (u₂,x). Every vertex keeps exactly degree d, so the graph stays a
//     d-regular multigraph with no global coordination. When no usable
//     sample exists (cold start, or every sampled source departed) the
//     pair is connected directly — still degree-exact, the fallback a
//     real node would use by answering another repairer's probe.
//   - Non-bipartiteness guard. Splices preserve regularity, not parity
//     structure, so on a cadence the overlay 2-colors the graph with
//     preallocated scratch; in the astronomically unlikely bipartite
//     case it converts two ports of one vertex into a self-loop plus a
//     bridging edge (degree-exact, and a self-loop is an odd cycle).
//
// Telemetry: on a configurable cadence the overlay estimates the walk
// matrix's second eigenvalue λ via graph.SpectralGapEstimateScratch, so
// runs — including oracle-maintained ones — can chart their spectral gap
// round by round (surfaced through dynp2p.Stats and scenario traces).
//
// Parallelism and determinism: repair is a three-phase pass over the
// engine's slot-shard grid, bit-identical at every worker count.
//
//  1. Sever (parallel): each shard scans the churned slots in its slot
//     range and emits, in (slot, port) order, the port pairs of severed
//     edges whose canonical side it owns (when both endpoints churned,
//     the lower-indexed port emits). The scan only reads the adjacency
//     and the reciprocal-port table; per-shard segments are then merged
//     into the dangling-port pool in fixed shard index order — which is
//     ascending slot order, the same canonical pool the serial code
//     built — and the dangling bits are set serially.
//  2. Propose (parallel): after a serial seeded shuffle pairs the pool
//     off, each pair's splice target is chosen against the FROZEN
//     post-sever adjacency by a scratch RNG stream reseeded from
//     hash(seed, round, pair index) — randomness is a pure function of
//     the pair, not of any shared stream's consumption order, so any
//     worker may evaluate any pair. Proposals only avoid dangling ports,
//     and heals only clear dangling bits, so a proposal can never be
//     invalidated by the heals that precede it.
//  3. Apply (serial): heals execute in pair order, splicing each pair
//     through its proposed edge as that edge stands now (an earlier
//     splice may have rotated the peer — the splice is degree-exact
//     either way) and updating the reciprocal-port table in place.
//
// All randomness derives from the protocol seed, so runs are a pure
// function of (seeds, parameters, shard count) — the engine's contract.
// The repair cost is O(churned·d) with all scratch reused: steady-state
// rounds allocate nothing (benchmarked by BenchmarkOverlayRepair).
package overlay

import (
	"fmt"
	"slices"
	"sort"

	"dynp2p/internal/expander"
	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
	"dynp2p/internal/shard"
	"dynp2p/internal/simnet"
	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// maxSampleTries bounds how many soup samples one heal inspects before
// falling back to a direct pairing: a real repairer probes a handful of
// candidates, not its whole sample set.
const maxSampleTries = 8

// spliceHops is how many local random hops a repairer takes from a
// sampled entry point before choosing the edge to splice into (see
// pickEdge for why zero hops stratifies the graph by node age).
const spliceHops = 2

// Config parameterises an Overlay. The zero value is a working default:
// repair active whenever the engine is in SelfHealing mode, spectral
// telemetry off.
type Config struct {
	// SpectralEvery measures λ every k rounds (0 disables telemetry).
	// Measurement draws from a dedicated stream, so changing the cadence
	// never perturbs repair decisions.
	SpectralEvery int
	// SpectralIters is the power-iteration count per measurement
	// (default 40; ample for the 1e-2 resolution telemetry needs).
	SpectralIters int
	// GuardEvery runs the bipartiteness guard every k repair rounds
	// (default 16; the guard also runs once on activation).
	GuardEvery int
}

// Metrics counts overlay events since creation. All fields are scalars so
// snapshots stay comparable with == (the determinism tests rely on it).
type Metrics struct {
	PortsSevered int64 // dangling ports created by churn (2 per severed edge)
	Splices      int64 // port pairs healed through a sampled edge
	DirectPairs  int64 // port pairs healed by direct connection (no usable sample)
	StaleSamples int64 // samples skipped because their source had departed
	GuardChecks  int64 // bipartiteness checks run
	GuardFixes   int64 // bipartite graphs repaired (expected: 0, ~ever)

	SpectralRounds int64   // λ measurements taken
	Lambda         float64 // most recent λ estimate
	LambdaRound    int     // round of the most recent estimate (-1 = none)
	LambdaMax      float64 // largest estimate seen
	LambdaMaxRound int     // round of the largest estimate (-1 = none)
}

// Overlay is the repair-and-telemetry round hook. Register it on the
// engine *after* the walk soup (repair consumes the round's fresh
// samples, and its rewiring must not race the soup's adjacency snapshot).
type Overlay struct {
	cfg     Config
	n, d    int
	soup    *walks.Soup
	grid    shard.Grid
	workers int

	r        *rng.Stream   // pair shuffle (serial, one draw sequence per round)
	tele     *rng.Stream   // spectral probe vectors
	pairSeed uint64        // seeds the per-pair proposal streams
	prng     []*rng.Stream // per-shard scratch streams, reseeded per pair

	// active tracks whether the repair state (co, dang, ...) reflects the
	// current graph. It drops whenever an oracle mode owns the edges and
	// is rebuilt on the next SelfHealing round.
	active bool

	// co is the reciprocal-port table: for each port v·d+p with
	// adj[v·d+p] = w, co[v·d+p] is the port q of w with adj[w·d+q] = v
	// (and co[w·d+q] = p). It makes severing a churned slot's edges O(d)
	// and is maintained through every rewire; activation rebuilds it in
	// one pass over the graph.
	co []int32
	// dang marks dangling ports (bit v·d+p) during a repair round; bits
	// are cleared as ports heal, so the mask is empty between rounds.
	dang     []uint64
	dangList []uint32   // dangling ports of the current round, then shuffled
	churned  []int32    // sorted copy of the round's churned slots
	sevSegs  [][]uint32 // per-shard sever output, merged in shard order
	props    []proposal // per-pair splice proposals
	staleSeg []int64    // per-shard stale-sample tallies, merged serially

	color []int8  // bipartiteness guard scratch
	stack []int32 // bipartiteness guard scratch
	x, y  []float64

	repairRounds int64 // rounds in which repairs ran (guard cadence)
	m            Metrics
}

// proposal is one pair's splice target from the parallel propose phase:
// splice through port q of w, or connect the pair directly when w < 0.
type proposal struct{ w, q int32 }

// New creates an overlay for the engine and its walk soup. The caller
// must register it via e.AddHook *after* the soup hook.
func New(e *simnet.Engine, soup *walks.Soup, cfg Config) *Overlay {
	if cfg.SpectralIters <= 0 {
		cfg.SpectralIters = 40
	}
	if cfg.GuardEvery <= 0 {
		cfg.GuardEvery = 16
	}
	// The derivation tags share the ProtocolSeed namespace with per-node
	// streams (Derive(seed, id), ids assigned sequentially from 1); the
	// set top bit keeps them out of any reachable id range so no node's
	// randomness can ever be correlated with the repair streams.
	seed := e.Config().ProtocolSeed
	o := &Overlay{
		cfg:      cfg,
		n:        e.N(),
		d:        e.Degree(),
		soup:     soup,
		grid:     e.Grid(),
		workers:  e.Workers(),
		r:        rng.Derive(seed, 1<<63|0x0e71a),
		tele:     rng.Derive(seed, 1<<63|0x57ec7),
		pairSeed: rng.Hash(seed, 1<<63|0x9a17c),
		m:        Metrics{LambdaRound: -1, LambdaMaxRound: -1},
	}
	o.prng = make([]*rng.Stream, o.grid.Count())
	for i := range o.prng {
		o.prng[i] = rng.New(0) // reseeded per pair; the seed here is moot
	}
	o.sevSegs = make([][]uint32, o.grid.Count())
	o.staleSeg = make([]int64, o.grid.Count())
	if cfg.SpectralEvery > 0 {
		o.x = make([]float64, o.n)
		o.y = make([]float64, o.n)
	}
	// Bridge the overlay's counters into the telemetry registry. λ is a
	// float in [0,1]; it is exposed in micro-units (×1e6) since registry
	// values are integers.
	e.Telemetry().RegisterCollector(func(emit func(string, telemetry.Kind, int64)) {
		emit("dynp2p_overlay_ports_severed_total", telemetry.KindCounter, o.m.PortsSevered)
		emit("dynp2p_overlay_splices_total", telemetry.KindCounter, o.m.Splices)
		emit("dynp2p_overlay_direct_pairs_total", telemetry.KindCounter, o.m.DirectPairs)
		emit("dynp2p_overlay_stale_samples_total", telemetry.KindCounter, o.m.StaleSamples)
		emit("dynp2p_overlay_guard_checks_total", telemetry.KindCounter, o.m.GuardChecks)
		emit("dynp2p_overlay_guard_fixes_total", telemetry.KindCounter, o.m.GuardFixes)
		emit("dynp2p_overlay_spectral_rounds_total", telemetry.KindCounter, o.m.SpectralRounds)
		emit("dynp2p_overlay_lambda_e6", telemetry.KindGauge, int64(o.m.Lambda*1e6))
		emit("dynp2p_overlay_lambda_max_e6", telemetry.KindGauge, int64(o.m.LambdaMax*1e6))
	})
	return o
}

// Metrics returns a snapshot of the counters.
func (o *Overlay) Metrics() Metrics { return o.m }

// StepRound implements simnet.RoundHook: sever and repair when the engine
// is in SelfHealing mode, then take the round's spectral measurement if
// one is due. Runs serially; all randomness comes from the overlay's own
// derived streams, so the engine's worker-count independence holds.
func (o *Overlay) StepRound(e *simnet.Engine, round int) {
	g := e.Graph()
	if e.EdgeMode() == expander.SelfHealing {
		if !o.active {
			o.activate(g)
		}
		o.repair(e, g, round)
	} else {
		// An oracle owns the edges: our port bookkeeping goes stale the
		// moment it rewires, so rebuild on the next activation.
		o.active = false
	}
	if o.cfg.SpectralEvery > 0 && round%o.cfg.SpectralEvery == 0 {
		o.measure(g, round)
	}
}

// activate (re)builds the repair state from the current graph: the
// reciprocal-port table, the scratch buffers, and one guard pass (the
// inherited graph is only non-bipartite w.h.p.; after this the overlay
// maintains the property itself).
func (o *Overlay) activate(g *graph.Graph) {
	nd := o.n * o.d
	if o.co == nil {
		o.co = make([]int32, nd)
		o.dang = make([]uint64, (nd+63)/64)
		o.color = make([]int8, o.n)
		o.stack = make([]int32, 0, 64)
	}
	o.buildCoPorts(g)
	o.active = true
	o.guard(g)
}

// buildCoPorts fills the reciprocal-port table by matching, for each edge
// side, the first unmatched port on the other side that points back.
// O(n·d²) worst case; runs only on activation. Panics if the multigraph
// is not symmetric — such a graph cannot be self-healed (or walked).
func (o *Overlay) buildCoPorts(g *graph.Graph) {
	d := o.d
	adj := g.Adjacency()
	for i := range o.dang {
		o.dang[i] = 0 // reuse the dangling mask as the "matched" mask
	}
	for v := 0; v < o.n; v++ {
		for p := 0; p < d; p++ {
			vp := v*d + p
			if o.isDang(vp) {
				continue
			}
			w := int(adj[vp])
			found := false
			for q := 0; q < d; q++ {
				wq := w*d + q
				if wq == vp || o.isDang(wq) || int(adj[wq]) != v {
					continue
				}
				o.co[vp] = int32(q)
				o.co[wq] = int32(p)
				o.setDang(vp)
				o.setDang(wq)
				found = true
				break
			}
			if !found {
				panic(fmt.Sprintf("overlay: asymmetric multigraph at vertex %d port %d (-> %d)", v, p, w))
			}
		}
	}
	for i := range o.dang {
		o.dang[i] = 0
	}
}

func (o *Overlay) isDang(port int) bool {
	return o.dang[uint(port)>>6]>>(uint(port)&63)&1 != 0
}

func (o *Overlay) setDang(port int) {
	o.dang[uint(port)>>6] |= 1 << (uint(port) & 63)
}

func (o *Overlay) clearDang(port int) {
	o.dang[uint(port)>>6] &^= 1 << (uint(port) & 63)
}

// repair severs every edge incident to a slot churned this round and
// heals the resulting dangling ports pairwise through sampled edges.
// See the package comment for the three-phase parallel structure and why
// every phase is worker-count independent.
func (o *Overlay) repair(e *simnet.Engine, g *graph.Graph, round int) {
	batch := e.ChurnedThisRound()
	if len(batch) == 0 {
		return
	}
	d := o.d
	adj := g.Adjacency()

	o.churned = o.churned[:0]
	for _, s := range batch {
		o.churned = append(o.churned, int32(s))
	}
	slices.Sort(o.churned)

	// Phase 1 — sever (parallel, read-only). Each shard walks the churned
	// slots in its slot range and emits each severed edge's two port sides
	// exactly once: the churned side emits, and when both endpoints
	// churned, the lower-indexed port does (a degenerate one-port
	// self-loop stays wired — the newcomer inherits it, degree intact).
	o.grid.Run(o.workers, func(sh int) {
		lo, hi := o.grid.Bounds(sh, o.n)
		seg := o.sevSegs[sh][:0]
		i := sort.Search(len(o.churned), func(i int) bool { return int(o.churned[i]) >= lo })
		for ; i < len(o.churned) && int(o.churned[i]) < hi; i++ {
			base := int(o.churned[i]) * d
			for p := 0; p < d; p++ {
				vp := base + p
				wp := int(adj[vp])*d + int(o.co[vp])
				if wp != vp && !(e.ReplacedInRound(int(adj[vp]), round) && wp < vp) {
					seg = append(seg, uint32(vp), uint32(wp))
				}
			}
		}
		o.sevSegs[sh] = seg
	})
	// Fixed-order merge: shard ranges are contiguous and ascending, so
	// concatenating segments in shard index order rebuilds the canonical
	// slot-ordered dangling pool the serial sever produced.
	o.dangList = o.dangList[:0]
	for sh := range o.sevSegs {
		for _, port := range o.sevSegs[sh] {
			o.setDang(int(port))
			o.dangList = append(o.dangList, port)
		}
	}
	o.m.PortsSevered += int64(len(o.dangList))
	if len(o.dangList)%2 != 0 {
		panic("overlay: odd dangling-port count (severing is broken)")
	}

	// Shuffle the dangling ports (a node finds its repair partner by a
	// random rendezvous, not by adjacency order — this is what keeps a
	// dead node's neighborhood from collapsing into a clique), then pair
	// consecutive entries.
	for i := len(o.dangList) - 1; i > 0; i-- {
		j := o.r.Intn(i + 1)
		o.dangList[i], o.dangList[j] = o.dangList[j], o.dangList[i]
	}

	// Phase 2 — propose (parallel, frozen adjacency). Each pair's splice
	// target is a pure function of (seed, round, pair index) and the
	// post-sever graph, evaluated by whichever shard owns the pair range.
	pairs := len(o.dangList) / 2
	if cap(o.props) < pairs {
		o.props = make([]proposal, pairs, max(pairs, 2*cap(o.props)))
	} else {
		o.props = o.props[:pairs]
	}
	roundSeed := rng.Hash(o.pairSeed, uint64(round))
	nsh := o.grid.Count()
	o.grid.Run(o.workers, func(sh int) {
		pr := o.prng[sh]
		var stale int64
		for i := pairs * sh / nsh; i < pairs*(sh+1)/nsh; i++ {
			pr.ReseedDerived(roundSeed, uint64(i))
			a, b := int(o.dangList[2*i]), int(o.dangList[2*i+1])
			w, q, st := o.pickEdge(e, adj, a/d, b/d, pr)
			o.props[i] = proposal{w: int32(w), q: int32(q)}
			stale += st
		}
		o.staleSeg[sh] = stale
	})
	for sh := range o.staleSeg {
		o.m.StaleSamples += o.staleSeg[sh]
		o.staleSeg[sh] = 0
	}

	// Phase 3 — apply (serial, pair order).
	for i := 0; i < pairs; i++ {
		o.heal(g, adj, int(o.dangList[2*i]), int(o.dangList[2*i+1]), o.props[i])
	}

	o.repairRounds++
	if o.repairRounds%int64(o.cfg.GuardEvery) == 0 {
		o.guard(g)
	}
}

// heal fills dangling ports a and b per the pair's proposal. Preferred:
// splice both through the proposed live edge (w,x), replacing it with
// (ua,w) and (ub,x) — the edge is read as it stands NOW, so earlier heals
// may have rotated x since the propose phase, which is fine: the splice
// is degree-exact against any live edge, and proposals only avoid
// dangling ports, which heals never create. Fallback (w < 0): connect a
// and b directly. Both update the reciprocal-port table in place.
func (o *Overlay) heal(g *graph.Graph, adj []int32, a, b int, pick proposal) {
	d := o.d
	ua, pa := a/d, a%d
	ub, pb := b/d, b%d
	w, q := int(pick.w), int(pick.q)
	if w < 0 {
		g.SetPort(ua, pa, int32(ub))
		g.SetPort(ub, pb, int32(ua))
		o.co[a] = int32(pb)
		o.co[b] = int32(pa)
		o.clearDang(a)
		o.clearDang(b)
		o.m.DirectPairs++
		return
	}
	wp := w*d + q
	x, xq := int(adj[wp]), int(o.co[wp])
	xp := x*d + xq
	g.SetPort(ua, pa, int32(w))
	g.SetPort(w, q, int32(ua))
	o.co[a] = int32(q)
	o.co[wp] = int32(pa)
	g.SetPort(ub, pb, int32(x))
	g.SetPort(x, xq, int32(ub))
	o.co[b] = int32(xq)
	o.co[xp] = int32(pb)
	o.clearDang(a)
	o.clearDang(b)
	o.m.Splices++
}

// pickEdge returns a live edge (w, port q of w) to splice through, drawn
// from the walk samples delivered this round to the two repairing slots —
// exactly the information those nodes hold. A usable sample's source is
// necessarily old (it had to survive one walk length) and still alive,
// so splicing at the sampled node itself would stratify the graph by age:
// under paper-rate churn half the network would never be a splice target
// and λ drifts up. The repairer therefore uses the sample only as an
// entry point and takes spliceHops local random hops from it — two extra
// messages in a real network — landing on an age-mixed node before
// choosing the edge. All randomness comes from pr, the pair's private
// stream, and all graph reads see the frozen post-sever adjacency, so
// the choice is a pure per-pair function (the propose phase runs it from
// any worker). Returns w = -1 when no candidate works (no samples yet,
// every sampled source departed, or every port of the landing node is
// itself dangling), plus the number of stale samples skipped.
func (o *Overlay) pickEdge(e *simnet.Engine, adj []int32, ua, ub int, pr *rng.Stream) (int, int, int64) {
	d := o.d
	tried := 0
	var stale int64
	for _, src := range [2]int{ua, ub} {
		smp := o.soup.Samples(src)
		if len(smp) == 0 {
			continue
		}
		// Start at a random sample so one busy round spreads its splices
		// over the whole sample set.
		start := pr.Intn(len(smp))
		for k := 0; k < len(smp) && tried < maxSampleTries; k++ {
			sm := smp[(start+k)%len(smp)]
			tried++
			w, ok := e.SlotOf(sm.Src)
			if !ok {
				stale++
				continue
			}
			// Hop only over live (non-dangling) ports: a severed link is
			// exactly the kind a real node could no longer route a probe
			// through. If every port of an intermediate is dangling the
			// probe stays put for that hop.
			for hop := 0; hop < spliceHops; hop++ {
				h0 := pr.Intn(d)
				for j := 0; j < d; j++ {
					p := h0 + j
					if p >= d {
						p -= d
					}
					if !o.isDang(w*d + p) {
						w = int(adj[w*d+p])
						break
					}
				}
			}
			r0 := pr.Intn(d)
			for j := 0; j < d; j++ {
				q := r0 + j
				if q >= d {
					q -= d
				}
				if !o.isDang(w*d + q) {
					return w, q, stale
				}
			}
		}
	}
	return -1, -1, stale
}

// guard checks bipartiteness with preallocated scratch and, in the
// vanishing-probability bipartite case, restores an odd cycle by turning
// two ports of vertex 0 into a self-loop and bridging their old
// endpoints — degree-exact, one rewire.
func (o *Overlay) guard(g *graph.Graph) {
	o.m.GuardChecks++
	if !o.bipartite(g) {
		return
	}
	o.m.GuardFixes++
	d := o.d
	adj := g.Adjacency()
	// A bipartite graph has no self-loops, so both endpoints differ from
	// vertex 0 and the rewire below is well-defined.
	b, q0 := int(adj[0]), int(o.co[0])
	c, q1 := int(adj[1]), int(o.co[1])
	g.SetPort(0, 0, 0)
	g.SetPort(0, 1, 0)
	o.co[0], o.co[1] = 1, 0
	g.SetPort(b, q0, int32(c))
	o.co[b*d+q0] = int32(q1)
	g.SetPort(c, q1, int32(b))
	o.co[c*d+q1] = int32(q0)
}

// bipartite reports whether g admits a proper 2-coloring, using the
// overlay's reusable color and stack buffers (graph.IsBipartite allocates;
// this runs on a per-round cadence and must not).
func (o *Overlay) bipartite(g *graph.Graph) bool {
	for i := range o.color {
		o.color[i] = 0
	}
	st := o.stack[:0]
	defer func() { o.stack = st[:0] }()
	for s := 0; s < o.n; s++ {
		if o.color[s] != 0 {
			continue
		}
		o.color[s] = 1
		st = append(st, int32(s))
		for len(st) > 0 {
			v := st[len(st)-1]
			st = st[:len(st)-1]
			for _, w := range g.Neighbors(int(v)) {
				if w == v {
					return false // self-loop: odd cycle of length 1
				}
				switch o.color[w] {
				case 0:
					o.color[w] = 3 - o.color[v]
					st = append(st, w)
				case o.color[v]:
					return false
				}
			}
		}
	}
	return true
}

// measure records one spectral-gap estimate.
func (o *Overlay) measure(g *graph.Graph, round int) {
	l := g.SpectralGapEstimateScratch(o.tele, o.cfg.SpectralIters, o.x, o.y)
	o.m.SpectralRounds++
	o.m.Lambda = l
	o.m.LambdaRound = round
	if l > o.m.LambdaMax || o.m.LambdaMaxRound < 0 {
		o.m.LambdaMax = l
		o.m.LambdaMaxRound = round
	}
}

// CheckInvariants verifies the overlay's structural invariants against
// the graph: the reciprocal-port table is a consistent involution and no
// port is left dangling between rounds. Test and experiment support; not
// called on the hot path.
func (o *Overlay) CheckInvariants(g *graph.Graph) error {
	if !o.active {
		return nil
	}
	d := o.d
	adj := g.Adjacency()
	for v := 0; v < o.n; v++ {
		for p := 0; p < d; p++ {
			vp := v*d + p
			if o.isDang(vp) {
				return fmt.Errorf("overlay: port %d/%d dangling between rounds", v, p)
			}
			w, q := int(adj[vp]), int(o.co[vp])
			if w < 0 || w >= o.n || q < 0 || q >= d {
				return fmt.Errorf("overlay: port %d/%d has invalid co-port (%d, %d)", v, p, w, q)
			}
			if int(adj[w*d+q]) != v || int(o.co[w*d+q]) != p {
				return fmt.Errorf("overlay: ports %d/%d and %d/%d are not reciprocal", v, p, w, q)
			}
		}
	}
	return nil
}
