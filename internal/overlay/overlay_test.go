package overlay

import (
	"testing"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/rng"
	"dynp2p/internal/simnet"
	"dynp2p/internal/walks"
)

// rig is a minimal engine+soup+overlay stack for hook-level tests.
type rig struct {
	e    *simnet.Engine
	soup *walks.Soup
	ov   *Overlay
}

func newRig(t *testing.T, n int, mode expander.EdgeMode, law churn.Law, strat churn.Strategy, cfg Config) *rig {
	t.Helper()
	e := simnet.New(simnet.Config{
		N: n, Degree: 8, EdgeMode: mode,
		AdversarySeed: 11, ProtocolSeed: 12,
		Strategy: strat, Law: law,
	})
	p := walks.DefaultParams(n)
	soup := walks.NewSoup(e, p, 0)
	e.AddHook(soup)
	ov := New(e, soup, cfg)
	e.AddHook(ov)
	return &rig{e: e, soup: soup, ov: ov}
}

func (r *rig) run(t *testing.T, rounds int, checkEvery int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		r.e.RunRound(simnet.NopHandler{})
		if checkEvery > 0 && r.e.Round()%checkEvery == 0 {
			if err := r.ov.CheckInvariants(r.e.Graph()); err != nil {
				t.Fatalf("round %d: %v", r.e.Round(), err)
			}
			if err := r.e.Graph().CheckRegular(); err != nil {
				t.Fatalf("round %d: %v", r.e.Round(), err)
			}
		}
	}
}

// TestRepairPreservesRegularity drives heavy churn through the repair
// path and checks, every round, that the multigraph stays d-regular and
// the reciprocal-port table stays a consistent involution.
func TestRepairPreservesRegularity(t *testing.T) {
	r := newRig(t, 512, expander.SelfHealing, churn.FixedLaw{Count: 24}, churn.Uniform, Config{})
	r.run(t, 80, 1)
	m := r.ov.Metrics()
	if m.PortsSevered == 0 || m.Splices+m.DirectPairs == 0 {
		t.Fatalf("no repairs ran: %+v", m)
	}
	if 2*(m.Splices+m.DirectPairs) != m.PortsSevered {
		t.Fatalf("severed ports %d not fully healed (%d splices, %d direct)",
			m.PortsSevered, m.Splices, m.DirectPairs)
	}
	if m.Splices == 0 {
		t.Fatal("expected at least some sample-driven splices after soup mixing")
	}
	if r.e.Graph().IsBipartite() {
		t.Fatal("repaired topology became bipartite")
	}
	if !r.e.Graph().IsConnected() {
		t.Fatal("repaired topology disconnected")
	}
}

// TestRepairUnderEveryStrategy exercises correlated churn shapes —
// bursts, sweeps over contiguous slot blocks, age-targeted attacks — that
// make many incident edges dangle at once (including churned-churned
// edges, the double-sever path).
func TestRepairUnderEveryStrategy(t *testing.T) {
	laws := []churn.Law{
		churn.BurstLaw{Period: 10, Width: 2, Count: 64},
		churn.FixedLaw{Count: 48},
	}
	strategies := []churn.Strategy{churn.Uniform, churn.OldestFirst, churn.YoungestFirst, churn.SweepBurst}
	for _, law := range laws {
		for _, strat := range strategies {
			r := newRig(t, 256, expander.SelfHealing, law, strat, Config{})
			r.run(t, 60, 1)
			if r.e.Graph().IsBipartite() {
				t.Fatalf("%v/%v: bipartite after repairs", law, strat)
			}
		}
	}
}

// TestRepairSurvivesColdStart churns hard from round 1, before any walk
// has completed: every heal must fall back to direct pairing without
// violating regularity, and splices must take over once samples exist.
func TestRepairSurvivesColdStart(t *testing.T) {
	r := newRig(t, 256, expander.SelfHealing, churn.FixedLaw{Count: 32}, churn.Uniform, Config{})
	walkLen := r.soup.Params().WalkLength
	r.run(t, walkLen-2, 1)
	m := r.ov.Metrics()
	if m.Splices != 0 {
		t.Fatalf("splices before any walk completed: %+v", m)
	}
	if m.DirectPairs == 0 {
		t.Fatal("no direct-pair fallbacks during cold start")
	}
	r.run(t, 40, 1)
	if m = r.ov.Metrics(); m.Splices == 0 {
		t.Fatal("no splices after the soup warmed up")
	}
}

// TestSelfHealingDeterminism: same seeds, same run — adjacency and
// metrics must match exactly.
func TestSelfHealingDeterminism(t *testing.T) {
	final := func() ([]int32, Metrics) {
		r := newRig(t, 256, expander.SelfHealing, churn.FixedLaw{Count: 16}, churn.Uniform,
			Config{SpectralEvery: 7})
		r.run(t, 50, 0)
		adj := append([]int32(nil), r.e.Graph().Adjacency()...)
		return adj, r.ov.Metrics()
	}
	adjA, mA := final()
	adjB, mB := final()
	if mA != mB {
		t.Fatalf("metrics differ:\n%+v\n%+v", mA, mB)
	}
	for i := range adjA {
		if adjA[i] != adjB[i] {
			t.Fatalf("adjacency differs at port %d", i)
		}
	}
}

// TestModeSwitchRebuilds flips between oracle and self-healing modes
// mid-run: activation must rebuild the port table from whatever graph the
// oracle left, and repairs must stay sound afterwards.
func TestModeSwitchRebuilds(t *testing.T) {
	r := newRig(t, 256, expander.Rerandomize, churn.FixedLaw{Count: 16}, churn.Uniform, Config{})
	r.run(t, 10, 0)
	if m := r.ov.Metrics(); m.PortsSevered != 0 {
		t.Fatalf("overlay repaired under an oracle mode: %+v", m)
	}
	r.e.SetEdgeMode(expander.SelfHealing, 0)
	r.run(t, 30, 1)
	if m := r.ov.Metrics(); m.PortsSevered == 0 {
		t.Fatal("no repairs after switching to self-healing")
	}
	r.e.SetEdgeMode(expander.Rerandomize, 0)
	r.run(t, 5, 0)
	severed := r.ov.Metrics().PortsSevered
	r.e.SetEdgeMode(expander.SelfHealing, 0)
	r.run(t, 30, 1)
	if m := r.ov.Metrics(); m.PortsSevered == severed {
		t.Fatal("no repairs after re-activation")
	}
}

// TestGuardFixesBipartite hand-builds a bipartite topology (an even
// cycle on ports 0/1 plus matched parallel edges elsewhere) and checks
// the guard detects it and restores an odd cycle without breaking
// regularity or the port table.
func TestGuardFixesBipartite(t *testing.T) {
	r := newRig(t, 64, expander.SelfHealing, churn.ZeroLaw{}, churn.Uniform, Config{})
	r.run(t, 1, 0) // activates the overlay on the oracle's round-0 graph
	g := r.e.Graph()
	n, d := g.N(), g.Degree()
	// Even ring on ports 0/1; ports 2k/2k+1 pair v with v^1 (even-side
	// partner), keeping everything bipartite with parts (even, odd).
	for v := 0; v < n; v++ {
		g.SetPort(v, 0, int32((v+1)%n))
		g.SetPort(v, 1, int32((v-1+n)%n))
		for k := 1; k < d/2; k++ {
			g.SetPort(v, 2*k, int32(v^1))
			g.SetPort(v, 2*k+1, int32(v^1))
		}
	}
	r.ov.buildCoPorts(g)
	if !g.IsBipartite() {
		t.Fatal("test graph should be bipartite")
	}
	checks, fixes := r.ov.m.GuardChecks, r.ov.m.GuardFixes
	r.ov.guard(g)
	if r.ov.m.GuardChecks != checks+1 || r.ov.m.GuardFixes != fixes+1 {
		t.Fatalf("guard did not fix: %+v", r.ov.Metrics())
	}
	if g.IsBipartite() {
		t.Fatal("graph still bipartite after guard fix")
	}
	if err := g.CheckRegular(); err != nil {
		t.Fatal(err)
	}
	if err := r.ov.CheckInvariants(g); err != nil {
		t.Fatal(err)
	}
}

// TestSpectralTelemetry checks the measurement cadence, bounds, and that
// telemetry works under oracle modes too (it is mode-independent).
func TestSpectralTelemetry(t *testing.T) {
	for _, mode := range []expander.EdgeMode{expander.SelfHealing, expander.Rerandomize} {
		r := newRig(t, 256, mode, churn.FixedLaw{Count: 8}, churn.Uniform,
			Config{SpectralEvery: 3})
		r.run(t, 31, 0)
		m := r.ov.Metrics()
		// Rounds 0, 3, ..., 30 → 11 measurements.
		if m.SpectralRounds != 11 {
			t.Fatalf("%v: got %d spectral rounds, want 11", mode, m.SpectralRounds)
		}
		if m.Lambda <= 0 || m.Lambda >= 1 || m.LambdaMax >= 1 {
			t.Fatalf("%v: implausible lambda: %+v", mode, m)
		}
		if m.LambdaRound != 30 || m.LambdaMaxRound < 0 {
			t.Fatalf("%v: bad measurement rounds: %+v", mode, m)
		}
		if m.LambdaMax > 0.9 {
			t.Fatalf("%v: not an expander: λmax=%v", mode, m.LambdaMax)
		}
	}
}

// TestSpectralScratchMatchesAllocating pins the scratch refactor: same
// stream, same estimate as the allocating wrapper.
func TestSpectralScratchMatchesAllocating(t *testing.T) {
	r := newRig(t, 128, expander.Static, churn.ZeroLaw{}, churn.Uniform, Config{})
	g := r.e.Graph()
	a := g.SpectralGapEstimate(rng.New(9), 40)
	x, y := make([]float64, g.N()), make([]float64, g.N())
	b := g.SpectralGapEstimateScratch(rng.New(9), 40, x, y)
	if a != b {
		t.Fatalf("scratch estimate %v != allocating estimate %v", b, a)
	}
}
