// Package route is the overlay forwarding subsystem: protocol messages
// travel edge-by-edge over the live expander topology instead of
// teleporting to their addressee (DESIGN.md §11).
//
// Every routed message carries a compact Header — remaining walk budget
// (TTL), hop count, and a target node id or item key — and is walked by
// the Router as a token: at each step the current slot forwards it along
// a seeded random out-port, except that a neighbor that *is* the target
// (or, for keyed walks, any slot/neighbor currently holding the key) ends
// the walk immediately. Each slot has a per-round link-capacity budget;
// a message arriving at a slot whose capacity is spent parks in that
// slot's bounded FIFO queue and resumes next round, so congestion shows
// up as real queueing delay, and queue depth, link load, and drops are
// first-class metrics.
//
// Determinism: the router runs in one serial engine phase. Walkers are
// processed in a fixed order — parked walkers oldest first, then fresh
// transit in the engine's canonical (send round, source slot, sequence)
// order — and each hop's port is a pure hash of (message seed, hop
// index). Nothing depends on worker count or scheduling, so every metric
// the router reports is bit-identical at any Workers value.
//
// The Router is generic in the message type so the package does not
// import the engine; simnet instantiates Router[simnet.Msg] and supplies
// the environment callbacks (adjacency, id→slot resolution, key-holder
// lookup, delivery).
package route

import (
	"dynp2p/internal/graph"
	"dynp2p/internal/rng"
	"dynp2p/internal/telemetry"
)

// DefaultQueueLimit bounds each slot's parked-walker FIFO when
// Params.QueueLimit is 0.
const DefaultQueueLimit = 64

// AutoBudget returns the default walk budget for an n-slot, degree-d
// topology: 4× the expected hit time of a random walk with neighbor
// early-exit (≈ n/(d+1)), so an id-addressed walk misses its target with
// probability ≈ e⁻⁴, floored at 64 for small networks.
func AutoBudget(n, d int) int {
	b := 4 * n / (d + 1)
	if b < 64 {
		b = 64
	}
	return b
}

// DropReason classifies why the router discarded a message.
type DropReason uint8

const (
	// DropBudget: the walk budget (TTL) ran out before reaching a target.
	DropBudget DropReason = iota
	// DropQueueFull: the message arrived at a capacity-exhausted slot
	// whose FIFO queue was already at its bound.
	DropQueueFull
	// DropChurn: the slot holding a parked message was churned out; the
	// queue dies with its node.
	DropChurn
	// DropDead: the id-addressed target departed before the walk began or
	// resumed, so no reachable destination exists.
	DropDead
)

// String returns the reason's metric/trace label.
func (r DropReason) String() string {
	switch r {
	case DropBudget:
		return "budget"
	case DropQueueFull:
		return "queue-full"
	case DropChurn:
		return "churn"
	case DropDead:
		return "dead-target"
	}
	return "unknown"
}

// Params configures a Router.
type Params struct {
	// Budget is the maximum forwards per message (the walk TTL).
	// Required > 0; engines default it with AutoBudget.
	Budget int
	// LinkCapacity bounds forwards out of one slot per round; a message
	// arriving at a spent slot parks in its queue. 0 = unlimited.
	LinkCapacity int
	// QueueLimit bounds parked walkers per slot; arrivals beyond it are
	// dropped (DropQueueFull). 0 = DefaultQueueLimit.
	QueueLimit int
	// Seed salts per-message walk seeds (derive from the protocol seed).
	Seed uint64
}

// Header is the compact routing header each routed message carries.
type Header struct {
	Target uint64 // destination node id (0 = none: keyed walks only)
	Key    uint64 // item key for keyed (holder-seeking) walks
	Keyed  bool   // terminate early at any slot currently holding Key
	Budget int32  // remaining forwards; 0 at Send = router's Params.Budget
	Hops   int32  // forwards taken so far
	Seed   uint64 // per-message walk seed (hash of the message identity)
}

// walker is one in-flight routed message: its header, the slot currently
// holding it, and the payload.
type walker[M any] struct {
	h  Header
	at int32
	m  M
}

// Env supplies the engine-side environment. All callbacks are invoked
// only from the serial routed-delivery phase.
type Env[M any] struct {
	// Graph returns the round's live adjacency (post-repair under
	// self-healing, post-rewire under the oracle modes).
	Graph func() *graph.Graph
	// SlotOf resolves a live node id to its slot; ok=false once departed.
	SlotOf func(id uint64) (int32, bool)
	// Holder reports whether slot currently holds key (cache entry,
	// storage landmark, or committee copy). nil = no holder early-exit.
	Holder func(slot int32, key uint64) bool
	// Deliver hands a message that reached slot to the engine, with the
	// number of forwards it took.
	Deliver func(slot int32, m *M, hops int32)
	// OnDrop observes every discarded message (accounting + tracing).
	// May be nil.
	OnDrop func(m *M, h *Header, reason DropReason)
	// OnHop observes every forward as a (from, to) slot edge — the
	// edge-conformance test hook. May be nil (the production case).
	OnHop func(from, to int32)
}

// metrics is the router's registry surface. The routed phase is serial,
// so every update goes to shard 0.
type metrics struct {
	sent       telemetry.Counter
	delivered  telemetry.Counter
	forwards   telemetry.Counter
	parked     telemetry.Counter
	dropBudget telemetry.Counter
	dropQueue  telemetry.Counter
	dropChurn  telemetry.Counter
	dropDead   telemetry.Counter
	hops       telemetry.Histogram
	queueDepth telemetry.Histogram
	maxLink    telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) metrics {
	return metrics{
		sent:       reg.Counter("dynp2p_route_sent_total", "messages handed to the overlay router"),
		delivered:  reg.Counter("dynp2p_route_delivered_total", "routed messages that reached a target"),
		forwards:   reg.Counter("dynp2p_route_forwards_total", "per-edge forwards performed by the router"),
		parked:     reg.Counter("dynp2p_route_queued_total", "walkers parked at capacity-exhausted slots"),
		dropBudget: reg.Counter("dynp2p_route_dropped_budget_total", "routed messages dropped after exhausting their walk budget"),
		dropQueue:  reg.Counter("dynp2p_route_dropped_queuefull_total", "routed messages dropped at a full slot queue"),
		dropChurn:  reg.Counter("dynp2p_route_dropped_churn_total", "queued routed messages lost when their slot churned"),
		dropDead:   reg.Counter("dynp2p_route_dropped_dead_total", "routed messages whose id-addressed target departed"),
		hops:       reg.Histogram("dynp2p_route_hops", "forwards per delivered routed message"),
		queueDepth: reg.Histogram("dynp2p_route_queue_depth", "slot queue depth observed at each parking event"),
		maxLink:    reg.Gauge("dynp2p_route_max_link_load", "largest per-slot forward count in any single round"),
	}
}

// Metrics is a merged snapshot of the router's counters.
type Metrics struct {
	Sent             int64
	Delivered        int64
	Forwards         int64
	Parked           int64
	DroppedBudget    int64
	DroppedQueueFull int64
	DroppedChurn     int64
	DroppedDead      int64
	MaxLinkLoad      int64
}

// Router walks in-flight messages over the topology, one serial phase per
// round. Create with New, feed with Send, advance with Step.
type Router[M any] struct {
	p   Params
	n   int
	env Env[M]

	transit []walker[M] // fresh sends, walking next Step from their origin
	queued  []walker[M] // parked walkers in processing (FIFO) order
	next    []walker[M] // next round's queued, built during Step

	fwd  []int32 // per-slot forwards this round
	qlen []int32 // per-slot parked-walker count
	mark []uint8 // churn scratch for DropQueuedAt

	m metrics
}

// New builds a router over n slots, registering its metrics on reg.
func New[M any](reg *telemetry.Registry, n int, p Params) *Router[M] {
	if p.Budget <= 0 {
		panic("route: Params.Budget must be > 0")
	}
	if p.QueueLimit <= 0 {
		p.QueueLimit = DefaultQueueLimit
	}
	return &Router[M]{
		p:    p,
		n:    n,
		fwd:  make([]int32, n),
		qlen: make([]int32, n),
		mark: make([]uint8, n),
		m:    newMetrics(reg),
	}
}

// SetEnv installs the engine callbacks. Call before the first Step.
func (r *Router[M]) SetEnv(env Env[M]) { r.env = env }

// Params returns the router's configuration.
func (r *Router[M]) Params() Params { return r.p }

// Send hands a message to the router at slot `at` (its origin). The walk
// starts during the next Step. h.Budget 0 takes the router's default.
// Callers must invoke Send in canonical message order (the engine's
// serial exchange merge does).
func (r *Router[M]) Send(m M, h Header, at int32) {
	if h.Budget <= 0 {
		h.Budget = int32(r.p.Budget)
	}
	r.m.sent.Inc(0)
	r.transit = append(r.transit, walker[M]{h: h, at: at, m: m})
}

// InFlight returns the number of messages the router currently holds
// (parked plus transit).
func (r *Router[M]) InFlight() int { return len(r.queued) + len(r.transit) }

// QueuedAt returns the number of walkers parked at slot s.
func (r *Router[M]) QueuedAt(s int) int { return int(r.qlen[s]) }

// Metrics returns a merged snapshot of the router's counters.
func (r *Router[M]) Metrics() Metrics {
	return Metrics{
		Sent:             r.m.sent.Value(),
		Delivered:        r.m.delivered.Value(),
		Forwards:         r.m.forwards.Value(),
		Parked:           r.m.parked.Value(),
		DroppedBudget:    r.m.dropBudget.Value(),
		DroppedQueueFull: r.m.dropQueue.Value(),
		DroppedChurn:     r.m.dropChurn.Value(),
		DroppedDead:      r.m.dropDead.Value(),
		MaxLinkLoad:      r.m.maxLink.Value(),
	}
}

// DropQueuedAt discards every parked walker whose slot appears in slots
// (the round's churned set): a node's queue dies with it. Each casualty
// is counted (DropChurn) and reported through OnDrop so it is never
// silently lost. Transit messages are not affected: their transmission
// already left the sender.
func (r *Router[M]) DropQueuedAt(slots []int) {
	if len(r.queued) == 0 || len(slots) == 0 {
		return
	}
	for _, s := range slots {
		r.mark[s] = 1
	}
	kept := r.queued[:0]
	for i := range r.queued {
		w := &r.queued[i]
		if r.mark[w.at] != 0 {
			r.qlen[w.at]--
			r.drop(w, DropChurn)
			continue
		}
		kept = append(kept, *w)
	}
	r.queued = kept
	for _, s := range slots {
		r.mark[s] = 0
	}
}

// Flush discards every in-flight message (parked and transit), counting
// each as a churn drop. Engines call it when routing is switched off
// mid-run, the same discipline SetFault applies to delayed messages.
func (r *Router[M]) Flush() {
	for i := range r.queued {
		r.qlen[r.queued[i].at]--
		r.drop(&r.queued[i], DropChurn)
	}
	for i := range r.transit {
		r.drop(&r.transit[i], DropChurn)
	}
	r.queued = r.queued[:0]
	r.transit = r.transit[:0]
}

// Step runs one routed-delivery phase: parked walkers resume (oldest
// first), then fresh transit walks in arrival order. Each walker forwards
// until it delivers, drops, or parks at a capacity-exhausted slot. Must
// run serially, after the round's topology/repair and before handlers.
func (r *Router[M]) Step() {
	if len(r.queued) == 0 && len(r.transit) == 0 {
		r.m.maxLink.SetMax(0)
		return
	}
	g := r.env.Graph()
	for i := range r.fwd {
		r.fwd[i] = 0
	}
	// Parked walkers leave their queues as they are picked up; qlen is
	// rebuilt by the parking events of this Step.
	for i := range r.qlen {
		r.qlen[i] = 0
	}
	r.next = r.next[:0]
	for i := range r.queued {
		r.walk(&r.queued[i], g)
	}
	for i := range r.transit {
		r.walk(&r.transit[i], g)
	}
	r.queued, r.next = r.next, r.queued[:0]
	r.transit = r.transit[:0]
	var maxLink int32
	for _, f := range r.fwd {
		if f > maxLink {
			maxLink = f
		}
	}
	r.m.maxLink.SetMax(int64(maxLink))
}

// walk advances one message until it delivers, drops, or parks.
func (r *Router[M]) walk(w *walker[M], g *graph.Graph) {
	// Resolve the id-addressed target once per round: churn cannot move
	// it mid-phase. A departed target ends a pure id walk immediately —
	// the same failure mode (and drop timing) as oracle routing — while a
	// keyed walk keeps going: any live holder can still answer.
	tslot := int32(-1)
	if w.h.Target != 0 {
		if s, ok := r.env.SlotOf(w.h.Target); ok {
			tslot = s
		} else if !w.h.Keyed {
			r.drop(w, DropDead)
			return
		}
	}
	cap32 := int32(r.p.LinkCapacity)
	for {
		s := w.at
		if s == tslot {
			r.deliver(w, s)
			return
		}
		if w.h.Keyed && r.env.Holder != nil && r.env.Holder(s, w.h.Key) {
			r.deliver(w, s)
			return
		}
		if w.h.Budget <= 0 {
			r.drop(w, DropBudget)
			return
		}
		if cap32 > 0 && r.fwd[s] >= cap32 {
			r.park(w, s)
			return
		}
		nbrs := g.Neighbors(int(s))
		next := int32(-1)
		for _, nb := range nbrs {
			if nb == tslot {
				next = nb
				break
			}
			if w.h.Keyed && next < 0 && r.env.Holder != nil && r.env.Holder(nb, w.h.Key) {
				next = nb // keep scanning: the exact target still wins
			}
		}
		if next < 0 {
			next = nbrs[rng.Hash(w.h.Seed, uint64(w.h.Hops))%uint64(len(nbrs))]
		}
		r.fwd[s]++
		w.h.Budget--
		w.h.Hops++
		r.m.forwards.Inc(0)
		if r.env.OnHop != nil {
			r.env.OnHop(s, next)
		}
		w.at = next
	}
}

// park stores w in slot s's FIFO queue, or drops it when the queue is at
// its bound.
func (r *Router[M]) park(w *walker[M], s int32) {
	if int(r.qlen[s]) >= r.p.QueueLimit {
		r.drop(w, DropQueueFull)
		return
	}
	r.qlen[s]++
	w.at = s
	r.m.parked.Inc(0)
	r.m.queueDepth.Observe(0, int64(r.qlen[s]))
	r.next = append(r.next, *w)
}

func (r *Router[M]) deliver(w *walker[M], s int32) {
	r.m.delivered.Inc(0)
	r.m.hops.Observe(0, int64(w.h.Hops))
	r.env.Deliver(s, &w.m, w.h.Hops)
}

func (r *Router[M]) drop(w *walker[M], reason DropReason) {
	switch reason {
	case DropBudget:
		r.m.dropBudget.Inc(0)
	case DropQueueFull:
		r.m.dropQueue.Inc(0)
	case DropChurn:
		r.m.dropChurn.Inc(0)
	case DropDead:
		r.m.dropDead.Inc(0)
	}
	if r.env.OnDrop != nil {
		r.env.OnDrop(&w.m, &w.h, reason)
	}
}
