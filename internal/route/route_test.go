package route

import (
	"testing"

	"dynp2p/internal/graph"
	"dynp2p/internal/telemetry"
)

// testMsg is the payload type used by the unit tests; the router is
// generic and never inspects it.
type testMsg struct{ id int }

// harness wires a Router[testMsg] over a hand-built directed-cycle graph
// (both ports of slot v point at v+1 mod n), so every walk's path is a
// deterministic corridor and hop counts are exact.
type harness struct {
	g         *graph.Graph
	r         *Router[testMsg]
	delivered []delivery
	drops     []droppedMsg
	holders   map[int32]uint64 // slot -> held key
	dead      map[uint64]bool  // ids SlotOf refuses to resolve
}

type delivery struct {
	slot int32
	id   int
	hops int32
}

type droppedMsg struct {
	id     int
	reason DropReason
}

// ids are slot+1 so that id 0 keeps its "no target" meaning.
func newHarness(t *testing.T, n int, p Params) *harness {
	t.Helper()
	g := graph.New(n, 2)
	for v := 0; v < n; v++ {
		g.SetPort(v, 0, int32((v+1)%n))
		g.SetPort(v, 1, int32((v+1)%n))
	}
	h := &harness{
		g:       g,
		holders: map[int32]uint64{},
		dead:    map[uint64]bool{},
	}
	h.r = New[testMsg](telemetry.NewRegistry(), n, p)
	h.r.SetEnv(Env[testMsg]{
		Graph: func() *graph.Graph { return h.g },
		SlotOf: func(id uint64) (int32, bool) {
			if h.dead[id] || id == 0 || id > uint64(n) {
				return 0, false
			}
			return int32(id - 1), true
		},
		Holder: func(slot int32, key uint64) bool { return h.holders[slot] == key && key != 0 },
		Deliver: func(slot int32, m *testMsg, hops int32) {
			h.delivered = append(h.delivered, delivery{slot, m.id, hops})
		},
		OnDrop: func(m *testMsg, _ *Header, reason DropReason) {
			h.drops = append(h.drops, droppedMsg{m.id, reason})
		},
	})
	return h
}

func (h *harness) send(id, from, targetSlot int, keyed bool, key uint64) {
	h.r.Send(testMsg{id: id}, Header{
		Target: uint64(targetSlot + 1), Keyed: keyed, Key: key,
		Seed: uint64(id) * 0x9e3779b97f4a7c15,
	}, int32(from))
}

// conserve asserts the router's books balance: every message handed in is
// delivered, dropped (with a reason), or still in flight.
func (h *harness) conserve(t *testing.T) {
	t.Helper()
	m := h.r.Metrics()
	drops := m.DroppedBudget + m.DroppedQueueFull + m.DroppedChurn + m.DroppedDead
	if m.Sent != m.Delivered+drops+int64(h.r.InFlight()) {
		t.Fatalf("conservation violated: sent %d != delivered %d + drops %d + in-flight %d",
			m.Sent, m.Delivered, drops, h.r.InFlight())
	}
	if int64(len(h.drops)) != drops {
		t.Fatalf("OnDrop saw %d drops, counters say %d: a message was silently lost", len(h.drops), drops)
	}
}

func TestWalkDeliversAlongEdges(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	// Slot 0 -> slot 3 on the cycle: forwards 0->1, 1->2, then 2's
	// neighbor scan spots the target — 3 hops exactly.
	h.send(1, 0, 3, false, 0)
	h.r.Step()
	if len(h.delivered) != 1 || h.delivered[0] != (delivery{slot: 3, id: 1, hops: 3}) {
		t.Fatalf("delivery = %+v, want slot 3 in 3 hops", h.delivered)
	}
	m := h.r.Metrics()
	if m.Forwards != 3 || m.Delivered != 1 || m.MaxLinkLoad != 1 {
		t.Fatalf("metrics %+v", m)
	}
	h.conserve(t)
}

func TestSelfAddressedDeliversWithoutForwarding(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	h.send(1, 5, 5, false, 0)
	h.r.Step()
	if len(h.delivered) != 1 || h.delivered[0].hops != 0 {
		t.Fatalf("delivery = %+v, want 0 hops", h.delivered)
	}
	if h.r.Metrics().Forwards != 0 {
		t.Fatal("self-delivery must not forward")
	}
}

func TestKeyedWalkStopsAtHolder(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	h.holders[2] = 77
	// Target slot 6 is 6 hops away, but slot 2 holds the key: the walk
	// must end there after 2 hops (slot 1's neighbor scan spots it).
	h.send(1, 0, 6, true, 77)
	h.r.Step()
	if len(h.delivered) != 1 || h.delivered[0] != (delivery{slot: 2, id: 1, hops: 2}) {
		t.Fatalf("delivery = %+v, want holder slot 2 in 2 hops", h.delivered)
	}
}

func TestKeyedWalkPrefersExactTargetOverHolderNeighbor(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	g := graph.New(8, 2)
	// Slot 0 sees both the holder (slot 2) and the target (slot 3).
	for v := 0; v < 8; v++ {
		g.SetPort(v, 0, int32((v+1)%8))
		g.SetPort(v, 1, int32((v+1)%8))
	}
	g.SetPort(0, 0, 2)
	g.SetPort(0, 1, 3)
	h.g = g
	h.holders[2] = 77
	h.send(1, 0, 3, true, 77)
	h.r.Step()
	if len(h.delivered) != 1 || h.delivered[0].slot != 3 {
		t.Fatalf("delivery = %+v, want exact target slot 3", h.delivered)
	}
}

func TestBudgetExhaustionDrops(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 2})
	h.send(1, 0, 5, false, 0) // 5 hops needed, budget 2
	h.r.Step()
	if len(h.delivered) != 0 {
		t.Fatalf("unexpected delivery %+v", h.delivered)
	}
	if len(h.drops) != 1 || h.drops[0].reason != DropBudget {
		t.Fatalf("drops = %+v, want one DropBudget", h.drops)
	}
	if m := h.r.Metrics(); m.DroppedBudget != 1 || m.Forwards != 2 {
		t.Fatalf("metrics %+v", m)
	}
	h.conserve(t)
}

func TestDeadTargetDropsAtPickup(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	h.dead[4] = true // id 4 = slot 3's occupant, departed
	h.send(1, 0, 3, false, 0)
	h.r.Step()
	if len(h.drops) != 1 || h.drops[0].reason != DropDead {
		t.Fatalf("drops = %+v, want one DropDead", h.drops)
	}
	if h.r.Metrics().Forwards != 0 {
		t.Fatal("dead-target walk must not burn forwards")
	}
	h.conserve(t)
}

func TestKeyedWalkSurvivesDeadTarget(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16})
	h.dead[7] = true // addressee departed...
	h.holders[2] = 77
	h.send(1, 0, 6, true, 77) // ...but the holder at slot 2 can answer
	h.r.Step()
	if len(h.delivered) != 1 || h.delivered[0].slot != 2 {
		t.Fatalf("delivery = %+v, want holder slot 2", h.delivered)
	}
}

func TestCongestionParksThenQueueOverflowDrops(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16, LinkCapacity: 1, QueueLimit: 2})
	for id := 1; id <= 4; id++ {
		h.send(id, 0, 2, false, 0)
	}
	// Step 1: walker 1 uses slot 0's (and slot 1's) capacity and
	// delivers; walkers 2 and 3 park at slot 0; walker 4 finds the queue
	// full and drops.
	h.r.Step()
	m := h.r.Metrics()
	if m.Delivered != 1 || m.Parked != 2 || m.DroppedQueueFull != 1 {
		t.Fatalf("after step 1: %+v", m)
	}
	if h.r.QueuedAt(0) != 2 || h.r.InFlight() != 2 {
		t.Fatalf("queue state: at0=%d inflight=%d", h.r.QueuedAt(0), h.r.InFlight())
	}
	if m.MaxLinkLoad != 1 {
		t.Fatalf("max link load %d, want capacity bound 1", m.MaxLinkLoad)
	}
	// Step 2: oldest parked walker (2) drains and delivers; walker 3
	// parks again behind the capacity bound.
	h.r.Step()
	if m = h.r.Metrics(); m.Delivered != 2 || h.r.InFlight() != 1 {
		t.Fatalf("after step 2: %+v inflight=%d", m, h.r.InFlight())
	}
	// Step 3: the last walker drains.
	h.r.Step()
	if m = h.r.Metrics(); m.Delivered != 3 || h.r.InFlight() != 0 {
		t.Fatalf("after step 3: %+v inflight=%d", m, h.r.InFlight())
	}
	h.conserve(t)
}

// TestChurnDropsQueuedWalkersAccounted is the drop-audit regression: a
// message parked at a slot that churns must be dropped AND accounted —
// counter plus OnDrop observation — never silently lost, while transit
// messages (already off their sender) are unaffected.
func TestChurnDropsQueuedWalkersAccounted(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16, LinkCapacity: 1, QueueLimit: 8})
	for id := 1; id <= 3; id++ {
		h.send(id, 0, 2, false, 0)
	}
	h.r.Step() // walker 1 delivers; walkers 2 and 3 park at slot 0
	if h.r.QueuedAt(0) != 2 {
		t.Fatalf("queued at slot 0 = %d, want 2", h.r.QueuedAt(0))
	}
	h.send(4, 5, 7, false, 0) // fresh transit: must survive the churn below
	h.r.DropQueuedAt([]int{0, 6})
	if h.r.QueuedAt(0) != 0 {
		t.Fatal("churned slot still has queued walkers")
	}
	if len(h.drops) != 2 ||
		h.drops[0] != (droppedMsg{2, DropChurn}) || h.drops[1] != (droppedMsg{3, DropChurn}) {
		t.Fatalf("drops = %+v, want walkers 2 and 3 as DropChurn", h.drops)
	}
	if m := h.r.Metrics(); m.DroppedChurn != 2 {
		t.Fatalf("DroppedChurn = %d, want 2", m.DroppedChurn)
	}
	h.conserve(t)
	h.r.Step() // the transit walker is unaffected and delivers
	if len(h.delivered) != 2 || h.delivered[1].id != 4 {
		t.Fatalf("deliveries = %+v, want transit walker 4 delivered", h.delivered)
	}
	h.conserve(t)
}

func TestFlushAccountsEverything(t *testing.T) {
	h := newHarness(t, 8, Params{Budget: 16, LinkCapacity: 1, QueueLimit: 8})
	for id := 1; id <= 3; id++ {
		h.send(id, 0, 2, false, 0)
	}
	h.r.Step()                // 1 delivers, 2 and 3 park
	h.send(4, 3, 6, false, 0) // plus one in transit
	h.r.Flush()
	if h.r.InFlight() != 0 {
		t.Fatal("flush left walkers in flight")
	}
	if m := h.r.Metrics(); m.DroppedChurn != 3 {
		t.Fatalf("DroppedChurn = %d, want 3 (2 parked + 1 transit)", m.DroppedChurn)
	}
	h.conserve(t)
}

func TestWalkIsDeterministic(t *testing.T) {
	run := func() []delivery {
		h := newHarness(t, 16, Params{Budget: 64, Seed: 99})
		// Random-port walks: break the corridor so port choice matters.
		g := graph.New(16, 2)
		for v := 0; v < 16; v++ {
			g.SetPort(v, 0, int32((v+1)%16))
			g.SetPort(v, 1, int32((v+5)%16))
		}
		h.g = g
		for id := 1; id <= 8; id++ {
			h.send(id, id%16, (id*7)%16, false, 0)
		}
		for s := 0; s < 4; s++ {
			h.r.Step()
		}
		return h.delivered
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no deliveries")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at delivery %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAutoBudget(t *testing.T) {
	if b := AutoBudget(64, 8); b != 64 {
		t.Fatalf("small-n floor: got %d, want 64", b)
	}
	if b := AutoBudget(4096, 8); b != 4*4096/9 {
		t.Fatalf("got %d, want %d", b, 4*4096/9)
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget did not panic")
		}
	}()
	New[testMsg](telemetry.NewRegistry(), 8, Params{})
}
