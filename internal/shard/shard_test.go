package shard

import (
	"sync/atomic"
	"testing"
)

func TestOfBoundsConsistency(t *testing.T) {
	for _, n := range []int{3, 10, 63, 64, 65, 1000, 4096, 65536} {
		covered := 0
		for sh := 0; sh < Count; sh++ {
			lo, hi := Bounds(sh, n)
			for s := lo; s < hi; s++ {
				if got := Of(s, n); got != sh {
					t.Fatalf("n=%d: Of(%d) = %d but Bounds(%d) = [%d,%d)", n, s, got, sh, lo, hi)
				}
			}
			covered += hi - lo
		}
		if covered != n {
			t.Fatalf("n=%d: bounds cover %d slots", n, covered)
		}
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, w := range []int{0, 1, 3, Count, Count + 10} {
		var visits [Count]atomic.Int32
		Run(w, func(sh int) { visits[sh].Add(1) })
		for sh := range visits {
			if got := visits[sh].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d visited %d times", w, sh, got)
			}
		}
	}
}
