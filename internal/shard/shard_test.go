package shard

import (
	"sync/atomic"
	"testing"
)

// grids under test: the minimum, the default, and the maximum Pick can
// return.
func testGrids() []Grid {
	return []Grid{New(MinCount), Default(), New(MaxCount)}
}

func TestOfBoundsConsistency(t *testing.T) {
	for _, g := range testGrids() {
		for _, n := range []int{3, 10, 63, 64, 65, 1000, 4096, 65536} {
			covered := 0
			for sh := 0; sh < g.Count(); sh++ {
				lo, hi := g.Bounds(sh, n)
				for s := lo; s < hi; s++ {
					if got := g.Of(s, n); got != sh {
						t.Fatalf("count=%d n=%d: Of(%d) = %d but Bounds(%d) = [%d,%d)",
							g.Count(), n, s, got, sh, lo, hi)
					}
				}
				covered += hi - lo
			}
			if covered != n {
				t.Fatalf("count=%d n=%d: bounds cover %d slots", g.Count(), n, covered)
			}
		}
	}
}

func TestLocTableMatchesOfAndBounds(t *testing.T) {
	for _, g := range testGrids() {
		for _, n := range []int{3, 10, 63, 64, 65, 1000, 4096, 65536} {
			tab := g.LocTable(n)
			if len(tab) != n {
				t.Fatalf("n=%d: table length %d", n, len(tab))
			}
			for s := 0; s < n; s++ {
				sh, local := Loc(tab[s])
				if sh != g.Of(s, n) {
					t.Fatalf("count=%d n=%d slot %d: table shard %d, Of %d",
						g.Count(), n, s, sh, g.Of(s, n))
				}
				lo, _ := g.Bounds(sh, n)
				if local != s-lo {
					t.Fatalf("count=%d n=%d slot %d: table local %d, want %d",
						g.Count(), n, s, local, s-lo)
				}
			}
		}
	}
}

func TestPick(t *testing.T) {
	cases := []struct {
		n, procs, want int
	}{
		{128, 1, MinCount},     // tiny nets floor at MinCount
		{4096, 1, MinCount},    // 4 shards of slots, floored
		{4096, 8, 32},          // 4·procs floor dominates
		{65536, 1, 64},         // the historical benchmark grid
		{65536, 4, 64},         // unchanged at the core counts we sweep
		{262144, 1, 256},       // 2^18 slots → MaxCount
		{1 << 20, 1, MaxCount}, // million-node runs cap out
		{1 << 20, 64, MaxCount},
		{8, 0, MinCount}, // procs <= 0 treated as 1
	}
	for _, c := range cases {
		if got := Pick(c.n, c.procs).Count(); got != c.want {
			t.Errorf("Pick(%d, %d) = %d, want %d", c.n, c.procs, got, c.want)
		}
	}
	// Every pickable count must be a valid New argument.
	for n := 8; n <= 1<<22; n *= 2 {
		for procs := 1; procs <= 64; procs *= 2 {
			g := Pick(n, procs)
			New(g.Count()) // panics if invalid
			if g.Count() < MinCount || g.Count() > MaxCount {
				t.Fatalf("Pick(%d, %d) = %d outside [MinCount, MaxCount]", n, procs, g.Count())
			}
		}
	}
}

func TestOffsets(t *testing.T) {
	counts := []int32{3, 0, 2, 5, 0}
	off := make([]int32, len(counts)+1)
	if total := Offsets(counts, off); total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	want := []int32{0, 3, 3, 5, 10, 10}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("off = %v, want %v", off, want)
		}
	}
	// Empty input: single zero offset.
	var empty [1]int32
	if total := Offsets(nil, empty[:]); total != 0 || empty[0] != 0 {
		t.Fatalf("empty Offsets: total=%d off=%v", total, empty)
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, g := range testGrids() {
		for _, w := range []int{0, 1, 3, g.Count(), g.Count() + 10} {
			visits := make([]atomic.Int32, g.Count())
			g.Run(w, func(sh int) { visits[sh].Add(1) })
			for sh := range visits {
				if got := visits[sh].Load(); got != 1 {
					t.Fatalf("count=%d workers=%d: shard %d visited %d times",
						g.Count(), w, sh, got)
				}
			}
		}
	}
}

// TestBarrier drives a 4-party barrier through many generations: the
// last-arriver callback must run exactly once per generation, strictly
// between the phases it separates.
func TestBarrier(t *testing.T) {
	const parties, gens = 4, 200
	b := NewBarrier(parties)
	var phase atomic.Int32
	var mismatches atomic.Int32
	done := make(chan struct{}, parties)
	for p := 0; p < parties; p++ {
		go func() {
			for g := 0; g < gens; g++ {
				// Everyone must observe phase == g before the barrier and
				// phase == g+1 after it: the callback is the only writer.
				if phase.Load() != int32(g) {
					mismatches.Add(1)
				}
				b.Wait(func() { phase.Add(1) })
				if phase.Load() != int32(g+1) {
					mismatches.Add(1)
				}
			}
			done <- struct{}{}
		}()
	}
	for p := 0; p < parties; p++ {
		<-done
	}
	if got := phase.Load(); got != gens {
		t.Fatalf("callback ran %d times, want %d", got, gens)
	}
	if m := mismatches.Load(); m != 0 {
		t.Fatalf("%d phase-ordering violations", m)
	}
}
