package shard

import (
	"sync/atomic"
	"testing"
)

func TestOfBoundsConsistency(t *testing.T) {
	for _, n := range []int{3, 10, 63, 64, 65, 1000, 4096, 65536} {
		covered := 0
		for sh := 0; sh < Count; sh++ {
			lo, hi := Bounds(sh, n)
			for s := lo; s < hi; s++ {
				if got := Of(s, n); got != sh {
					t.Fatalf("n=%d: Of(%d) = %d but Bounds(%d) = [%d,%d)", n, s, got, sh, lo, hi)
				}
			}
			covered += hi - lo
		}
		if covered != n {
			t.Fatalf("n=%d: bounds cover %d slots", n, covered)
		}
	}
}

func TestLocTableMatchesOfAndBounds(t *testing.T) {
	for _, n := range []int{3, 10, 63, 64, 65, 1000, 4096, 65536} {
		tab := LocTable(n)
		if len(tab) != n {
			t.Fatalf("n=%d: table length %d", n, len(tab))
		}
		for s := 0; s < n; s++ {
			sh, local := Loc(tab[s])
			if sh != Of(s, n) {
				t.Fatalf("n=%d slot %d: table shard %d, Of %d", n, s, sh, Of(s, n))
			}
			lo, _ := Bounds(sh, n)
			if local != s-lo {
				t.Fatalf("n=%d slot %d: table local %d, want %d", n, s, local, s-lo)
			}
		}
	}
}

func TestOffsets(t *testing.T) {
	counts := []int32{3, 0, 2, 5, 0}
	off := make([]int32, len(counts)+1)
	if total := Offsets(counts, off); total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	want := []int32{0, 3, 3, 5, 10, 10}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("off = %v, want %v", off, want)
		}
	}
	// Empty input: single zero offset.
	var empty [1]int32
	if total := Offsets(nil, empty[:]); total != 0 || empty[0] != 0 {
		t.Fatalf("empty Offsets: total=%d off=%v", total, empty)
	}
}

func TestRunVisitsEveryShardOnce(t *testing.T) {
	for _, w := range []int{0, 1, 3, Count, Count + 10} {
		var visits [Count]atomic.Int32
		Run(w, func(sh int) { visits[sh].Add(1) })
		for sh := range visits {
			if got := visits[sh].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d visited %d times", w, sh, got)
			}
		}
	}
}
