// Package shard provides the fixed slot-sharding helpers shared by the
// engine's message exchange (internal/simnet) and the walk soup's token
// exchange (internal/walks). Both move per-slot data with the same
// two-phase discipline: scatter by source shard, gather by destination
// shard, merging source shards in fixed index order.
//
// The shard count is a constant — NOT GOMAXPROCS — so that scatter output
// and gather merge order are identical on every machine and at every
// worker count. That constant order is what lets the engine deliver
// canonically ordered inboxes without sorting: determinism is structural,
// not re-established after the fact.
package shard

import (
	"sync"
	"sync/atomic"
)

// Count is the fixed number of shards. 64 comfortably exceeds the core
// counts we target while keeping per-shard buffer overhead negligible;
// slices of per-shard state stay a few cache lines long.
const Count = 64

// Of maps a slot in [0, n) to its shard, exactly consistent with Bounds:
// slot s belongs to the unique shard sh with Bounds(sh, n) containing s.
// (The naive slot*Count/n disagrees with the Bounds partition for some
// (slot, n); this is the proper inverse: the largest sh with
// sh*n/Count <= slot.)
func Of(slot, n int) int {
	return (Count*(slot+1) - 1) / n
}

// Loc packs a slot's (shard, local index within the shard) pair into one
// uint32: shard in the top bits, local index in the low LocalBits. Hot
// exchange loops resolve a destination slot with a single table load
// (LocTable) instead of a hardware divide (Of) plus a Bounds subtraction.
const (
	// LocalBits is the width of the local-index field; with 6 shard bits
	// on top, slot counts up to Count<<LocalBits (≈ 4·10⁹) are addressable.
	LocalBits = 26
	localMask = 1<<LocalBits - 1
)

// LocTable returns the slot → packed (shard, local) location table for a
// network of n slots: LocTable(n)[s] >> LocalBits is Of(s, n) and
// LocTable(n)[s] & (1<<LocalBits - 1) is s - lo where lo, _ = Bounds(...).
// Build once at setup; 4 bytes per slot.
func LocTable(n int) []uint32 {
	if n >= Count<<LocalBits {
		panic("shard: n exceeds LocTable addressable range")
	}
	t := make([]uint32, n)
	for sh := 0; sh < Count; sh++ {
		lo, hi := Bounds(sh, n)
		for s := lo; s < hi; s++ {
			t[s] = uint32(sh)<<LocalBits | uint32(s-lo)
		}
	}
	return t
}

// Loc unpacks a LocTable entry into (shard, local index).
func Loc(loc uint32) (sh, local int) {
	return int(loc >> LocalBits), int(loc & localMask)
}

// Offsets turns per-slot counts into the exclusive prefix-sum offset index
// of a counting sort: off[0] = 0, off[i+1] = off[i] + counts[i]. It
// requires len(off) == len(counts)+1 and returns the total. After pass 2
// of the sort, element range [off[i], off[i+1]) holds bucket i.
func Offsets(counts, off []int32) int32 {
	if len(off) != len(counts)+1 {
		panic("shard: Offsets requires len(off) == len(counts)+1")
	}
	var total int32
	off[0] = 0
	for i, c := range counts {
		total += c
		off[i+1] = total
	}
	return total
}

// Bounds returns the slot range [lo, hi) owned by shard sh. Shards may be
// empty when n < Count.
func Bounds(sh, n int) (lo, hi int) {
	return sh * n / Count, (sh + 1) * n / Count
}

// Run invokes fn(sh) exactly once for every shard in [0, Count), spread
// over the given number of worker goroutines claiming shards from a shared
// cursor. workers <= 1 runs inline on the caller's goroutine with zero
// allocation — the fast path the steady-state allocation budget is
// measured against. fn must be safe to call concurrently for distinct
// shards.
func Run(workers int, fn func(sh int)) {
	if workers <= 1 {
		for sh := 0; sh < Count; sh++ {
			fn(sh)
		}
		return
	}
	if workers > Count {
		workers = Count
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(cursor.Add(1) - 1)
				if sh >= Count {
					return
				}
				fn(sh)
			}
		}()
	}
	wg.Wait()
}
