// Package shard provides the slot-sharding helpers shared by the
// engine's message exchange (internal/simnet) and the walk soup's token
// exchange (internal/walks). Both move per-slot data with the same
// two-phase discipline: scatter by source shard, gather by destination
// shard, merging source shards in fixed index order.
//
// The shard count of a Grid is fixed at construction — NOT GOMAXPROCS —
// so that scatter output and gather merge order are identical on every
// machine and at every worker count. That constant order is what lets
// the engine deliver canonically ordered inboxes without sorting:
// determinism is structural, not re-established after the fact.
//
// Results are a pure function of (seeds, parameters, shard count), and
// the shard count leaks only through ordering, narrowly: every Grid
// partitions the slot range into contiguous ascending intervals, so
// streams merged per destination SLOT in source-slot order (the engine's
// inboxes) are identical across grids of different counts, while streams
// merged per destination SHARD (the soup's per-slot sample lists, whose
// deferred-tokens-first order is grouped by source shard) keep their
// per-slot multisets but not their order. Pick may therefore size the
// grid from n and GOMAXPROCS without perturbing engine messaging or any
// soup multiset/metric (pinned by the shard-count legs of the oracle
// tests); anything reading samples positionally must treat the shard
// count as an input, which simnet.Config.Shards lets callers pin.
package shard

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// MinCount is the smallest grid Pick returns: small enough that tiny
	// networks don't pay per-shard padding for dozens of empty shards,
	// large enough to spread over every core count we target.
	MinCount = 16
	// MaxCount bounds the grid so per-shard state (telemetry stripes,
	// staging buffer headers) stays cheap and shard indices fit the
	// 32-LocalBits top bits of a packed location with room to spare.
	MaxCount = 256
	// DefaultCount is the historical fixed grid, kept as the default for
	// mid-sized networks (n=65536 under Pick) and for callers that don't
	// care about sizing.
	DefaultCount = 64
)

// Loc packs a slot's (shard, local index within the shard) pair into one
// uint32: shard in the top bits, local index in the low LocalBits. Hot
// exchange loops resolve a destination slot with a single table load
// (LocTable) instead of a hardware divide (Of) plus a Bounds subtraction.
const (
	// LocalBits is the width of the local-index field; with 8 shard bits
	// on top (MaxCount = 256), per-shard spans up to 2^24 slots are
	// addressable — n up to MaxCount<<LocalBits = 2^32 slots total.
	LocalBits = 24
	localMask = 1<<LocalBits - 1
)

// Grid is a slot-sharding layout with a fixed power-of-two shard count.
// The zero value is invalid; construct with New, Default, or Pick.
type Grid struct {
	count int
}

// New returns a grid with the given shard count, which must be a power
// of two in [1, MaxCount].
func New(count int) Grid {
	if count < 1 || count > MaxCount || count&(count-1) != 0 {
		panic("shard: count must be a power of two in [1, MaxCount]")
	}
	return Grid{count: count}
}

// Default returns the DefaultCount grid.
func Default() Grid { return Grid{count: DefaultCount} }

// Pick sizes a grid for a network of n slots running on procs cores
// (procs <= 0 means 1). The rule: one shard per ~1024 slots — small
// enough that work-stealing over shards load-balances, large enough
// that per-shard buffers amortize — floored at max(MinCount, 4·procs)
// so every core has shards to steal even on small networks, and capped
// at MaxCount. n=65536 on <=4 cores yields DefaultCount, preserving the
// historical grid at the benchmark anchor size.
func Pick(n, procs int) Grid {
	if procs < 1 {
		procs = 1
	}
	c := ceilPow2(n / 1024)
	if f := ceilPow2(4 * procs); f > c {
		c = f
	}
	if c < MinCount {
		c = MinCount
	}
	if c > MaxCount {
		c = MaxCount
	}
	return Grid{count: c}
}

// ceilPow2 returns the smallest power of two >= x (and 1 for x <= 1).
func ceilPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// Count returns the grid's shard count.
func (g Grid) Count() int { return g.count }

// Of maps a slot in [0, n) to its shard, exactly consistent with Bounds:
// slot s belongs to the unique shard sh with Bounds(sh, n) containing s.
// (The naive slot*count/n disagrees with the Bounds partition for some
// (slot, n); this is the proper inverse: the largest sh with
// sh*n/count <= slot.)
func (g Grid) Of(slot, n int) int {
	return (g.count*(slot+1) - 1) / n
}

// Bounds returns the slot range [lo, hi) owned by shard sh. Shards may be
// empty when n < the grid count. Ranges are contiguous and ascending in
// sh — the property the cross-count determinism argument rests on.
func (g Grid) Bounds(sh, n int) (lo, hi int) {
	return sh * n / g.count, (sh + 1) * n / g.count
}

// LocTable returns the slot → packed (shard, local) location table for a
// network of n slots: LocTable(n)[s] >> LocalBits is Of(s, n) and
// LocTable(n)[s] & (1<<LocalBits - 1) is s - lo where lo, _ = Bounds(...).
// Build once at setup; 4 bytes per slot.
func (g Grid) LocTable(n int) []uint32 {
	t := make([]uint32, n)
	for sh := 0; sh < g.count; sh++ {
		lo, hi := g.Bounds(sh, n)
		if hi-lo > 1<<LocalBits {
			panic("shard: per-shard span exceeds LocTable addressable range")
		}
		for s := lo; s < hi; s++ {
			t[s] = uint32(sh)<<LocalBits | uint32(s-lo)
		}
	}
	return t
}

// Loc unpacks a LocTable entry into (shard, local index).
func Loc(loc uint32) (sh, local int) {
	return int(loc >> LocalBits), int(loc & localMask)
}

// Offsets turns per-slot counts into the exclusive prefix-sum offset index
// of a counting sort: off[0] = 0, off[i+1] = off[i] + counts[i]. It
// requires len(off) == len(counts)+1 and returns the total. After pass 2
// of the sort, element range [off[i], off[i+1]) holds bucket i.
func Offsets(counts, off []int32) int32 {
	if len(off) != len(counts)+1 {
		panic("shard: Offsets requires len(off) == len(counts)+1")
	}
	var total int32
	off[0] = 0
	for i, c := range counts {
		total += c
		off[i+1] = total
	}
	return total
}

// Run invokes fn(sh) exactly once for every shard in [0, g.Count()),
// spread over the given number of worker goroutines claiming shards from
// a shared cursor. workers <= 1 runs inline on the caller's goroutine
// with zero allocation — the fast path the steady-state allocation
// budget is measured against. fn must be safe to call concurrently for
// distinct shards.
func (g Grid) Run(workers int, fn func(sh int)) {
	count := g.count
	if workers <= 1 {
		for sh := 0; sh < count; sh++ {
			fn(sh)
		}
		return
	}
	if workers > count {
		workers = count
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(cursor.Add(1) - 1)
				if sh >= count {
					return
				}
				fn(sh)
			}
		}()
	}
	wg.Wait()
}

// Barrier is a reusable sense-reversing barrier for a fixed number of
// participants. Wait blocks until all participants arrive; the LAST
// arriver runs the optional callback (serial, before anyone is released)
// — the hook round-major replay loops use to advance shared state
// between phases without a second synchronization. Allocation-free after
// construction.
type Barrier struct {
	parties int32
	count   atomic.Int32
	gen     atomic.Int32
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	return &Barrier{parties: int32(parties)}
}

// Reset re-arms the barrier for a (possibly different) participant
// count. Must not race with Wait.
func (b *Barrier) Reset(parties int) {
	b.parties = int32(parties)
	b.count.Store(0)
}

// Wait blocks until all participants have called Wait for the current
// generation. The final arriver first runs last (if non-nil), then
// releases the others. Spin-waits with Gosched: phases are short and
// participant counts are bounded by core count.
func (b *Barrier) Wait(last func()) {
	g := b.gen.Load()
	if b.count.Add(1) == b.parties {
		if last != nil {
			last()
		}
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}
