// Package shard provides the fixed slot-sharding helpers shared by the
// engine's message exchange (internal/simnet) and the walk soup's token
// exchange (internal/walks). Both move per-slot data with the same
// two-phase discipline: scatter by source shard, gather by destination
// shard, merging source shards in fixed index order.
//
// The shard count is a constant — NOT GOMAXPROCS — so that scatter output
// and gather merge order are identical on every machine and at every
// worker count. That constant order is what lets the engine deliver
// canonically ordered inboxes without sorting: determinism is structural,
// not re-established after the fact.
package shard

import (
	"sync"
	"sync/atomic"
)

// Count is the fixed number of shards. 64 comfortably exceeds the core
// counts we target while keeping per-shard buffer overhead negligible;
// slices of per-shard state stay a few cache lines long.
const Count = 64

// Of maps a slot in [0, n) to its shard, exactly consistent with Bounds:
// slot s belongs to the unique shard sh with Bounds(sh, n) containing s.
// (The naive slot*Count/n disagrees with the Bounds partition for some
// (slot, n); this is the proper inverse: the largest sh with
// sh*n/Count <= slot.)
func Of(slot, n int) int {
	return (Count*(slot+1) - 1) / n
}

// Bounds returns the slot range [lo, hi) owned by shard sh. Shards may be
// empty when n < Count.
func Bounds(sh, n int) (lo, hi int) {
	return sh * n / Count, (sh + 1) * n / Count
}

// Run invokes fn(sh) exactly once for every shard in [0, Count), spread
// over the given number of worker goroutines claiming shards from a shared
// cursor. workers <= 1 runs inline on the caller's goroutine with zero
// allocation — the fast path the steady-state allocation budget is
// measured against. fn must be safe to call concurrently for distinct
// shards.
func Run(workers int, fn func(sh int)) {
	if workers <= 1 {
		for sh := 0; sh < Count; sh++ {
			fn(sh)
		}
		return
	}
	if workers > Count {
		workers = Count
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sh := int(cursor.Add(1) - 1)
				if sh >= Count {
					return
				}
				fn(sh)
			}
		}()
	}
	wg.Wait()
}
