package dynp2p_test

// One benchmark per reproduction experiment (the paper is a theory paper;
// its "tables and figures" are Theorems 1-4, Lemmas 1-8 and the §4.4/§5
// claims — see DESIGN.md §4 for the index). Each benchmark regenerates the
// corresponding experiment table at Quick scale and reports its headline
// quantity as a benchmark metric, so `go test -bench=.` reproduces the
// whole evaluation. EXPERIMENTS.md records the full tables.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"dynp2p"
	"dynp2p/internal/bench"
	"dynp2p/internal/expt"
)

// reportCell parses a numeric cell (possibly a percentage) from a table
// and reports it as a benchmark metric.
func reportCell(b *testing.B, t *expt.Table, row, col int, name string) {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return
	}
	cell := strings.TrimSuffix(t.Rows[row][col], "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return
	}
	b.ReportMetric(v, name)
}

func BenchmarkE01SoupMixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E01SoupMixing(expt.Quick)
		last := len(t.Rows) - 1
		reportCell(b, t, last, 2, "TV-dest")
		reportCell(b, t, last, 4, "band-frac-%")
	}
}

func BenchmarkE02WalkCompletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E02WalkCompletion(expt.Quick)
		reportCell(b, t, 0, 1, "mean-delay-uncapped")
	}
}

func BenchmarkE03WalkSurvival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E03WalkSurvival(expt.Quick)
		reportCell(b, t, 1, 2, "died-frac-C1")
	}
}

func BenchmarkE04ReceiptBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E04ReceiptBounds(expt.Quick)
		reportCell(b, t, 0, 3, "mean-receipts")
	}
}

func BenchmarkE05CommitteeLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E05CommitteeLifetime(expt.Quick)
		reportCell(b, t, 1, 3, "goodness-C1")
	}
}

func BenchmarkE06LandmarkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E06LandmarkSize(expt.Quick)
		last := len(t.Rows) - 1
		reportCell(b, t, last, 4, "landmarks/sqrt-n")
	}
}

func BenchmarkE07StorageAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E07StorageAvailability(expt.Quick)
		reportCell(b, t, 1, 2, "avail-C1-%")
	}
}

func BenchmarkE08RetrievalLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E08RetrievalLatency(expt.Quick)
		last := len(t.Rows) - 1
		reportCell(b, t, last, 2, "success-%")
		reportCell(b, t, last, 5, "p50/ln-n")
	}
}

func BenchmarkE09MessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E09MessageComplexity(expt.Quick)
		last := len(t.Rows) - 1
		reportCell(b, t, last, 1, "bits/node/round")
	}
}

func BenchmarkE10ErasureCoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E10ErasureCoding(expt.Quick)
		reportCell(b, t, 1, 2, "IDA-overhead-x")
	}
}

func BenchmarkE11ChurnStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E11ChurnStress(expt.Quick)
		reportCell(b, t, 0, 4, "retrieval-low-churn-%")
		last := len(t.Rows) - 1
		reportCell(b, t, last, 4, "retrieval-at-n/ln-n-%")
	}
}

func BenchmarkE12BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E12BaselineComparison(expt.Quick)
		// Heaviest churn level: rows come in triples (dynp2p, dht, flood).
		base := len(t.Rows) - 3
		reportCell(b, t, base, 2, "dynp2p-success-%")
		reportCell(b, t, base+1, 2, "dht-success-%")
	}
}

func BenchmarkE13Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.E13Ablations(expt.Quick)
		reportCell(b, t, 0, 1, "defaults-success-%")
	}
}

// BenchmarkMicroSimRound measures raw engine+soup+protocol throughput: one
// full simulated round of an n-node network under churn (the shared
// bench.FullRound workload, so this and internal/bench's BenchmarkFullRound
// always measure the same thing). The large size is the scale Theorems
// 1–4's w.h.p. bounds need; -short drops it.
func BenchmarkMicroSimRound(b *testing.B) {
	ns := []int{4096, 65536}
	if testing.Short() {
		ns = ns[:1]
	}
	for _, n := range ns {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { bench.FullRound(b, n) })
	}
}

// BenchmarkMicroStoreRetrieve measures one complete store+retrieve cycle.
func BenchmarkMicroStoreRetrieve(b *testing.B) {
	nw := dynp2p.New(dynp2p.Config{N: 512, ChurnRate: 0.5, ChurnDelta: 1.0, Seed: 2})
	nw.Run(nw.WarmupRounds())
	ttl := nw.Tunables().Protocol.SearchTTL
	period := nw.Tunables().Protocol.Period
	b.ResetTimer()
	ok := 0
	for i := 0; i < b.N; i++ {
		key := uint64(1000 + i)
		data := make([]byte, 64)
		nw.Store(i%512, key, data)
		nw.Run(period)
		nw.Retrieve((i*311+7)%512, key, data)
		nw.Run(ttl + 4)
		for _, r := range nw.Results() {
			if r.Success {
				ok++
			}
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "success-rate")
}
