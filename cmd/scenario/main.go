// Command scenario runs a declarative workload/fault/churn scenario on
// the dynamic P2P simulator and prints an SLO report: per-phase retrieval
// success rates, latency quantiles, churn and fault activity, traffic.
//
// Scenarios come from the builtin library or from a JSON spec file; runs
// are deterministic in (spec, seed), and -trace streams a per-round JSONL
// record for offline analysis.
//
// Examples:
//
//	scenario -list
//	scenario -name lossy -n 2048
//	scenario -name churn-burst -n 1024 -seed 7 -trace out.jsonl
//	scenario -spec my.json -trace out.jsonl
//	scenario -name steady -optrace ops.jsonl -metrics metrics.prom
//	scenario -name steady -dump          # print the spec JSON and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"dynp2p/internal/scenario"
)

func main() {
	name := flag.String("name", "", "builtin scenario name (see -list)")
	specPath := flag.String("spec", "", "path to a JSON scenario spec (overrides -name)")
	n := flag.Int("n", 1024, "stable network size (builtin scenarios)")
	seed := flag.Uint64("seed", 1, "simulation seed (builtin scenarios)")
	tracePath := flag.String("trace", "", "write a per-round JSONL trace to this file")
	opTracePath := flag.String("optrace", "", "write a per-operation lifecycle JSONL trace to this file")
	metricsPath := flag.String("metrics", "", "write a final Prometheus-text metrics snapshot to this file")
	phaseProfPath := flag.String("phaseprof", "", "write a per-round phase-timing JSONL stream to this file")
	cacheCap := flag.Int("cachecap", -1, "override the spec's hot-key cache capacity (-1 keeps the spec value; 0 disables caching)")
	routing := flag.String("routing", "", "override the spec's routing mode: oracle or overlay (empty keeps the spec value)")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	dump := flag.Bool("dump", false, "print the resolved spec as JSON and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: scenario [flags]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nbuiltin scenarios (-name):\n")
		for _, d := range scenario.Describe() {
			fmt.Fprintf(out, "  %-14s %s\n", d[0], d[1])
		}
	}
	flag.Parse()

	if *list {
		for _, d := range scenario.Describe() {
			fmt.Printf("  %-14s %s\n", d[0], d[1])
		}
		return
	}

	var spec scenario.Spec
	var err error
	switch {
	case *specPath != "":
		spec, err = scenario.LoadSpec(*specPath)
	case *name != "":
		spec, err = scenario.Builtin(*name, *n, *seed)
	default:
		fmt.Fprintln(os.Stderr, "need -name or -spec (try -list)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// -cachecap sweeps cache capacity without editing the spec (see
	// EXPERIMENTS.md). It overrides phase-level cache blocks too, so the
	// sweep axis is unambiguous.
	if *cacheCap >= 0 {
		spec.Cache.Capacity = *cacheCap
		for i := range spec.Phases {
			if spec.Phases[i].Cache != nil {
				spec.Phases[i].Cache.Capacity = *cacheCap
			}
		}
	}

	// -routing A/Bs a spec between the id-addressed oracle and overlay
	// forwarding without editing it. Like -cachecap, it overrides
	// phase-level routing blocks so the comparison axis is unambiguous.
	if *routing != "" {
		spec.Routing.Mode = *routing
		for i := range spec.Phases {
			if spec.Phases[i].Routing != nil {
				spec.Phases[i].Routing.Mode = *routing
			}
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *dump {
		b, err := spec.MarshalIndent()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
		return
	}

	var opt scenario.Options
	for _, out := range []struct {
		path string
		dst  *io.Writer
	}{
		{*tracePath, &opt.Trace},
		{*opTracePath, &opt.OpTrace},
		{*metricsPath, &opt.Metrics},
		{*phaseProfPath, &opt.PhaseProf},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		*out.dst = f
	}

	// Profiling brackets the run itself (not spec loading or reporting) so
	// perf work profiles real scenario workloads, not CLI overhead.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	rep, runErr := scenario.Run(spec, opt)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
	rep.Fprint(os.Stdout)
}
