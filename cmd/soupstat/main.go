// Command soupstat is a diagnostic for the random-walk soup (paper §3):
// it runs the soup alone on the dynamic expander under churn and reports
// mixing quality (total-variation distance of walk endpoints from
// uniform), survival, and per-node sample receipt statistics — the
// measurable content of the Soup Theorem.
//
// Example:
//
//	soupstat -n 4096 -churn 2 -delta 0.5 -rounds 200
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"syscall"

	"dynp2p/internal/churn"
	"dynp2p/internal/expander"
	"dynp2p/internal/overlay"
	"dynp2p/internal/simnet"
	"dynp2p/internal/stats"
	"dynp2p/internal/walks"
)

func main() {
	n := flag.Int("n", 2048, "network size")
	c := flag.Float64("churn", 1, "churn constant C (0 = none)")
	delta := flag.Float64("delta", 0.5, "churn exponent delta")
	rounds := flag.Int("rounds", 0, "measurement rounds (0 = 3x walk length)")
	seed := flag.Uint64("seed", 1, "seed")
	lazy := flag.Bool("lazy", false, "use lazy walks (stay-put coin)")
	store := flag.String("store", "auto", "token store: auto|lazy|eager (auto = lazy trajectory evaluation when uncapped)")
	edges := flag.String("edges", "rerandomize", "topology: rerandomize|selfhealing|static (selfhealing attaches the overlay repair hook)")
	memLimit := flag.Float64("memlimit", 0, "soft heap limit in GiB (0 = runtime default). The soup's cohort caches are pointer-free, so capping the GC heap target well below GOGC's 2x-live default costs little mark time and bounds peak RSS")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *memLimit > 0 {
		debug.SetMemoryLimit(int64(*memLimit * (1 << 30)))
	}
	var law churn.Law = churn.ZeroLaw{}
	if *c > 0 {
		law = churn.PaperLaw(*c, *delta)
	}
	var mode expander.EdgeMode
	switch *edges {
	case "rerandomize":
		mode = expander.Rerandomize
	case "selfhealing":
		mode = expander.SelfHealing
	case "static":
		mode = expander.Static
	default:
		fmt.Fprintf(os.Stderr, "unknown -edges %q (want rerandomize|selfhealing|static)\n", *edges)
		os.Exit(2)
	}
	e := simnet.New(simnet.Config{
		N: *n, Degree: 8, EdgeMode: mode,
		AdversarySeed: *seed, ProtocolSeed: *seed + 1,
		Strategy: churn.Uniform, Law: law,
	})
	p := walks.DefaultParams(*n)
	p.Lazy = *lazy
	switch *store {
	case "auto":
		p.Store = walks.StoreAuto
	case "lazy":
		p.Store = walks.StoreLazy
	case "eager":
		p.Store = walks.StoreEager
	default:
		fmt.Fprintf(os.Stderr, "unknown -store %q (want auto|lazy|eager)\n", *store)
		os.Exit(2)
	}
	s := walks.NewSoup(e, p, 0)
	e.AddHook(s)
	var ov *overlay.Overlay
	if mode == expander.SelfHealing {
		ov = overlay.New(e, s, overlay.Config{})
		e.AddHook(ov)
	}

	storeName := [...]string{"auto", "capped", "eager", "lazy-eval"}[s.Params().Store]
	fmt.Printf("n=%d churn=%d/round walk-len=%d walks/node/round=%d lazy=%v store=%s edges=%s shards=%d\n",
		*n, law.PerRound(*n, 0), p.WalkLength, p.WalksPerRound, *lazy, storeName, *edges, e.Grid().Count())

	// Profiling brackets the simulated rounds, not setup or reporting.
	stopCPU := startCPUProfile(*cpuProfile)

	warm := 2 * p.WalkLength
	e.Run(simnet.NopHandler{}, warm)

	window := *rounds
	if window <= 0 {
		window = 3 * p.WalkLength
	}
	counts := make([]int, *n)
	// The receipt distribution is sampled on a fixed slot stride above
	// n=2^16 so the measurement arrays stay bounded (~100 MB of float64s
	// over a 200-round 2^20 run would otherwise dominate the tool's own
	// footprint and pollute the peak-RSS report).
	recStride := max(1, *n>>16)
	var receipts []float64
	for r := 0; r < window; r++ {
		e.RunRound(simnet.NopHandler{})
		for slot := 0; slot < *n; slot++ {
			got := len(s.Samples(slot))
			counts[slot] += got
			if slot%recStride == 0 {
				receipts = append(receipts, float64(got))
			}
		}
		// Touch the metrics every round. On the lazy store this advances
		// each in-flight cohort's cached positions incrementally (the
		// graceful query-every-round path), so the exact end-of-run
		// metrics never one-shot materialize every live cohort at once —
		// at n=2^20 that single deferred sync transiently costs several
		// GB of fresh cohort buffers on top of the run's footprint.
		_ = s.Metrics()
		if (r+1)%50 == 0 {
			var ru syscall.Rusage
			if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
				fmt.Printf("round %d/%d: peak RSS %.2f GB\n",
					r+1, window, float64(ru.Maxrss)/(1<<20))
			}
		}
	}
	stopCPU()
	writeHeapProfile(*memProfile)

	m := s.Metrics()
	resolved := m.Completed + m.Died + m.Overdue
	fmt.Printf("\nwalks: generated=%d completed=%d died=%d overdue=%d (survival %.1f%%)\n",
		m.Generated, m.Completed, m.Died, m.Overdue,
		100*float64(m.Completed)/float64(resolved))
	fmt.Printf("endpoint TV distance from uniform: %.4f over %d arrivals\n",
		stats.TVDistanceFromUniform(counts), total(counts))
	sm := stats.Summarize(receipts)
	fmt.Printf("per-node receipts/round: mean=%.2f p05=%.0f median=%.0f p95=%.0f\n",
		sm.Mean, sm.P05, sm.Median, sm.P95)
	fmt.Printf("in-flight tokens at end: %d (%.1f per node)\n",
		s.TotalTokens(), float64(s.TotalTokens())/float64(*n))
	if ov != nil {
		om := ov.Metrics()
		fmt.Printf("overlay: severed=%d splices=%d direct-pairs=%d stale-samples=%d\n",
			om.PortsSevered, om.Splices, om.DirectPairs, om.StaleSamples)
		if err := e.Graph().CheckRegular(); err != nil {
			fmt.Fprintf(os.Stderr, "topology check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("topology: %d-regular invariant holds after %d rounds\n",
			e.Graph().Degree(), e.Round())
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		// Linux reports ru_maxrss in KiB.
		fmt.Printf("peak RSS: %.2f GB (%d KB)\n", float64(ru.Maxrss)/(1<<20), ru.Maxrss)
	}
}

func total(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// startCPUProfile begins CPU profiling to path ("" = no-op) and returns
// the stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeHeapProfile writes a post-GC heap profile to path ("" = no-op).
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runtime.GC() // settle the heap so the profile shows live memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
}
