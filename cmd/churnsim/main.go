// Command churnsim runs a single storage-and-search scenario on the
// dynamic P2P simulator and reports what happened: committee health,
// copy counts, landmark population, retrieval outcomes, and traffic.
//
// Example:
//
//	churnsim -n 2048 -churn 1 -delta 0.5 -items 8 -searches 32 -rounds 600
//	churnsim -n 1024 -strategy oldest -ida 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dynp2p"
	"dynp2p/internal/stats"
)

func main() {
	n := flag.Int("n", 1024, "stable network size")
	churnRate := flag.Float64("churn", 1, "churn constant C in C*n/log^{1+delta} n per round (0 = none)")
	delta := flag.Float64("delta", 0.5, "churn exponent delta")
	strategy := flag.String("strategy", "uniform", "churn strategy: uniform|oldest|youngest|sweep")
	rounds := flag.Int("rounds", 400, "rounds to simulate after warm-up")
	items := flag.Int("items", 4, "items to store")
	searches := flag.Int("searches", 16, "retrievals to issue")
	seed := flag.Uint64("seed", 1, "simulation seed")
	idaK := flag.Int("ida", 0, "IDA reconstruction threshold K (0 = replication)")
	itemLen := flag.Int("itemlen", 256, "item size in bytes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	var strat dynp2p.Strategy
	switch strings.ToLower(*strategy) {
	case "uniform":
		strat = dynp2p.Uniform
	case "oldest":
		strat = dynp2p.OldestFirst
	case "youngest":
		strat = dynp2p.YoungestFirst
	case "sweep":
		strat = dynp2p.SweepBurst
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	nw := dynp2p.New(dynp2p.Config{
		N: *n, ChurnRate: *churnRate, ChurnDelta: *delta,
		Strategy: strat, Seed: *seed, ErasureK: *idaK,
	})
	tun := nw.Tunables()
	fmt.Printf("network: n=%d degree=8 churn=%s*n/log^%.2f strategy=%s seed=%d\n",
		*n, fmtF(*churnRate), 1+*delta, strat, *seed)
	fmt.Printf("derived: walks/round=%d walk-len=%d committee=%d period=%d tree-depth=%d\n",
		tun.Walks.WalksPerRound, tun.Walks.WalkLength,
		tun.Protocol.CommitteeSize, tun.Protocol.Period, tun.Protocol.TreeDepth)

	// Profiling brackets the simulated rounds, not setup or reporting.
	stopCPU := startCPUProfile(*cpuProfile)

	nw.Run(nw.WarmupRounds())

	data := make(map[uint64][]byte, *items)
	for i := 0; i < *items; i++ {
		key := uint64(100 + i)
		buf := make([]byte, *itemLen)
		for j := range buf {
			buf[j] = byte(key + uint64(j))
		}
		data[key] = buf
		nw.Store((i*131)%*n, key, buf)
	}
	nw.Run(tun.Protocol.Period + 4)

	// Issue searches spread over the run, then complete the horizon.
	perWave := *searches / 4
	if perWave == 0 {
		perWave = 1
	}
	issued := 0
	var results []dynp2p.Result
	for issued < *searches && nw.Round() < *rounds {
		for i := 0; i < perWave && issued < *searches; i++ {
			key := uint64(100 + issued%*items)
			nw.Retrieve((issued*211+13)%*n, key, data[key])
			issued++
		}
		nw.Run(tun.Protocol.SearchTTL + 4)
		results = append(results, nw.Results()...)
	}
	if remaining := *rounds - nw.Round(); remaining > 0 {
		nw.Run(remaining)
	}
	results = append(results, nw.Results()...)
	stopCPU()
	writeHeapProfile(*memProfile)

	ok := 0
	var lats []float64
	for _, r := range results {
		if r.Success {
			ok++
			lats = append(lats, float64(r.Found-r.Start))
		}
	}
	fmt.Printf("\nretrievals: %d issued, %d completed, %d succeeded (%.1f%%)\n",
		issued, len(results), ok, 100*float64(ok)/float64(max(1, len(results))))
	if len(lats) > 0 {
		sm := stats.Summarize(lats)
		fmt.Printf("latency (rounds to locate): p50=%.0f p95=%.0f max=%.0f\n", sm.Median, sm.P95, sm.Max)
	}

	fmt.Println("\nper-item state at end:")
	for i := 0; i < *items; i++ {
		key := uint64(100 + i)
		fmt.Printf("  item %d: copies=%d landmarks=%d committee=%d\n",
			key, nw.CopyCount(key), nw.LandmarkCount(key), nw.CommitteeSize(key))
	}

	st := nw.Stats()
	fmt.Printf("\ntraffic: %.1f bits/node/round mean, %d bits max per node-round\n",
		float64(st.Engine.BitsSent)/float64(*n)/float64(st.Engine.Rounds),
		st.Engine.MaxNodeBitsRound)
	fmt.Printf("soup: generated=%d completed=%d died=%d (survival %.1f%%)\n",
		st.Soup.Generated, st.Soup.Completed, st.Soup.Died,
		100*float64(st.Soup.Completed)/float64(max(int64(1), st.Soup.Completed+st.Soup.Died+st.Soup.Overdue)))
	fmt.Printf("committees: %d created, %d handovers (%d by fallback leaders), %d resignations\n",
		st.Proto.CommitteesCreated, st.Proto.Handovers, st.Proto.FallbackHandovers, st.Proto.Resignations)
	if *idaK > 0 {
		fmt.Printf("erasure: %d handover re-dispersals, %d items lost to piece shortage\n",
			st.Proto.IDARecoded, st.Proto.IDALost)
	}
	fmt.Printf("churn: %d replacements over %d rounds\n", st.Engine.Replacements, st.Engine.Rounds)
}

func fmtF(v float64) string { return fmt.Sprintf("%g", v) }

// startCPUProfile begins CPU profiling to path ("" = no-op) and returns
// the stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeHeapProfile writes a post-GC heap profile to path ("" = no-op).
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runtime.GC() // settle the heap so the profile shows live memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
}
