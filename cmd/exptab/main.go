// Command exptab regenerates the reproduction experiment tables — the
// paper's evaluation (Theorems 1-4, Lemmas, §4.4, §5 conjecture) measured
// on this implementation. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured verdicts.
//
// Usage:
//
//	exptab                 # all experiments at quick scale
//	exptab -scale full     # the EXPERIMENTS.md sweep (minutes)
//	exptab -only E08,E11   # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynp2p/internal/expt"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E01,E08); empty = all")
	flag.Parse()

	scale := expt.Quick
	switch strings.ToLower(*scaleFlag) {
	case "quick":
	case "full":
		scale = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	ids := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10", "E11", "E12", "E13"}
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	for _, id := range ids {
		fn := expt.ByID(strings.TrimSpace(id))
		if fn == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table := fn(scale)
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", table.ID, time.Since(start).Seconds())
	}
}
