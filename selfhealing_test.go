package dynp2p

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"dynp2p/internal/telemetry"
	"dynp2p/internal/walks"
)

// selfHealingRun executes a 200+ round storage/search workload at n under
// paper-rate churn (C=1, δ=1.0 — the regime where committees robustly
// outlive their handover period; δ=0.5 puts the committee protocol on a
// knife edge in *both* topologies, see the EXPERIMENTS.md sweep) with the
// given edge mode, issuing a retrieval burst every search period once the
// soup has mixed. Stores are staggered so the keys' committees are drawn
// from different sample windows. Returns (succeeded, completed) retrieval
// counts and the final stats.
func selfHealingRun(t *testing.T, n int, mode EdgeMode, spectralEvery int) (int, int, Stats) {
	t.Helper()
	nw := New(Config{
		N: n, ChurnRate: 1, ChurnDelta: 1.0, Seed: 41,
		Edges: mode, SpectralEvery: spectralEvery,
	})
	nw.Run(nw.WarmupRounds())
	const keys = 4
	data := make([][]byte, keys)
	for k := 0; k < keys; k++ {
		data[k] = make([]byte, 32)
		for j := range data[k] {
			data[k][j] = byte(17*k + j)
		}
		nw.Store(nw.OldestSlot(), uint64(100+k), data[k])
		nw.Run(3)
	}
	ttl := nw.Tunables().Protocol.SearchTTL
	nw.Run(nw.Tunables().Protocol.Period)
	succ, done := 0, 0
	// Issue retrieval bursts (several issuers per key) until at least 200
	// post-warmup rounds ran.
	for round := 0; round < 200; round += ttl + 2 {
		for k := 0; k < keys; k++ {
			for i := 0; i < 12; i++ {
				nw.Retrieve(((1+round)*(k+3)+i*37)%n, uint64(100+k), data[k])
			}
		}
		nw.Run(ttl + 2)
		for _, res := range nw.Results() {
			done++
			if res.Success {
				succ++
			}
		}
	}
	return succ, done, nw.Stats()
}

// TestSelfHealingAcceptance is the tentpole's acceptance criterion: a
// 200+ round run at n=4096 under paper-rate churn with the self-healing
// overlay must (a) keep the estimated second eigenvalue bounded away
// from 1 — λ ≤ 0.9 in every measured round — and (b) keep steady-state
// search success within 5 points of the Rerandomize oracle on the same
// seed. A second workload-free leg stresses the λ bound at the harsher
// δ=0.5 rate (~4.2% of the network replaced per round). Skipped in
// -short; CI runs it by name under -race.
func TestSelfHealingAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("200+ round n=4096 acceptance run; skipped in -short")
	}
	const n = 4096
	healSucc, healDone, healStats := selfHealingRun(t, n, EdgesSelfHealing, 5)
	ov := healStats.Overlay
	if ov.SpectralRounds < 40 {
		t.Fatalf("too few spectral measurements: %d", ov.SpectralRounds)
	}
	if ov.LambdaMax > 0.9 {
		t.Fatalf("self-healed topology lost expansion: λ=%.3f at round %d",
			ov.LambdaMax, ov.LambdaMaxRound)
	}
	if ov.Splices == 0 || ov.PortsSevered == 0 {
		t.Fatalf("overlay did not repair: %+v", ov)
	}

	oracleSucc, oracleDone, oracleStats := selfHealingRun(t, n, EdgesRerandomize, 0)
	if oracleStats.Overlay.PortsSevered != 0 {
		t.Fatalf("oracle run ran repairs: %+v", oracleStats.Overlay)
	}
	if healDone == 0 || oracleDone == 0 {
		t.Fatalf("no retrievals completed (heal %d, oracle %d)", healDone, oracleDone)
	}
	healRate := float64(healSucc) / float64(healDone)
	oracleRate := float64(oracleSucc) / float64(oracleDone)
	t.Logf("success: self-healing %.3f (%d/%d), oracle %.3f (%d/%d); λ max %.3f",
		healRate, healSucc, healDone, oracleRate, oracleSucc, oracleDone, ov.LambdaMax)
	if diff := oracleRate - healRate; diff > 0.05 {
		t.Fatalf("self-healing search success %.3f more than 5 points below oracle %.3f",
			healRate, oracleRate)
	}

	// λ-stress leg: δ=0.5 doubles the per-round replacement count (~170
	// slots, the whole edge set every ~6 rounds); no workload, repairs
	// and telemetry only.
	stress := New(Config{
		N: n, ChurnRate: 1, ChurnDelta: 0.5, Seed: 41,
		Edges: EdgesSelfHealing, SpectralEvery: 5,
	})
	stress.Run(240)
	sm := stress.Stats().Overlay
	if sm.LambdaMax > 0.9 {
		t.Fatalf("λ-stress leg lost expansion: λ=%.3f at round %d", sm.LambdaMax, sm.LambdaMaxRound)
	}
	if sm.SpectralRounds < 40 || sm.Splices == 0 {
		t.Fatalf("λ-stress leg vacuous: %+v", sm)
	}
	t.Logf("λ-stress (δ=0.5): max %.3f over %d measurements", sm.LambdaMax, sm.SpectralRounds)
}

// TestSelfHealingWorkerIndependence extends the engine's determinism
// contract to the overlay: a faulty, churning self-healing network must
// produce identical stats (including overlay metrics), retrieval
// results, walk samples, and final adjacency for Workers ∈ {1, 3,
// GOMAXPROCS}. The contract is per shard count — results are a pure
// function of (seeds, parameters, shard count) — so the test repeats at
// the pinned grid floor (16) and ceiling (256) in addition to the
// adaptive default. CI runs it under -race.
func TestSelfHealingWorkerIndependence(t *testing.T) {
	type snapshot struct {
		stats   Stats
		results []Result
		samples [][]walks.Sample
		adj     []int32
		det     string // telemetry DeterministicSnapshot, serialized
	}
	run := func(workers, shards int) snapshot {
		nw := New(Config{
			N: 2048, ChurnRate: 1, ChurnDelta: 1.0, Seed: 5, Workers: workers,
			Shards: shards,
			Edges:  EdgesSelfHealing, SpectralEvery: 7,
			Fault:  FaultConfig{DropProb: 0.03, DelayProb: 0.1, MaxDelay: 2},
		})
		nw.Run(nw.WarmupRounds())
		data := make([]byte, 48)
		for i := range data {
			data[i] = byte(3 * i)
		}
		nw.Store(0, 7, data)
		nw.Run(nw.Tunables().Protocol.Period)
		nw.Retrieve(1024, 7, data)
		nw.Retrieve(99, 7, data)
		nw.Run(nw.Tunables().Protocol.SearchTTL + 4)
		var det bytes.Buffer
		if err := telemetry.WriteJSONL(&det, nw.Telemetry().DeterministicSnapshot()); err != nil {
			t.Fatal(err)
		}
		snap := snapshot{
			stats:   nw.Stats(),
			results: nw.Results(),
			adj:     append([]int32(nil), nw.Engine().Graph().Adjacency()...),
			det:     det.String(),
		}
		for s := 0; s < nw.N(); s++ {
			snap.samples = append(snap.samples,
				append([]walks.Sample(nil), nw.Soup().Samples(s)...))
		}
		return snap
	}
	for _, shards := range []int{0, 16, 256} {
		base := run(1, shards)
		if base.stats.Overlay.PortsSevered == 0 {
			t.Fatalf("shards=%d: overlay did not repair anything; test is vacuous", shards)
		}
		workerSet := []int{3}
		if shards == 0 {
			workerSet = []int{3, runtime.GOMAXPROCS(0)}
		}
		for _, w := range workerSet {
			got := run(w, shards)
			if base.stats != got.stats {
				t.Errorf("workers=%d shards=%d: stats differ:\n%+v\n%+v", w, shards, base.stats, got.stats)
			}
			if !reflect.DeepEqual(base.results, got.results) {
				t.Errorf("workers=%d shards=%d: retrieval results differ", w, shards)
			}
			if !reflect.DeepEqual(base.adj, got.adj) {
				t.Errorf("workers=%d shards=%d: final adjacency differs", w, shards)
			}
			if base.det != got.det {
				t.Errorf("workers=%d shards=%d: telemetry DeterministicSnapshot differs", w, shards)
			}
			for s := range base.samples {
				if !reflect.DeepEqual(base.samples[s], got.samples[s]) {
					t.Fatalf("workers=%d shards=%d: soup samples differ at slot %d", w, shards, s)
				}
			}
		}
	}
}

// TestSelfHealingModeSwitchFacade pins the facade-level topology switch
// the scenario runner uses: oracle → self-healing → static on one
// network, with repairs only in the self-healing window.
func TestSelfHealingModeSwitchFacade(t *testing.T) {
	nw := New(Config{N: 512, ChurnRate: 1, ChurnDelta: 0.5, Seed: 9})
	nw.Run(nw.WarmupRounds())
	if s := nw.Stats().Overlay; s.PortsSevered != 0 {
		t.Fatalf("repairs under oracle mode: %+v", s)
	}
	nw.SetEdgeMode(EdgesSelfHealing, 0)
	nw.Run(20)
	mid := nw.Stats().Overlay
	if mid.PortsSevered == 0 {
		t.Fatal("no repairs after switching to self-healing")
	}
	if err := nw.Engine().Graph().CheckRegular(); err != nil {
		t.Fatal(err)
	}
	nw.SetEdgeMode(EdgesStatic, 0)
	snap := append([]int32(nil), nw.Engine().Graph().Adjacency()...)
	nw.Run(10)
	if got := nw.Stats().Overlay; got.PortsSevered != mid.PortsSevered {
		t.Fatalf("repairs continued under static mode: %+v -> %+v", mid, got)
	}
	for i, w := range nw.Engine().Graph().Adjacency() {
		if snap[i] != w {
			t.Fatal("static mode rewired an edge")
		}
	}
}
